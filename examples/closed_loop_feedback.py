#!/usr/bin/env python3
"""Closed-loop feedback: traffic that throttles when the memory system queues.

The scenario catalog is open-loop -- the diurnal ramp pushes its peak-hour
intensity no matter how hard the memory controllers are queuing.  Real
servers are closed-loop: admission control backs off when service latency
rises and ramps back up when there is headroom.  This example runs the same
diurnal ramp both ways and shows:

1. what the feedback controller does -- the intensity trajectory it steers
   through the ramp, printed straight from ``ClosedLoopSource.history``;
2. what it buys -- achieved mean demand-read latency converging toward the
   controller's target, versus the open-loop run that simply eats whatever
   latency the peak phase produces;
3. that the closed-loop run is still an experiment: rerunning it reproduces
   the result fingerprint bit for bit.

Run it with::

    python examples/closed_loop_feedback.py [--scale 0.02] [--target 60]
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table, print_report
from repro.exec.campaign import result_fingerprint
from repro.scenario import (
    ClosedLoopSource,
    ClosedLoopSpec,
    get_scenario,
    run_scenario,
)
from repro.sim import base_open


def mean_read_latency(result) -> float:
    reads = result.dram["demand_reads"]
    return result.dram["demand_read_latency_cycles"] / reads if reads else 0.0


def steady_state_latency(source: ClosedLoopSource, tail: int = 5) -> float:
    """Median per-interval observed latency over the last ``tail`` updates."""
    observed = sorted(o for _, _, o in source.history[-tail:] if o is not None)
    return observed[len(observed) // 2] if observed else 0.0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="catalog scale factor (0.02 = 24k accesses)")
    parser.add_argument("--target", type=float, default=60.0,
                        help="controller latency target (bus cycles)")
    parser.add_argument("--interval", type=int, default=1024,
                        help="control-boundary spacing (accesses)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    scenario = get_scenario("diurnal-ramp", scale=args.scale)
    config = base_open()
    spec = ClosedLoopSpec(target_latency=args.target, interval=args.interval)

    # The open-loop run goes through a *pinned* controller (the intensity
    # clamp is [1, 1], so the emitted stream is exactly the open-loop trace)
    # purely so both runs report the same per-interval observed latency.
    print(f"Open-loop {scenario.name} ({scenario.total_accesses} accesses) "
          f"under {config.name} ...")
    pinned = ClosedLoopSpec(target_latency=args.target, interval=args.interval,
                            min_intensity=1.0, max_intensity=1.0)
    open_source = ClosedLoopSource(scenario, pinned, seed=args.seed)
    open_loop = run_scenario(scenario, config, seed=args.seed,
                             closed_loop=open_source)

    print(f"Closed-loop, target {args.target:g} cycles "
          f"every {args.interval} accesses ...")
    source = ClosedLoopSource(scenario, spec, seed=args.seed)
    closed = run_scenario(scenario, config, seed=args.seed, closed_loop=source)

    rows = []
    for position, intensity, observed in source.history:
        rows.append([position, f"{intensity:.3f}",
                     "-" if observed is None else f"{observed:.0f}"])
    print_report(format_table(
        rows, headers=["position", "intensity", "observed latency"]))

    comparison = [
        ["open-loop", f"{steady_state_latency(open_source):.0f}",
         f"{mean_read_latency(open_loop):.1f}",
         f"{open_loop.throughput_ipc:.2f}", "1.000 (pinned)"],
        ["closed-loop", f"{steady_state_latency(source):.0f}",
         f"{mean_read_latency(closed):.1f}",
         f"{closed.throughput_ipc:.2f}",
         f"{source.current_intensity:.3f} after {source.updates} update(s)"],
    ]
    print_report(format_table(
        comparison,
        headers=["run", "steady latency", "cumulative latency", "IPC",
                 "final intensity"]))
    print(f"controller target: {args.target:g} cycles "
          f"(steady latency is the median of the last 5 control intervals)")

    rerun = run_scenario(scenario, config, seed=args.seed, closed_loop=spec)
    identical = result_fingerprint(closed) == result_fingerprint(rerun)
    print(f"closed-loop rerun bit-identical: {identical}")
    if not identical:
        raise SystemExit("closed-loop run did not reproduce itself")


if __name__ == "__main__":
    main()
