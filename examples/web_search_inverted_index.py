#!/usr/bin/env python3
"""Web Search scenario: why code/data correlation predicts bulk accesses.

Section III.A of the paper (Figure 4) explains BuMP's key insight with the
inverted index of a web search engine: a query term is found through a
pointer-chasing hash-table walk (fine-grained, unpredictable, low region
density), after which the term's *index page* -- kilobytes of contiguously
laid out posting/rank metadata -- is read in full (coarse-grained, high
region density), always by the same scoring function.

This example reproduces that story at the microarchitectural level:

1. it generates the Web Search workload and characterises its region access
   density (the Figure 5 measurement);
2. it runs BuMP and inspects its structures: how many distinct (PC, offset)
   tuples the Bulk History Table needed to cover the index-page scans, and
   how much storage that costs compared to footprint-per-region schemes;
3. it reports coverage, overfetch and the row-buffer hit ratio achieved.

Run it with::

    python examples/web_search_inverted_index.py [--accesses 80000]
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table, print_report
from repro.common.params import CacheParams, SystemParams
from repro.sim import base_open, bump_system, ideal_system
from repro.sim.runner import build_trace, run_configs
from repro.sim.system import ServerSystem


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=80_000)
    parser.add_argument("--llc-mb", type=int, default=1,
                        help="LLC capacity in MiB (paper configuration: 4; the "
                             "default 1MiB reaches steady state on short traces)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()
    system = SystemParams().scaled(
        llc=CacheParams(size_bytes=args.llc_mb * 1024 * 1024, associativity=16,
                        hit_latency_cycles=8, banks=8)
    )

    print("Characterising the Web Search memory reference stream...")
    configs = [config.with_overrides(system=system)
               for config in (base_open(), ideal_system(), bump_system())]
    results = run_configs("web_search", configs,
                          num_accesses=args.accesses, seed=args.seed)
    density = results["ideal"].density

    print_report(format_table(
        [
            ["reads", f"{density.read_density['low']:.2f}",
             f"{density.read_density['medium']:.2f}", f"{density.read_density['high']:.2f}"],
            ["writes", f"{density.write_density['low']:.2f}",
             f"{density.write_density['medium']:.2f}", f"{density.write_density['high']:.2f}"],
        ],
        headers=["traffic", "low (<25%)", "medium (25-50%)", "high (>=50%)"],
    ))
    print("High-density traffic comes from index-page scans; the low-density tail is "
          "the hash-table walk that locates each term (Figure 4 of the paper).")

    # Re-run BuMP on a fresh system to inspect predictor internals.
    print("\nInspecting BuMP's predictor structures...")
    server = ServerSystem(bump_system().with_overrides(system=system),
                          workload_name="web_search")
    trace = build_trace("web_search", args.accesses, seed=args.seed)
    result = server.run(trace, warmup_accesses=args.accesses // 2)
    bump = server.bump

    trained_tuples = len(bump.bht.table)
    rows = [
        ["BHT (PC,offset) tuples trained", str(trained_tuples)],
        ["BHT storage", f"{bump.bht.storage_bits() / 8 / 1024:.2f} KiB"],
        ["RDTT storage (trigger + density)", f"{bump.rdtt.storage_bits() / 8 / 1024:.2f} KiB"],
        ["DRT storage", f"{bump.drt.storage_bits() / 8 / 1024:.2f} KiB"],
        ["total BuMP storage", f"{bump.storage_bits() / 8 / 1024:.2f} KiB"],
        ["read coverage", f"{result.read_coverage:.2f}"],
        ["read overfetch", f"{result.read_overfetch:.2f}"],
        ["write coverage", f"{result.write_coverage:.2f}"],
        ["row-buffer hit ratio (BuMP)", f"{result.row_buffer_hit_ratio:.2f}"],
        ["row-buffer hit ratio (Base-open)", f"{results['base_open'].row_buffer_hit_ratio:.2f}"],
    ]
    print_report(format_table(rows, headers=["metric", "value"]))

    print("A handful of scoring/scanning functions touch every index page, so a few "
          "hundred (PC, offset) tuples are enough to predict bulk transfers for an "
          "arbitrarily large index -- that is why BuMP needs ~14KB where per-region "
          "footprint prefetchers need tens of kilobytes per core.")


if __name__ == "__main__":
    main()
