#!/usr/bin/env python3
"""Multi-tenant colocation: what BuMP recovers when tenants share a CMP.

The paper evaluates BuMP on homogeneous steady-state workloads; this example
asks the same question under the traffic pattern consolidation actually
produces.  The ``tenant-colocation`` catalog scenario runs a key-value
tenant (``data_serving``) on cores 0-7 colocated with a search tenant
(``web_search``) on cores 8-15, so two workloads with very different
region-density profiles interleave at the shared LLC and memory
controllers.  The scenario is streamed chunk by chunk through the
simulator -- memory stays bounded no matter how long the run is -- once
under the open-row baseline and once under BuMP, and the example prints the
row-buffer-hit and energy-per-access deltas the colocated system sees.

Run it with::

    PYTHONPATH=src python examples/multi_tenant_colocation.py [--scale 0.05]

``--scale 1.0`` runs the full 1.2M-access scenario (a few minutes);
the default keeps a first look under a minute.
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table
from repro.scenario import get_scenario, run_scenario
from repro.sim import base_open, bump_system


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05,
                        help="phase-length scale factor (1.0 = full 1.2M run)")
    parser.add_argument("--seed", type=int, default=42, help="generator seed")
    args = parser.parse_args()

    scenario = get_scenario("tenant-colocation", scale=args.scale)
    print(f"{scenario.name}: {scenario.description}")
    print(f"{scenario.total_accesses} accesses on {scenario.num_cores} cores, "
          f"tenants: {', '.join(scenario.tenant_names)}\n")

    results = {}
    for config in (base_open(), bump_system()):
        print(f"streaming {scenario.name} under {config.name} ...")
        results[config.name] = run_scenario(scenario, config, seed=args.seed)

    base = results["base_open"]
    bump = results["bump"]
    metrics = [
        ("row-buffer hit ratio", base.row_buffer_hit_ratio,
         bump.row_buffer_hit_ratio),
        ("memory energy / access (nJ)", base.memory_energy_per_access_nj,
         bump.memory_energy_per_access_nj),
        ("throughput (aggregate IPC)", base.throughput_ipc,
         bump.throughput_ipc),
        ("read coverage", base.read_coverage, bump.read_coverage),
        ("write coverage", base.write_coverage, bump.write_coverage),
    ]
    rows = []
    for label, base_value, bump_value in metrics:
        if label.startswith("memory energy"):
            delta = (f"{(1.0 - bump_value / base_value):+.1%} energy"
                     if base_value else "n/a")
        elif label.startswith("throughput"):
            delta = f"{bump_value / base_value:.3f}x" if base_value else "n/a"
        else:
            delta = f"{bump_value - base_value:+.3f}"
        rows.append([label, f"{base_value:.4g}", f"{bump_value:.4g}", delta])
    print()
    print(format_table(rows, headers=["metric", "base_open", "bump", "delta"]))

    uplift = bump.row_buffer_hit_ratio - base.row_buffer_hit_ratio
    energy = (1.0 - bump.memory_energy_per_access_nj
              / base.memory_energy_per_access_nj
              if base.memory_energy_per_access_nj else 0.0)
    print(f"\nUnder colocation, BuMP recovers {uplift:+.3f} row-buffer hit "
          f"ratio and changes memory energy per access by {-energy:+.1%}.")


if __name__ == "__main__":
    main()
