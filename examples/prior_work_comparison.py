#!/usr/bin/env python3
"""Related-work comparison: BuMP against the prefetchers and writeback schemes
it is positioned against in Sections II and VII.

Read side: next-line, stride, Stealth-style region prefetching, SMS and BuMP.
Write side: demand-only writeback, age-based eager writeback, VWQ, BuMP and
BuMP+VWQ (footnote 1).  For each mechanism the example reports coverage,
overfetch/extra traffic, DRAM row-buffer locality and predictor storage --
the axes on which the paper differentiates code-correlated bulk streaming
from its alternatives.

Run it with::

    python examples/prior_work_comparison.py [--accesses 80000] [--workloads web_search,data_serving]
"""

from __future__ import annotations

import argparse

from repro.analysis.ablations import prefetcher_comparison, writeback_mechanism_study
from repro.analysis.reporting import format_nested_mapping, print_report
from repro.core.bump import BuMPPredictor
from repro.prefetch import (
    NextLinePrefetcher,
    SpatialMemoryStreaming,
    StealthPrefetcher,
    StridePrefetcher,
)
from repro.workloads.catalog import workload_names


def storage_table() -> str:
    """Predictor storage of each read-side mechanism (Section VII's axis)."""
    mechanisms = {
        "nextline": NextLinePrefetcher(),
        "stride": StridePrefetcher(),
        "sms": SpatialMemoryStreaming(),
        "stealth": StealthPrefetcher(),
        "bump": BuMPPredictor(),
    }
    rows = {
        name: {"storage_kib": mechanism.storage_bits() / 8 / 1024}
        for name, mechanism in mechanisms.items()
    }
    return format_nested_mapping(rows, value_format="{:.1f}",
                                 title="Predictor storage (KiB)",
                                 columns=["storage_kib"])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workloads", default="web_search,data_serving",
                        help="comma-separated workload subset")
    parser.add_argument("--accesses", type=int, default=80_000,
                        help="trace length per (workload, system) run")
    args = parser.parse_args()

    selected = [name.strip() for name in args.workloads.split(",") if name.strip()]
    unknown = [name for name in selected if name not in workload_names()]
    if unknown:
        raise SystemExit(f"unknown workloads: {unknown}")

    print_report(storage_table())

    reads = prefetcher_comparison(workloads=selected, num_accesses=args.accesses)
    print_report(format_nested_mapping(
        reads, value_format="{:.3f}",
        title=f"\nRead-side mechanisms ({', '.join(selected)}, {args.accesses} accesses)",
        columns=["read_coverage", "read_overfetch", "row_buffer_hit_ratio"]))

    writes = writeback_mechanism_study(workloads=selected, num_accesses=args.accesses)
    print_report(format_nested_mapping(
        writes, value_format="{:.3f}",
        title="\nWrite-side mechanisms",
        columns=["write_coverage", "row_buffer_hit_ratio", "dram_writes"]))

    print_report(
        "\nReading the tables: BuMP reaches SMS-class read coverage and the best\n"
        "row-buffer locality at a fraction of Stealth's storage, and it streams\n"
        "writebacks that the read-only prefetchers ignore; combining it with VWQ\n"
        "(bump_vwq) picks up the writeback locality outside high-density regions."
    )


if __name__ == "__main__":
    main()
