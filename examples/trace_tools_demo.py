#!/usr/bin/env python3
"""Trace tooling walkthrough: generate, characterise, persist and capture.

The trace-driven methodology of this reproduction separates *what the cores
reference* (the workload trace) from *what the memory system does with it*
(the simulated configuration).  This example exercises the tooling around
that boundary:

1. generate a multi-core Web Serving trace and characterise it statically
   (footprint, read/write mix, code/data correlation, static region density);
2. save it to disk in both supported formats and verify the round trip;
3. slice it: one core's stream, the store-only stream, a SMARTS-style sample;
4. run it through the open-row baseline with an LLC trace recorder attached
   and compare the processor-side trace with the post-L1 stream the memory
   system (and BuMP) actually sees.

Run it with::

    python examples/trace_tools_demo.py [--accesses 40000] [--workload web_serving]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.analysis.reporting import format_table, print_report
from repro.common.params import CacheParams, SystemParams
from repro.sim import base_open
from repro.sim.runner import build_trace, run_trace
from repro.trace import (
    LLCTraceRecorder,
    characterize_trace,
    filter_by_core,
    filter_by_type,
    load_trace,
    sample_systematic,
    save_trace,
)
from repro.workloads.catalog import workload_names


def characterisation_report(title: str, trace) -> None:
    """Print the static statistics of one trace."""
    stats = characterize_trace(trace)
    rows = [[key, f"{value:.4g}"] for key, value in stats.summary().items()]
    density = stats.region_density_histogram()
    rows += [[f"static region density: {bucket}", f"{share:.1%}"]
             for bucket, share in density.items()]
    print_report(f"\n== {title} ==")
    print_report(format_table(rows, headers=["metric", "value"]))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="web_serving", choices=workload_names())
    parser.add_argument("--accesses", type=int, default=40_000)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    # 1. Generate and characterise the processor-side trace.
    trace = build_trace(args.workload, args.accesses, seed=args.seed)
    characterisation_report(f"{args.workload}: processor-side trace", trace)

    # 2. Persist it in both formats and confirm the round trip.
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = save_trace(trace, Path(tmp) / "trace.csv")
        npz_path = save_trace(trace, Path(tmp) / "trace.npz")
        sizes = [[path.name, f"{path.stat().st_size / 1024:.1f} KiB",
                  str(load_trace(path) == trace)]
                 for path in (csv_path, npz_path)]
        print_report("\n== on-disk formats ==")
        print_report(format_table(sizes, headers=["file", "size", "round-trips"]))

    # 3. Slice the trace.
    core0 = filter_by_core(trace, cores=[0])
    stores = filter_by_type(trace, loads=False, stores=True)
    sampled = sample_systematic(trace, period=10, unit_length=500)
    print_report("\n== slices ==")
    print_report(format_table(
        [["core 0 only", str(len(core0))],
         ["stores only", str(len(stores))],
         ["systematic 1-in-10 sample", str(len(sampled))]],
        headers=["slice", "accesses"]))

    # 4. Run the trace with a recorder attached and compare the two levels.
    small_llc = SystemParams().scaled(
        llc=CacheParams(size_bytes=1024 * 1024, associativity=16, hit_latency_cycles=8)
    )
    recorder = LLCTraceRecorder()
    result = run_trace(trace, base_open().with_overrides(system=small_llc),
                       warmup_fraction=0.0, extra_agents=[recorder])
    characterisation_report("post-L1 miss stream (what DRAM sees)",
                            recorder.miss_trace())
    print_report(format_table(
        [["LLC demand accesses", f"{len(recorder.accesses)}"],
         ["LLC miss ratio", f"{recorder.llc_miss_ratio:.1%}"],
         ["LLC evictions observed", f"{len(recorder.evictions)}"],
         ["DRAM row-buffer hit ratio", f"{result.row_buffer_hit_ratio:.1%}"]],
        headers=["simulated quantity", "value"]))


if __name__ == "__main__":
    main()
