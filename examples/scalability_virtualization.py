#!/usr/bin/env python3
"""Section VI walkthrough: design scalability, virtualization and scheduling.

Three questions the paper answers in prose are reproduced quantitatively:

1. How does BuMP's storage grow with the CMP (cores, LLC capacity)?
2. What does workload consolidation (virtualization) do to the bulk history
   table, and does the per-core cost stay small?
3. Does BuMP still help when the memory controller uses a fairness-oriented
   scheduling policy instead of FR-FCFS?

Run it with::

    python examples/scalability_virtualization.py [--accesses 60000] [--workload web_search]
"""

from __future__ import annotations

import argparse

from repro.analysis.ablations import scheduler_policy_study
from repro.analysis.reporting import format_nested_mapping, format_table, print_report
from repro.analysis.scalability import (
    scaling_summary,
    storage_scaling_table,
    virtualization_storage_table,
)
from repro.workloads.catalog import workload_names


def print_scaling_tables() -> None:
    """Storage growth with CMP size and with consolidated workloads."""
    rows = [[str(e.cores), f"{e.llc_mib:.0f}", f"{e.rdtt_kib:.1f}", f"{e.bht_kib:.1f}",
             f"{e.drt_kib:.1f}", f"{e.total_kib:.1f}", f"{e.per_core_kib:.2f}"]
            for e in storage_scaling_table()]
    print_report("BuMP storage versus CMP size (LLC scaled with cores)")
    print_report(format_table(rows, headers=["cores", "LLC MiB", "RDTT KiB", "BHT KiB",
                                             "DRT KiB", "total KiB", "KiB/core"]))

    rows = [[str(e.workloads_sharing), f"{e.bht_kib:.1f}", f"{e.total_kib:.1f}",
             f"{e.per_core_kib:.2f}"]
            for e in virtualization_storage_table()]
    print_report("\nBuMP storage versus consolidated workloads (one BHT share per workload)")
    print_report(format_table(rows, headers=["workloads", "BHT KiB", "total KiB",
                                             "KiB/core"]))

    summary = scaling_summary()
    print_report(
        f"\nNative design: {summary['native_total_kib']:.1f} KiB total "
        f"({summary['native_per_core_kib']:.2f} KiB/core); extreme consolidation: "
        f"{summary['virtualized_bht_kib']:.0f} KiB BHT, "
        f"{summary['virtualized_per_core_kib']:.1f} KiB/core "
        "(the paper quotes ~14 KiB, 72 KiB and ~5 KiB respectively)."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="web_search", choices=workload_names())
    parser.add_argument("--accesses", type=int, default=60_000,
                        help="trace length for the scheduling-policy study")
    args = parser.parse_args()

    print_scaling_tables()

    policies = scheduler_policy_study(policies=("fcfs", "frfcfs", "bank_round_robin"),
                                      workloads=[args.workload],
                                      num_accesses=args.accesses)
    print_report(format_nested_mapping(
        policies, value_format="{:.3f}",
        title=f"\nBuMP under different scheduling policies ({args.workload})",
        columns=["row_buffer_hit_ratio", "energy_per_access_nj"]))
    print_report(
        "\nFR-FCFS recovers the most row locality; the core-rotating fair scheduler\n"
        "stays close because bulk transfers arrive at the controller back-to-back,\n"
        "which is why Section VI argues BuMP composes with fairness-oriented policies."
    )


if __name__ == "__main__":
    main()
