#!/usr/bin/env python3
"""Quickstart: compare BuMP against the baselines on one workload.

This example shows the smallest useful end-to-end flow through the public
API:

1. pick one of the paper's workloads (Web Search, the paper's own running
   example from Section III.A);
2. build the evaluated system configurations;
3. run the identical trace through each of them;
4. print the metrics the paper leads with: DRAM row-buffer hit ratio, memory
   energy per access and relative throughput.

Run it with::

    python examples/quickstart.py [--accesses 60000] [--workload web_search]
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table, print_report
from repro.common.params import CacheParams, SystemParams
from repro.sim import base_close, base_open, bump_system, full_region_system
from repro.sim.runner import run_configs
from repro.workloads.catalog import workload_names


def scaled_system(llc_mb: int) -> SystemParams:
    """System parameters with a scaled LLC.

    The paper's 4MB LLC needs several hundred thousand trace accesses just to
    warm up; the examples default to a 1MB LLC so that a one-minute run
    already shows steady-state behaviour.  Pass ``--llc-mb 4`` (and a longer
    ``--accesses``) to evaluate the full-size configuration.
    """
    return SystemParams().scaled(
        llc=CacheParams(size_bytes=llc_mb * 1024 * 1024, associativity=16,
                        hit_latency_cycles=8, banks=8)
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="web_search", choices=workload_names(),
                        help="workload to simulate (default: web_search)")
    parser.add_argument("--accesses", type=int, default=60_000,
                        help="trace length; larger values are closer to steady state")
    parser.add_argument("--llc-mb", type=int, default=1,
                        help="LLC capacity in MiB (paper configuration: 4)")
    parser.add_argument("--seed", type=int, default=42, help="trace generator seed")
    args = parser.parse_args()

    system = scaled_system(args.llc_mb)
    configs = [config.with_overrides(system=system)
               for config in (base_close(), base_open(), full_region_system(),
                              bump_system())]
    print(f"Simulating {args.workload!r} under {len(configs)} system configurations "
          f"({args.accesses} accesses each)...")
    results = run_configs(args.workload, configs, num_accesses=args.accesses,
                          seed=args.seed)

    reference = results["base_close"]
    rows = []
    for name in ("base_close", "base_open", "full_region", "bump"):
        result = results[name]
        speedup = result.throughput_ipc / max(reference.throughput_ipc, 1e-12) - 1.0
        rows.append([
            name,
            f"{result.row_buffer_hit_ratio:.2f}",
            f"{result.memory_energy_per_access_nj:.1f}",
            f"{speedup:+.1%}",
            f"{result.read_coverage:.2f}",
            f"{result.read_overfetch:.2f}",
        ])

    print_report(format_table(
        rows,
        headers=["system", "row-buffer hit", "energy/access (nJ)",
                 "throughput vs Base-close", "read coverage", "overfetch"],
    ))

    bump = results["bump"]
    base = results["base_open"]
    saving = 1.0 - bump.memory_energy_per_access_nj / base.memory_energy_per_access_nj
    print(f"BuMP reduces dynamic memory energy per access by {saving:.0%} versus the "
          f"open-row baseline on this trace (the paper reports 23% on average), and "
          f"raises the row-buffer hit ratio from {base.row_buffer_hit_ratio:.0%} to "
          f"{bump.row_buffer_hit_ratio:.0%}.")


if __name__ == "__main__":
    main()
