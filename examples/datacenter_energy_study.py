#!/usr/bin/env python3
"""Datacenter energy study: where does server energy go, and what does BuMP buy?

This example reproduces the paper's motivation (Figure 1) and payoff
(Figures 9/13) in one script, across all six server workloads:

1. break server energy down by component on the baseline system and show
   that main memory -- and within it, page activations -- is a first-order
   consumer;
2. quantify how much dynamic memory energy per access BuMP saves versus the
   close-row and open-row baselines;
3. translate the per-access savings into a fleet-level estimate: for a
   datacenter serving a fixed request rate, how many joules per million
   requests the memory system sheds.

Run it with::

    python examples/datacenter_energy_study.py [--accesses 60000] [--workloads web_search,data_serving]
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table, print_report
from repro.common.params import CacheParams, SystemParams
from repro.sim import base_close, base_open, bump_system
from repro.sim.runner import run_configs
from repro.workloads.catalog import workload_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=60_000)
    parser.add_argument("--workloads", default=",".join(workload_names()),
                        help="comma-separated workload subset")
    parser.add_argument("--llc-mb", type=int, default=1,
                        help="LLC capacity in MiB (paper configuration: 4; the "
                             "default 1MiB reaches steady state on short traces)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()
    selected = [name.strip() for name in args.workloads.split(",") if name.strip()]
    system = SystemParams().scaled(
        llc=CacheParams(size_bytes=args.llc_mb * 1024 * 1024, associativity=16,
                        hit_latency_cycles=8, banks=8)
    )

    breakdown_rows = []
    savings_rows = []
    for workload in selected:
        print(f"Simulating {workload} ...")
        configs = [config.with_overrides(system=system)
                   for config in (base_close(), base_open(), bump_system())]
        results = run_configs(workload, configs,
                              num_accesses=args.accesses, seed=args.seed)
        base = results["base_open"]
        shares = base.energy.component_shares()
        memory_share = (shares["memory_activation"] + shares["memory_burst_io"]
                        + shares["memory_background"])
        breakdown_rows.append([
            workload,
            f"{shares['cores']:.2f}",
            f"{shares['llc'] + shares['noc'] + shares['memory_controller']:.2f}",
            f"{memory_share:.2f}",
            f"{shares['memory_activation']:.2f}",
        ])

        bump = results["bump"]
        close = results["base_close"]
        vs_open = 1.0 - bump.memory_energy_per_access_nj / base.memory_energy_per_access_nj
        vs_close = 1.0 - bump.memory_energy_per_access_nj / close.memory_energy_per_access_nj
        # Joules of dynamic memory energy per million memory accesses.
        joules_per_maccess_base = base.memory_energy_per_access_nj * 1e6 * 1e-9
        joules_per_maccess_bump = bump.memory_energy_per_access_nj * 1e6 * 1e-9
        savings_rows.append([
            workload,
            f"{base.memory_energy_per_access_nj:.1f}",
            f"{bump.memory_energy_per_access_nj:.1f}",
            f"{vs_open:+.0%}",
            f"{vs_close:+.0%}",
            f"{joules_per_maccess_base - joules_per_maccess_bump:.2f} J",
        ])

    print_report(format_table(
        breakdown_rows,
        headers=["workload", "cores", "uncore", "memory", "  of which activation"],
    ))
    print("Memory is the single largest consumer on the baseline (Figure 1), and "
          "page activations are a large slice of its dynamic component.")

    print_report(format_table(
        savings_rows,
        headers=["workload", "base-open nJ/access", "BuMP nJ/access",
                 "saving vs open", "saving vs close", "saved per M accesses"],
    ))
    print("BuMP's bulk streaming amortises activations over whole regions; the paper "
          "reports 23% (vs. open-row) and 34% (vs. close-row) average reductions in "
          "dynamic memory energy per access, alongside an 11% throughput gain.")


if __name__ == "__main__":
    main()
