#!/usr/bin/env python3
"""Regenerate every figure and table of the paper in one run.

This is the command-line face of :mod:`repro.analysis.experiments`: it runs
the full experiment matrix (every workload through every evaluated system
configuration), prints each figure/table as a text report, and — where the
paper gives a directly comparable number — prints the paper's value next to
the measured one.

The benchmark harness (``pytest benchmarks/ --benchmark-only``) runs the same
experiments with assertions; this script is for interactive use and for
producing a standalone report file::

    python examples/run_all_experiments.py --accesses 240000 | tee report.txt

Use ``--accesses`` to trade fidelity for runtime (values below ~150000 leave
the paper-sized 4MB LLC only partially warmed) and ``--workloads`` to
restrict the set.  ``--workers N`` fans the underlying (workload x system)
simulation matrix out across N processes through the campaign engine before
any figure is printed, and ``--store DIR`` persists every simulation in an
on-disk artifact store so re-runs (or a crashed run restarted) only simulate
what is missing.
"""

from __future__ import annotations

import argparse

from repro.analysis import experiments, paper_data
from repro.analysis.reporting import (
    format_comparison,
    format_nested_mapping,
    format_table,
    print_report,
)
from repro.exec.progress import ConsoleProgress
from repro.exec.store import ArtifactStore
from repro.workloads.catalog import workload_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=experiments.DEFAULT_ACCESSES)
    parser.add_argument("--workloads", default=",".join(workload_names()))
    parser.add_argument("--skip-design-space", action="store_true",
                        help="skip the Figure 11 sweep (the slowest experiment)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the simulation matrix")
    parser.add_argument("--store", default="",
                        help="artifact store directory (resumable re-runs)")
    args = parser.parse_args()
    selected = [name.strip() for name in args.workloads.split(",") if name.strip()]
    unknown = [name for name in selected if name not in workload_names()]
    if unknown:
        parser.error(f"unknown workloads: {unknown}; known: {workload_names()}")
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    accesses = args.accesses

    # Precompute the full figure matrix as one campaign: every simulation the
    # report needs runs here (in parallel when --workers > 1, satisfied from
    # the store when present); the figure functions below then only aggregate.
    store = ArtifactStore(args.store) if args.store else None
    outcome = experiments.run_experiment_campaign(
        selected, num_accesses=accesses, workers=args.workers, store=store,
        progress=ConsoleProgress())
    print_report(
        f"Campaign: {len(outcome)} (workload x system) runs, "
        f"{outcome.simulated_count} simulated, {outcome.cached_count} from "
        f"store, {outcome.elapsed_seconds:.1f}s\n")
    if not args.skip_design_space:
        # The Figure 11 sweep runs at its own (halved) trace length with
        # custom BuMP geometries; precompute that grid the same way so the
        # slowest experiment is parallel and resumable too.
        sweep = experiments.precompute_design_space(
            selected, num_accesses=experiments.design_space_accesses(accesses),
            workers=args.workers, store=store, progress=ConsoleProgress())
        print_report(
            f"Design-space campaign: {len(sweep)} runs, "
            f"{sweep.simulated_count} simulated, {sweep.cached_count} from "
            f"store, {sweep.elapsed_seconds:.1f}s\n")

    print_report(format_nested_mapping(
        experiments.figure1_energy_breakdown(selected, accesses),
        value_format="{:.2f}", title="Figure 1: server energy shares (Base-open)"))

    print_report(format_nested_mapping(
        experiments.figure2_row_buffer_hit(selected, accesses),
        value_format="{:.2f}",
        title="Figure 2: DRAM row-buffer hit ratio",
        columns=["base_open", "sms", "vwq", "ideal"]))

    print_report(format_nested_mapping(
        experiments.figure3_traffic_breakdown(selected, accesses),
        value_format="{:.2f}",
        title="Figure 3: DRAM access mix",
        columns=["load_reads", "store_reads", "writes"]))

    density = experiments.figure5_region_density(selected, accesses)
    print_report(format_nested_mapping(
        {wl: entry["reads"] for wl, entry in density.items()},
        value_format="{:.2f}", title="Figure 5 (reads): region density",
        columns=["low", "medium", "high"]))
    print_report(format_nested_mapping(
        {wl: entry["writes"] for wl, entry in density.items()},
        value_format="{:.2f}", title="Figure 5 (writes): region density",
        columns=["low", "medium", "high"]))

    print_report(format_comparison(
        experiments.table1_late_writes(selected, accesses),
        paper_data.TABLE1_LATE_WRITES,
        title="Table I: late writes after the first dirty eviction",
        value_format="{:.3f}"))

    accuracy = experiments.figure8_prediction_accuracy(selected, accesses)
    print_report(format_nested_mapping(
        {wl: entry["bump"] for wl, entry in accuracy.items()},
        value_format="{:.2f}", title="Figure 8 (BuMP): coverage and waste"))
    print_report(format_nested_mapping(
        {wl: entry["full_region"] for wl, entry in accuracy.items()},
        value_format="{:.2f}", title="Figure 8 (Full-region): coverage and waste"))

    energy = experiments.figure9_energy_per_access(selected, accesses)
    print_report(format_nested_mapping(
        {wl: {name: row["normalized"] for name, row in entry.items()}
         for wl, entry in energy.items()},
        value_format="{:.2f}",
        title="Figure 9: memory energy per access (normalised to Base-close)",
        columns=["base_close", "base_open", "full_region", "bump"]))

    print_report(format_nested_mapping(
        experiments.figure10_performance(selected, accesses),
        value_format="{:+.2%}",
        title="Figure 10: throughput improvement over Base-close",
        columns=["base_open", "full_region", "bump"]))

    if not args.skip_design_space:
        sweep = experiments.figure11_design_space(
            selected, num_accesses=experiments.design_space_accesses(accesses))
        rows = []
        for region_size in (512, 1024, 2048):
            rows.append([str(region_size)] + [
                f"{sweep[(region_size, threshold)]:+.1%}"
                for threshold in (0.25, 0.5, 0.75, 1.0)
            ])
        print_report("Figure 11: energy improvement over Base-open\n" + format_table(
            rows, headers=["region size (B)", "thr 25%", "thr 50%", "thr 75%", "thr 100%"]))

    print_report(format_nested_mapping(
        experiments.figure12_onchip_overheads(selected, accesses),
        value_format="{:.2f}",
        title="Figure 12: BuMP on-chip overheads (normalised to Base-open)"))

    summary = experiments.figure13_summary(selected, accesses)
    print_report(format_nested_mapping(
        summary, value_format="{:.3f}",
        title="Figure 13: cross-system summary (averaged across workloads)",
        columns=["row_buffer_hit_ratio", "energy_per_access_nj", "energy_normalized"]))
    print_report(format_comparison(
        {name: summary[name]["row_buffer_hit_ratio"] for name in summary
         if name in paper_data.ROW_BUFFER_HIT_RATIO_AVG},
        paper_data.ROW_BUFFER_HIT_RATIO_AVG,
        title="Row-buffer hit ratio vs. paper"))

    print_report(format_comparison(
        experiments.table4_bump_row_hits(selected, accesses),
        paper_data.TABLE4_BUMP_ROW_HITS,
        title="Table IV: BuMP row-buffer hit ratio"))


if __name__ == "__main__":
    main()
