#!/usr/bin/env python3
"""Design-space exploration: picking BuMP's region size and density threshold.

Reproduces Figure 11 of the paper on a configurable workload subset: sweep
the bulk-transfer region size (512B, 1KB, 2KB) and the high-density threshold
(25%, 50%, 75%, 100% of the region's blocks) and report the memory energy per
access improvement of each BuMP variant over the open-row baseline.

The paper selects a 1KB region with an eight-block (50%) threshold: large
enough to amortise activations over many transfers, selective enough to keep
overfetch in check.

Run it with::

    python examples/design_space_exploration.py [--accesses 50000] [--workloads web_search]
"""

from __future__ import annotations

import argparse

from repro.analysis.reporting import format_table, print_report
from repro.common.params import CacheParams, SystemParams
from repro.core.config import BuMPConfig
from repro.sim import base_open, bump_system
from repro.sim.runner import run_configs
from repro.workloads.catalog import workload_names

REGION_SIZES = (512, 1024, 2048)
THRESHOLDS = (0.25, 0.5, 0.75, 1.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=60_000)
    parser.add_argument("--workloads", default="web_search,data_serving",
                        help="comma-separated workload subset to average over")
    parser.add_argument("--llc-mb", type=int, default=1,
                        help="LLC capacity in MiB (paper configuration: 4; the "
                             "default 1MiB reaches steady state on short traces)")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()
    selected = [name.strip() for name in args.workloads.split(",") if name.strip()]
    unknown = set(selected) - set(workload_names())
    if unknown:
        raise SystemExit(f"unknown workloads: {sorted(unknown)}")

    system = SystemParams().scaled(
        llc=CacheParams(size_bytes=args.llc_mb * 1024 * 1024, associativity=16,
                        hit_latency_cycles=8, banks=8)
    )
    configs = [base_open().with_overrides(system=system)]
    labels = {}
    for region_size in REGION_SIZES:
        for threshold in THRESHOLDS:
            bump_config = BuMPConfig().with_region_size(region_size, threshold)
            config = bump_system(bump=bump_config).with_overrides(
                name=f"bump_r{region_size}_t{int(threshold * 100)}",
                system=system,
            )
            labels[config.name] = (region_size, threshold)
            configs.append(config)

    improvements = {key: [] for key in labels.values()}
    for workload in selected:
        print(f"Sweeping BuMP configurations on {workload} ...")
        results = run_configs(workload, configs, num_accesses=args.accesses,
                              seed=args.seed)
        baseline = results["base_open"].memory_energy_per_access_nj
        for name, key in labels.items():
            saving = 1.0 - results[name].memory_energy_per_access_nj / baseline
            improvements[key].append(saving)

    rows = []
    for region_size in REGION_SIZES:
        row = [f"{region_size} B"]
        for threshold in THRESHOLDS:
            values = improvements[(region_size, threshold)]
            row.append(f"{sum(values) / len(values):+.1%}")
        rows.append(row)
    print_report(format_table(
        rows, headers=["region size"] + [f"threshold {int(t*100)}%" for t in THRESHOLDS]))

    best = max(improvements, key=lambda key: sum(improvements[key]))
    print(f"Best configuration on this sweep: {best[0]}B regions with a "
          f"{int(best[1] * 100)}% threshold; the paper selects 1024B / 50%.")


if __name__ == "__main__":
    main()
