"""Data Serving workload (CloudSuite's Cassandra-style NoSQL store).

The paper characterises Data Serving as the most bandwidth-hungry of the six
workloads, with a large write share and the lowest fraction of high-density
read traffic (Figure 5): the store serves key lookups through fine-grained
index traversals (SSTable indexes, bloom filters, memtable skip lists) and
then reads or writes whole rows, which in a column-family store span one to a
few kilobytes.  Compaction and memtable flushes add further coarse-grained
write streams, which is why writes approach the top of the paper's 21-38%
range and why 62-86% of those writes fall into high-density regions.

Mapping onto the generator:

* rows are coarse objects of 1-4KB, around a third of row operations are
  writes (inserts/updates that dirty the whole row);
* lookups are long pointer chases through a large index space with an
  occasional store (memtable bookkeeping);
* popularity is mildly skewed (YCSB-style zipfian), keeping some LLC reuse
  but leaving most row accesses memory-resident;
* several operations are in flight per server thread, so row accesses are
  widely separated in the merged stream and the baseline cannot exploit the
  row-buffer locality they contain.
"""

from __future__ import annotations

from repro.workloads.spec import WorkloadSpec


def spec() -> WorkloadSpec:
    """Parameter set for the Data Serving workload."""
    return WorkloadSpec(
        name="data_serving",
        description="NoSQL key-value store: row reads/writes through fine-grained indexes",
        coarse_heap_bytes=768 * 1024 * 1024,
        fine_space_bytes=512 * 1024 * 1024,
        coarse_object_count=49152,
        coarse_object_bytes=(1024, 4096),
        popularity_skew=0.85,
        unaligned_fraction=0.35,
        coarse_job_fraction=0.33,
        coarse_touch_fraction=0.90,
        coarse_sequential_fraction=0.25,
        coarse_pc_noise=0.25,
        coarse_write_fraction=0.62,
        fine_chain_hops=(4, 14),
        fine_store_fraction=0.25,
        accesses_per_block=1.25,
        coarse_read_pcs=8,
        coarse_write_pcs=6,
        fine_pcs=28,
        jobs_per_core=10,
        instructions_per_access=150.0,
    )
