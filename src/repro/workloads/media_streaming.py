"""Media Streaming workload (CloudSuite's Darwin streaming server).

Media Streaming is the most coarse-grained of the six workloads: the server
copies data from memory-mapped media files into per-client network buffers.
Both sides of the copy are multi-kilobyte sequential touches, so the paper
measures the highest fraction of high-density traffic for it (Figure 5) and
the highest BuMP row-buffer hit ratio (64%, Table IV).  The per-client
buffers are written, giving a solid write share, and the long sequential
streams expose abundant memory-level parallelism -- which is why the paper
reports the *smallest performance gain* for this workload even though its
energy gain is large (the out-of-order cores already hide most of the
stalls).

Mapping onto the generator:

* media file segments and client buffers are large coarse objects (2-8KB)
  touched nearly completely;
* roughly a third of coarse scans are buffer fills (writes);
* the fine-grained component (session lookup, RTP header bookkeeping) is
  comparatively small;
* high memory-level parallelism is reflected in a higher
  ``instructions_per_access`` and in the timing model's MLP parameter used by
  the Media Streaming experiments.
"""

from __future__ import annotations

from repro.workloads.spec import WorkloadSpec


def spec() -> WorkloadSpec:
    """Parameter set for the Media Streaming workload."""
    return WorkloadSpec(
        name="media_streaming",
        description="Streaming server: sequential media segments copied into client buffers",
        coarse_heap_bytes=1024 * 1024 * 1024,
        fine_space_bytes=256 * 1024 * 1024,
        coarse_object_count=32768,
        coarse_object_bytes=(2048, 8192),
        popularity_skew=0.60,
        unaligned_fraction=0.20,
        coarse_job_fraction=0.24,
        coarse_touch_fraction=0.97,
        coarse_sequential_fraction=0.75,
        coarse_pc_noise=0.30,
        coarse_write_fraction=0.50,
        fine_chain_hops=(2, 8),
        fine_store_fraction=0.15,
        accesses_per_block=1.15,
        coarse_read_pcs=5,
        coarse_write_pcs=4,
        fine_pcs=16,
        jobs_per_core=8,
        instructions_per_access=190.0,
    )
