"""Software Testing workload (Klee SAT solver instances, one per core).

CloudSuite's Software Testing runs symbolic-execution/SAT-solving jobs whose
data structures -- clause databases, implication graphs, watched-literal
lists -- are large, pointer-rich and updated in place.  The paper singles
this workload out twice: it has the *largest number of simultaneously active
regions*, which overwhelms the 256-entry RDTT and drops BuMP's read coverage
to 28% (Figure 8 and the surrounding discussion), and it shows the lowest
BuMP row-buffer hit ratio (34%, Table IV).  It also has the lowest fraction
of blocks modified after a region's first dirty eviction (3%, Table I),
because clause blocks are written once when learned and then only read.

Mapping onto the generator:

* coarse objects (clause groups, learned-clause arrays) are smaller (1-2KB)
  and only partially touched, so density clears the 50% threshold less
  comfortably than in the other workloads;
* many operations are in flight per core and the fine-grained share is the
  largest of the six workloads, maximising the number of concurrently active
  regions and the pressure on the RDTT;
* a sizeable fraction of both coarse and fine operations store (clause
  learning, activity counters).
"""

from __future__ import annotations

from repro.workloads.spec import WorkloadSpec


def spec() -> WorkloadSpec:
    """Parameter set for the Software Testing workload."""
    return WorkloadSpec(
        name="software_testing",
        description="SAT solving: pointer-rich clause databases with partial, scattered scans",
        coarse_heap_bytes=768 * 1024 * 1024,
        fine_space_bytes=768 * 1024 * 1024,
        coarse_object_count=65536,
        coarse_object_bytes=(1024, 2048),
        popularity_skew=0.50,
        unaligned_fraction=0.40,
        coarse_job_fraction=0.58,
        coarse_touch_fraction=0.78,
        coarse_sequential_fraction=0.20,
        coarse_pc_noise=0.38,
        coarse_write_fraction=0.58,
        fine_chain_hops=(6, 20),
        fine_store_fraction=0.25,
        accesses_per_block=1.20,
        coarse_read_pcs=10,
        coarse_write_pcs=8,
        fine_pcs=36,
        jobs_per_core=14,
        instructions_per_access=170.0,
    )
