"""Parameter set describing one synthetic server workload.

A :class:`WorkloadSpec` captures everything the trace generator needs to
produce a stream with the memory-system behaviour of one of the paper's six
workloads.  The parameters fall into four groups:

* **Dataset layout** -- how big the coarse-object heap and the fine-grained
  index structures are, how large coarse objects are, and how skewed object
  popularity is (which controls how much temporal reuse the LLC can capture).
* **Operation mix** -- how often an operation touches a coarse object versus
  performing a fine-grained pointer chase, what fraction of coarse operations
  write (fill buffers, update rows) and how often fine-grained operations
  store.
* **Code behaviour** -- how many distinct program counters (functions) are
  used for each kind of operation; code/data correlation is what BuMP's
  predictor exploits.
* **Interleaving** -- how many operations each core keeps in flight, which
  controls how far apart accesses to the same region land in the merged
  request stream and therefore how much row-buffer locality survives at the
  memory controller without bulk streaming.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple


@dataclass
class WorkloadSpec:
    """Knobs of one synthetic server workload."""

    name: str
    description: str = ""

    # ------------------------------------------------------------------ #
    # Dataset layout
    # ------------------------------------------------------------------ #
    #: Size of the coarse-object heap in bytes.  Large relative to the 4MB
    #: LLC so most object accesses are memory-resident, as in the paper.
    coarse_heap_bytes: int = 512 * 1024 * 1024
    #: Size of the fine-grained index space (hash tables, trees) in bytes.
    fine_space_bytes: int = 512 * 1024 * 1024
    #: Number of distinct coarse objects in the pool.
    coarse_object_count: int = 65536
    #: Coarse object size range in bytes (inclusive bounds, block granular).
    coarse_object_bytes: Tuple[int, int] = (1024, 4096)
    #: Zipf skew of object popularity; higher values concentrate accesses on
    #: a hot head and raise LLC hit rates.
    popularity_skew: float = 0.6
    #: Fraction of coarse objects whose start is *not* aligned to a region
    #: boundary; unaligned objects produce the medium-density edge regions
    #: Figure 5 attributes to misalignment.
    unaligned_fraction: float = 0.3

    # ------------------------------------------------------------------ #
    # Operation mix
    # ------------------------------------------------------------------ #
    #: Probability that a newly spawned operation is a coarse-object scan
    #: (the rest are fine-grained pointer chases).
    coarse_job_fraction: float = 0.35
    #: Fraction of blocks of a scanned coarse object that are actually
    #: touched (1.0 touches every block; lower values model partially read
    #: objects and keep density below 100%).
    coarse_touch_fraction: float = 0.95
    #: Fraction of coarse scans that walk their object in strictly ascending
    #: block order (stride-prefetcher friendly); the remainder touch the same
    #: blocks in a data-dependent (shuffled) order, which spatial-footprint
    #: schemes capture but a stride prefetcher cannot.
    coarse_sequential_fraction: float = 0.35
    #: Fraction of coarse-object scans that are writes (buffer fills, row
    #: updates): every touched block is stored to.
    coarse_write_fraction: float = 0.30
    #: Number of pointer-chase hops per fine-grained operation.
    fine_chain_hops: Tuple[int, int] = (3, 12)
    #: Probability that a fine-grained hop also stores to its block.
    fine_store_fraction: float = 0.08
    #: Mean number of same-block accesses per touched block (absorbed by the
    #: L1; only the first reaches the LLC).
    accesses_per_block: float = 1.3

    # ------------------------------------------------------------------ #
    # Code behaviour
    # ------------------------------------------------------------------ #
    #: Fraction of coarse scans performed through "cold" code paths -- a PC
    #: drawn from a large pool that the predictors will rarely see again.
    #: This models the imperfect code/data correlation of real server
    #: software and bounds the coverage any PC-indexed predictor can reach.
    coarse_pc_noise: float = 0.25
    #: Number of distinct functions (PCs) that scan coarse objects for reading.
    coarse_read_pcs: int = 6
    #: Number of distinct functions (PCs) that fill/update coarse objects.
    coarse_write_pcs: int = 4
    #: Number of distinct functions (PCs) involved in fine-grained traversal.
    fine_pcs: int = 24

    # ------------------------------------------------------------------ #
    # Interleaving and timing
    # ------------------------------------------------------------------ #
    #: Concurrent in-flight operations per core; their accesses interleave.
    jobs_per_core: int = 4
    #: Mean instructions executed per memory access (drives the timing model).
    instructions_per_access: float = 6.0

    # Derived / bookkeeping ------------------------------------------------ #
    seed_stream: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        low, high = self.coarse_object_bytes
        if low < 64 or high < low:
            raise ValueError("coarse object size range is invalid")
        if not 0.0 <= self.coarse_job_fraction <= 1.0:
            raise ValueError("coarse_job_fraction must be a probability")
        if not 0.0 < self.coarse_touch_fraction <= 1.0:
            raise ValueError("coarse_touch_fraction must be in (0, 1]")
        if not 0.0 <= self.coarse_write_fraction <= 1.0:
            raise ValueError("coarse_write_fraction must be a probability")
        if not 0.0 <= self.fine_store_fraction <= 1.0:
            raise ValueError("fine_store_fraction must be a probability")
        if self.jobs_per_core < 1:
            raise ValueError("each core needs at least one in-flight operation")
        if not self.seed_stream:
            self.seed_stream = self.name

    def with_overrides(self, **overrides) -> "WorkloadSpec":
        """Return a copy of the spec with selected fields replaced."""
        return replace(self, **overrides)

    @property
    def mean_coarse_object_blocks(self) -> float:
        """Average number of 64-byte blocks in a coarse object."""
        low, high = self.coarse_object_bytes
        return (low + high) / 2.0 / 64.0
