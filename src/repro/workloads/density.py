"""Region access density characterisation (Section III, Figure 5, Table I).

The paper defines *region access density* as the fraction of a memory
region's cache blocks accessed between the first access to the region and the
first LLC eviction of one of its blocks.  This module provides an unlimited
(oracle) tracker of region lifetimes that the system model attaches to the
LLC when an experiment needs:

* the read/write density breakdown of Figure 5 (low <25%, medium 25-50%,
  high >=50% of the region's blocks);
* Table I -- the fraction of a high-density region's blocks that are modified
  only *after* its first dirty LLC eviction (which is what makes the first
  dirty eviction a safe trigger for bulk writebacks);
* the *Ideal* system of Figures 2 and 13 -- the row-buffer hit ratio a memory
  system would achieve if every DRAM access a region generates during one LLC
  lifetime were served from a single activation.

Unlike BuMP's RDTT, the profiler has unbounded capacity and never suffers
conflict terminations; it measures the application's behaviour, not a
hardware budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.common.request import LLCRequest
from repro.common.stats import StatGroup
from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.set_assoc import EvictedLine

#: Density class boundaries from Figure 5 of the paper.
LOW_DENSITY_BOUND = 0.25
HIGH_DENSITY_BOUND = 0.50


def density_class(fraction: float) -> str:
    """Classify a density fraction as ``"low"``, ``"medium"`` or ``"high"``."""
    if fraction >= HIGH_DENSITY_BOUND:
        return "high"
    if fraction >= LOW_DENSITY_BOUND:
        return "medium"
    return "low"


class _RegionLifetime:
    """Tracking state of one region generation."""

    __slots__ = ("accessed", "modified", "reads", "writes", "terminated",
                 "terminated_by_dirty", "modified_after")

    def __init__(self) -> None:
        self.accessed = 0
        self.modified = 0
        self.reads = 0
        self.writes = 0
        self.terminated = False
        self.terminated_by_dirty = False
        self.modified_after = 0


@dataclass
class DensityReport:
    """Aggregated characterisation results for one simulation."""

    #: Fraction of DRAM reads falling into low/medium/high density regions.
    read_density: Dict[str, float] = field(default_factory=dict)
    #: Fraction of DRAM writes falling into low/medium/high density regions.
    write_density: Dict[str, float] = field(default_factory=dict)
    #: Table I: average fraction of a high-density modified region's blocks
    #: modified after its first dirty LLC eviction.
    late_write_fraction: float = 0.0
    #: Row-buffer hit ratio of the Ideal system (one activation per region
    #: lifetime for reads, one per writeback group for writes).
    ideal_row_hit_ratio: float = 0.0
    #: Raw counts (useful for debugging and tests).
    total_reads: int = 0
    total_writes: int = 0

    @property
    def high_density_access_fraction(self) -> float:
        """Fraction of all DRAM accesses that fall into high-density regions."""
        total = self.total_reads + self.total_writes
        if total == 0:
            return 0.0
        high = (self.read_density.get("high", 0.0) * self.total_reads
                + self.write_density.get("high", 0.0) * self.total_writes)
        return high / total


class RegionDensityProfiler(LLCAgent):
    """Oracle tracker of region lifetimes attached to the LLC."""

    name = "density_profiler"

    def __init__(self, region_size: int = REGION_SIZE) -> None:
        self.region_size = region_size
        self.blocks_per_region = region_size // BLOCK_SIZE
        self._lifetimes: Dict[int, _RegionLifetime] = {}
        self._finalized_read_counts = {"low": 0, "medium": 0, "high": 0}
        self._finalized_write_counts = {"low": 0, "medium": 0, "high": 0}
        self._late_write_numerator = 0.0
        self._late_write_regions = 0
        self._ideal_read_hits = 0
        self._ideal_write_hits = 0
        self._total_reads = 0
        self._total_writes = 0
        self.stats = StatGroup("density_profiler")

    # ------------------------------------------------------------------ #
    # Region helpers
    # ------------------------------------------------------------------ #
    def _region(self, block_address: int) -> int:
        return block_address // self.region_size

    def _offset_bit(self, block_address: int) -> int:
        return 1 << ((block_address % self.region_size) // BLOCK_SIZE)

    # ------------------------------------------------------------------ #
    # LLC streams
    # ------------------------------------------------------------------ #
    def on_access(self, request: LLCRequest, hit: bool) -> AgentActions:
        """Track a demand access; start a new lifetime after a termination."""
        region = self._region(request.block_address)
        bit = self._offset_bit(request.block_address)
        lifetime = self._lifetimes.get(region)

        if lifetime is None or (lifetime.terminated and not hit):
            if lifetime is not None:
                self._finalize(lifetime)
            lifetime = _RegionLifetime()
            self._lifetimes[region] = lifetime

        if lifetime.terminated:
            # The lifetime has ended but its blocks are still trickling out of
            # the LLC; record late modifications for the Table I measurement.
            if request.is_store:
                lifetime.modified_after |= bit
                lifetime.modified |= bit
            return AgentActions()

        lifetime.accessed |= bit
        if request.is_store:
            lifetime.modified |= bit
        if not hit:
            lifetime.reads += 1
            self._total_reads += 1
        return AgentActions()

    def on_eviction(self, victim: EvictedLine) -> AgentActions:
        """The first eviction of a block of an active region ends its lifetime."""
        region = self._region(victim.block_address)
        lifetime = self._lifetimes.get(region)
        if victim.dirty:
            self._total_writes += 1
        if lifetime is None:
            return AgentActions()
        if victim.dirty:
            lifetime.writes += 1
        if not lifetime.terminated:
            lifetime.terminated = True
            lifetime.terminated_by_dirty = victim.dirty
        return AgentActions()

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def _density_fraction(self, mask: int) -> float:
        return bin(mask).count("1") / self.blocks_per_region

    def _finalize(self, lifetime: _RegionLifetime) -> None:
        read_class = density_class(self._density_fraction(lifetime.accessed))
        self._finalized_read_counts[read_class] += lifetime.reads
        if lifetime.modified:
            write_class = density_class(self._density_fraction(lifetime.modified))
            self._finalized_write_counts[write_class] += lifetime.writes
            if (write_class == "high"
                    and self._density_fraction(lifetime.accessed) >= HIGH_DENSITY_BOUND):
                total_modified = bin(lifetime.modified).count("1")
                late = bin(lifetime.modified_after).count("1")
                if total_modified > 0:
                    self._late_write_numerator += late / total_modified
                    self._late_write_regions += 1
        if lifetime.reads > 0:
            self._ideal_read_hits += lifetime.reads - 1
        if lifetime.writes > 0:
            self._ideal_write_hits += lifetime.writes - 1

    def report(self) -> DensityReport:
        """Finalise every open lifetime and return the aggregated report."""
        for lifetime in self._lifetimes.values():
            self._finalize(lifetime)
        self._lifetimes.clear()

        report = DensityReport(total_reads=self._total_reads,
                               total_writes=self._total_writes)
        read_total = sum(self._finalized_read_counts.values())
        write_total = sum(self._finalized_write_counts.values())
        report.read_density = {
            key: (value / read_total if read_total else 0.0)
            for key, value in self._finalized_read_counts.items()
        }
        report.write_density = {
            key: (value / write_total if write_total else 0.0)
            for key, value in self._finalized_write_counts.items()
        }
        if self._late_write_regions:
            report.late_write_fraction = self._late_write_numerator / self._late_write_regions
        total_accesses = self._total_reads + self._total_writes
        if total_accesses:
            report.ideal_row_hit_ratio = (
                (self._ideal_read_hits + self._ideal_write_hits) / total_accesses
            )
        return report
