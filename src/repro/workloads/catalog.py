"""Catalog of the six evaluated workloads.

The paper's evaluation covers Data Serving, Media Streaming, Online
Analytics, Software Testing, Web Search and Web Serving.  This module maps
their canonical names to the corresponding :class:`WorkloadSpec` factories so
experiments can iterate over all of them in the same order the figures use.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads import (
    data_serving,
    media_streaming,
    online_analytics,
    software_testing,
    web_search,
    web_serving,
)
from repro.workloads.spec import WorkloadSpec

#: Display names used by the paper's figures, keyed by canonical identifier.
DISPLAY_NAMES = {
    "data_serving": "Data Serving",
    "media_streaming": "Media Streaming",
    "online_analytics": "Online Analytics",
    "software_testing": "Software Testing",
    "web_search": "Web Search",
    "web_serving": "Web Serving",
}

_FACTORIES = {
    "data_serving": data_serving.spec,
    "media_streaming": media_streaming.spec,
    "online_analytics": online_analytics.spec,
    "software_testing": software_testing.spec,
    "web_search": web_search.spec,
    "web_serving": web_serving.spec,
}

#: Instantiated specs in the figure order of the paper.
WORKLOADS: Dict[str, WorkloadSpec] = {name: factory() for name, factory in _FACTORIES.items()}


def workload_names() -> List[str]:
    """Canonical workload identifiers in the paper's figure order."""
    return list(_FACTORIES.keys())


def get_workload(name: str) -> WorkloadSpec:
    """Return a fresh spec for ``name`` (raises ``KeyError`` for unknown names)."""
    key = name.lower().replace(" ", "_").replace("-", "_")
    if key not in _FACTORIES:
        known = ", ".join(sorted(_FACTORIES))
        raise KeyError(f"unknown workload {name!r}; known workloads: {known}")
    return _FACTORIES[key]()


def display_name(name: str) -> str:
    """Human-readable name used in the paper's figures."""
    return DISPLAY_NAMES.get(name, name)
