"""Web Search workload (CloudSuite's Nutch/Lucene index serving node).

Section III.A of the paper uses Web Search as its running example (Figure 4):
query terms are looked up in a hash table -- a fine-grained pointer chase
over a large memory space with low region density -- and each matching term
points to *index pages* holding the posting list and rank metadata for every
document containing the term.  Reading an index page touches kilobytes of
contiguously laid out metadata, which is exactly the high-density behaviour
BuMP streams in bulk.  Writes are comparatively rare (result buffers,
accumulator arrays), so Web Search sits at the low end of the write-share
range.

Mapping onto the generator:

* index pages are coarse objects of 2-8KB, read nearly completely by a small
  set of scoring functions;
* term lookups are hash-bucket chases through a large index space;
* score accumulators give a small coarse write component;
* term popularity is strongly skewed (hot query terms), giving the LLC a
  little more temporal reuse than the analytics workloads.
"""

from __future__ import annotations

from repro.workloads.spec import WorkloadSpec


def spec() -> WorkloadSpec:
    """Parameter set for the Web Search workload."""
    return WorkloadSpec(
        name="web_search",
        description="Search engine node: hash-table term lookups plus dense index-page scans",
        coarse_heap_bytes=1024 * 1024 * 1024,
        fine_space_bytes=512 * 1024 * 1024,
        coarse_object_count=49152,
        coarse_object_bytes=(2048, 8192),
        popularity_skew=0.95,
        unaligned_fraction=0.25,
        coarse_job_fraction=0.23,
        coarse_touch_fraction=0.95,
        coarse_sequential_fraction=0.35,
        coarse_pc_noise=0.25,
        coarse_write_fraction=0.46,
        fine_chain_hops=(3, 12),
        fine_store_fraction=0.15,
        accesses_per_block=1.30,
        coarse_read_pcs=6,
        coarse_write_pcs=3,
        fine_pcs=24,
        jobs_per_core=10,
        instructions_per_access=160.0,
    )
