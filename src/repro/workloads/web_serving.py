"""Web Serving workload (CloudSuite's frontend: web server + PHP application).

The web-serving frontend assembles pages from an object cache and
communicates with clients and backends through sockets.  Section III.B of the
paper calls out exactly these structures as sources of spatially clustered
stores: web pages and frequently used rows are allocated in software caches,
and socket/inter-process buffers are filled contiguously.  Reads mix dense
object-cache hits (coarse) with session lookups, interpreter hash tables and
string machinery (fine).  The write share is toward the upper half of the
range and most writes land in high-density regions.

Mapping onto the generator:

* cached objects (rendered fragments, rows, socket buffers) are coarse
  objects of 1-4KB; a bit over a third of coarse operations fill them
  (writes);
* interpreter and session state produce a substantial fine-grained component
  with a noticeable store fraction;
* popularity is skewed (hot pages), giving moderate LLC reuse.
"""

from __future__ import annotations

from repro.workloads.spec import WorkloadSpec


def spec() -> WorkloadSpec:
    """Parameter set for the Web Serving workload."""
    return WorkloadSpec(
        name="web_serving",
        description="Web/PHP frontend: object-cache fills and socket buffers plus interpreter state",
        coarse_heap_bytes=512 * 1024 * 1024,
        fine_space_bytes=512 * 1024 * 1024,
        coarse_object_count=49152,
        coarse_object_bytes=(1024, 4096),
        popularity_skew=0.90,
        unaligned_fraction=0.30,
        coarse_job_fraction=0.32,
        coarse_touch_fraction=0.92,
        coarse_sequential_fraction=0.30,
        coarse_pc_noise=0.28,
        coarse_write_fraction=0.58,
        fine_chain_hops=(3, 12),
        fine_store_fraction=0.20,
        accesses_per_block=1.30,
        coarse_read_pcs=7,
        coarse_write_pcs=5,
        fine_pcs=26,
        jobs_per_core=10,
        instructions_per_access=150.0,
    )
