"""Online Analytics workload (TPC-H query mix on a commercial database).

The paper runs TPC-H queries 1, 6, 13 and 16 on IBM DB2: queries 1 and 6 are
scan-bound, query 16 is join-bound, and query 13 mixes both.  Scans stream
through table pages (coarse, dense, read-mostly); joins probe hash tables
built over the inner relation (fine-grained, effectively random).  The write
share is the lowest of the six workloads (hash-table build, sort runs and
aggregation state), and most of it lands in high-density regions because the
build side writes whole buckets and run buffers.

Mapping onto the generator:

* table pages are coarse objects of 2-8KB, almost always read in full;
* only a small fraction of coarse operations write (run generation,
  materialised aggregates);
* the join/probe component is a substantial fine-grained chase with very few
  stores;
* popularity skew is low: scans sweep the table, so there is little temporal
  reuse for the LLC to capture.
"""

from __future__ import annotations

from repro.workloads.spec import WorkloadSpec


def spec() -> WorkloadSpec:
    """Parameter set for the Online Analytics workload."""
    return WorkloadSpec(
        name="online_analytics",
        description="TPC-H style mix: table scans plus hash-join probes on a DBMS",
        coarse_heap_bytes=1024 * 1024 * 1024,
        fine_space_bytes=512 * 1024 * 1024,
        coarse_object_count=65536,
        coarse_object_bytes=(2048, 8192),
        popularity_skew=0.35,
        unaligned_fraction=0.25,
        coarse_job_fraction=0.24,
        coarse_touch_fraction=0.95,
        coarse_sequential_fraction=0.45,
        coarse_pc_noise=0.25,
        coarse_write_fraction=0.40,
        fine_chain_hops=(4, 16),
        fine_store_fraction=0.15,
        accesses_per_block=1.35,
        coarse_read_pcs=6,
        coarse_write_pcs=3,
        fine_pcs=20,
        jobs_per_core=10,
        instructions_per_access=150.0,
    )
