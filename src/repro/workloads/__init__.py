"""Synthetic server workload generators.

The paper evaluates BuMP with full-system traces of CloudSuite 2.0 plus a
TPC-H mix on a commercial database.  Those workloads (and their datasets) are
not redistributable, so this package provides parameterised synthetic
generators that reproduce the *memory-system-visible* behaviour the paper
characterises in Section III:

* bimodal access granularity: coarse-grained software objects (database rows,
  index pages, media buffers, cached web pages) scanned with a small set of
  functions, interleaved with fine-grained pointer-chasing (hash-table walks,
  key lookups, tree traversals);
* a significant store/writeback share of memory traffic (21-38%, Figure 3);
* region access density that is strongly bimodal, with most reads and writes
  falling into high-density 1KB regions (Figure 5, Table I);
* heavy inter-core interleaving of requests at the LLC and memory controller,
  which is what destroys row-buffer locality in the baseline (Section II.C).

Each of the six evaluated workloads has its own module documenting how its
parameters map onto the application behaviour the paper describes; the
shared machinery lives in :mod:`repro.workloads.spec` (the parameter set),
:mod:`repro.workloads.generator` (the per-core job engine) and
:mod:`repro.workloads.density` (the region-density characterisation used for
Figure 5, Table I and the Ideal system).
"""

from repro.workloads.catalog import WORKLOADS, get_workload, workload_names
from repro.workloads.density import DensityReport, RegionDensityProfiler
from repro.workloads.generator import (
    CoreGenerator,
    generate_trace,
    generate_trace_buffer,
    generate_trace_legacy,
    iter_trace_chunks,
    iterate_trace,
)
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "WORKLOADS",
    "get_workload",
    "workload_names",
    "DensityReport",
    "RegionDensityProfiler",
    "CoreGenerator",
    "generate_trace",
    "generate_trace_buffer",
    "generate_trace_legacy",
    "iter_trace_chunks",
    "iterate_trace",
    "WorkloadSpec",
]
