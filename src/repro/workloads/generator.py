"""Per-core trace generation.

Each simulated core runs a small pool of concurrent *operations* (jobs) and
round-robins among them, which is how a server thread interleaves work on
several requests and how accesses to one coarse object end up separated by
unrelated accesses -- the behaviour that defeats the memory controller's
scheduling window in the baseline system (Section II.C of the paper).

Two kinds of jobs exist:

* **coarse scans** -- walk a coarse software object (a database row, an index
  page, a media buffer) block by block with a single function (PC).  Read
  scans issue loads; write scans issue stores to every touched block.  A
  configurable fraction of blocks is skipped so density is high but not
  always 100%.
* **pointer chases** -- a chain of dependent accesses to effectively random
  locations of a huge index structure (hash buckets, tree nodes), touching
  one block per hop; these produce the low-density accesses of Figure 5.

The multi-core trace is the deterministic round-robin interleaving of the
per-core streams, which models how requests from many cores mingle at the
shared LLC and memory controllers.

Two engines produce that stream:

* The **columnar engine** (:func:`iter_trace_chunks`,
  :func:`generate_trace_buffer`) is the canonical path.  Every job draws all
  of its randomness in batched ``np.random.Generator`` calls and lands
  directly in :class:`repro.trace.buffer.TraceBuffer` column arrays; the
  round-robin interleave is pure strided array assignment.  Because the
  global stream position ``g`` belongs to core ``g % C`` and job slot
  ``(g // C) % J``, each (core, slot) pair owns the arithmetic progression
  ``g ≡ core + C·slot (mod C·J)`` of positions, and each pair draws from its
  own named RNG stream -- so the emitted trace is bit-identical for every
  chunk size.
* :class:`CoreGenerator` is the legacy object-at-a-time reference
  implementation, kept for per-access experimentation and as the baseline
  the trace-pipeline benchmark measures the columnar engine against.  Its
  stream interleaves job-creation and access draws on one per-core RNG, so
  its output is *statistically* equivalent but not byte-equal to the
  columnar stream.

:func:`generate_trace` and :func:`iterate_trace` are thin compatibility
shims over the columnar engine: they return the canonical stream as boxed
:class:`Access` records.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.common.request import Access, AccessType
from repro.common.rng import seeded_generator, zipf_weights
from repro.trace.buffer import DEFAULT_CHUNK_SIZE, TraceBuffer
from repro.workloads.spec import WorkloadSpec

#: Base virtual PC values for the three code families; spread far apart so
#: different families never collide in predictor tables.
_COARSE_READ_PC_BASE = 0x400000
_COARSE_WRITE_PC_BASE = 0x500000
_FINE_PC_BASE = 0x600000
#: Pool of "cold" PCs used to model scans reached through rarely-executed
#: code paths (see ``WorkloadSpec.coarse_pc_noise``).
_COLD_PC_BASE = 0x700000
_COLD_PC_POOL = 4096
#: The fine-grained index space starts above the coarse heap.
_FINE_SPACE_OFFSET_ALIGN = REGION_SIZE

_OFFSET_CHOICES = BLOCK_SIZE // 8


# --------------------------------------------------------------------- #
# Shared dataset layout
# --------------------------------------------------------------------- #
class _CoreLayout:
    """Per-core dataset layout shared by both generator engines.

    Drawn from the ``.../core{c}`` RNG stream in a fixed order, so the
    columnar engine and the legacy :class:`CoreGenerator` see the identical
    coarse-object pool and popularity distribution for a given seed.
    """

    __slots__ = ("object_bases", "object_cdf", "coarse_read_pcs",
                 "coarse_write_pcs", "fine_pcs", "fine_base")

    def __init__(self, spec: WorkloadSpec, rng: np.random.Generator) -> None:
        self.object_bases = _allocate_objects(spec, rng)
        weights = zipf_weights(len(self.object_bases), spec.popularity_skew)
        #: Cumulative popularity distribution; sampled with searchsorted so a
        #: job creation costs O(log n) instead of O(n).
        self.object_cdf = np.cumsum(weights)
        self.coarse_read_pcs = np.array(
            [_COARSE_READ_PC_BASE + 16 * i for i in range(spec.coarse_read_pcs)],
            dtype=np.int64)
        self.coarse_write_pcs = np.array(
            [_COARSE_WRITE_PC_BASE + 16 * i for i in range(spec.coarse_write_pcs)],
            dtype=np.int64)
        self.fine_pcs = np.array(
            [_FINE_PC_BASE + 16 * i for i in range(spec.fine_pcs)], dtype=np.int64)
        self.fine_base = _fine_space_base(spec)


def _allocate_objects(spec: WorkloadSpec, rng: np.random.Generator) -> np.ndarray:
    """Pick the base address of every coarse object in the pool.

    Objects are spread uniformly through the coarse heap; a configurable
    fraction starts misaligned with respect to region boundaries.
    """
    max_object = max(spec.coarse_object_bytes)
    usable = max(spec.coarse_heap_bytes - max_object, REGION_SIZE)
    bases = rng.integers(0, usable // REGION_SIZE,
                         size=spec.coarse_object_count) * REGION_SIZE
    misaligned = rng.random(spec.coarse_object_count) < spec.unaligned_fraction
    shift = (rng.integers(1, REGION_SIZE // BLOCK_SIZE,
                          size=spec.coarse_object_count) * BLOCK_SIZE)
    return bases + np.where(misaligned, shift, 0)


def _fine_space_base(spec: WorkloadSpec) -> int:
    base = spec.coarse_heap_bytes
    remainder = base % _FINE_SPACE_OFFSET_ALIGN
    if remainder:
        base += _FINE_SPACE_OFFSET_ALIGN - remainder
    return base


def _core_layout(spec: WorkloadSpec, core: int, seed: int) -> _CoreLayout:
    rng = seeded_generator(seed, f"{spec.seed_stream}/core{core}")
    return _CoreLayout(spec, rng)


# --------------------------------------------------------------------- #
# Columnar engine: vectorized per-slot job streams
# --------------------------------------------------------------------- #
class _SlotStream:
    """The access stream of one (core, slot) pair as column arrays.

    Jobs are drawn sequentially from the slot's own RNG stream; each job's
    randomness is drawn in one batch of vectorized calls, so producing a
    job's accesses costs a handful of NumPy calls regardless of its length.
    The queue decouples job generation from chunk emission: :meth:`take`
    hands out exactly ``n`` rows no matter how job boundaries fall.
    """

    __slots__ = ("spec", "layout", "rng", "_pending", "_head", "_available")

    def __init__(self, spec: WorkloadSpec, layout: _CoreLayout,
                 rng: np.random.Generator) -> None:
        self.spec = spec
        self.layout = layout
        self.rng = rng
        #: FIFO of (pc, address, is_store, instructions) column tuples.
        self._pending: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self._head = 0  # consumed rows of the front tuple
        self._available = 0

    # -- job materialization ------------------------------------------- #
    def _next_job_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self.rng.random() < self.spec.coarse_job_fraction:
            return self._coarse_job_columns()
        return self._fine_job_columns()

    def _coarse_job_columns(self):
        spec, layout, rng = self.spec, self.layout, self.rng
        index = int(np.searchsorted(layout.object_cdf, rng.random()))
        index = min(index, len(layout.object_bases) - 1)
        base = int(layout.object_bases[index])
        low, high = spec.coarse_object_bytes
        size = int(rng.integers(low // BLOCK_SIZE, high // BLOCK_SIZE + 1))
        blocks = base + np.arange(size, dtype=np.int64) * BLOCK_SIZE
        if spec.coarse_touch_fraction < 1.0:
            blocks = blocks[rng.random(len(blocks)) < spec.coarse_touch_fraction]
            if len(blocks) == 0:
                blocks = np.array([base], dtype=np.int64)
        is_write = rng.random() < spec.coarse_write_fraction
        if rng.random() >= spec.coarse_sequential_fraction:
            # Data-dependent walk: same footprint, shuffled visiting order.
            blocks = blocks[rng.permutation(len(blocks))]
        if rng.random() < spec.coarse_pc_noise:
            # A cold code path touches this object: the PC is effectively
            # unique, so PC-indexed predictors cannot anticipate the scan.
            pc = _COLD_PC_BASE + 16 * int(rng.integers(0, _COLD_PC_POOL))
        else:
            pcs = layout.coarse_write_pcs if is_write else layout.coarse_read_pcs
            pc = int(pcs[int(rng.integers(0, len(pcs)))])
        extra = spec.accesses_per_block - 1.0
        if extra > 0:
            # Same-block repeat accesses (absorbed by the L1): each touched
            # block is immediately revisited with probability ``extra``.
            repeats = (rng.random(len(blocks)) < extra).astype(np.int64)
            emitted = np.repeat(blocks, 1 + repeats)
        else:
            emitted = blocks
        count = len(emitted)
        offsets = rng.integers(0, _OFFSET_CHOICES, size=count) * 8
        instructions = np.maximum(
            1, rng.poisson(spec.instructions_per_access, size=count))
        return (np.full(count, pc, dtype=np.int64), emitted + offsets,
                np.full(count, is_write, dtype=np.bool_), instructions)

    def _fine_job_columns(self):
        spec, layout, rng = self.spec, self.layout, self.rng
        low, high = spec.fine_chain_hops
        hops = int(rng.integers(low, high + 1))
        blocks = (layout.fine_base
                  + rng.integers(0, spec.fine_space_bytes // BLOCK_SIZE,
                                 size=hops) * BLOCK_SIZE)
        pcs = layout.fine_pcs[rng.integers(0, len(layout.fine_pcs), size=hops)]
        stores = rng.random(hops) < spec.fine_store_fraction
        offsets = rng.integers(0, _OFFSET_CHOICES, size=hops) * 8
        instructions = np.maximum(
            1, rng.poisson(spec.instructions_per_access, size=hops))
        return pcs, blocks + offsets, stores, instructions

    # -- emission ------------------------------------------------------ #
    def take(self, n: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Pop exactly ``n`` rows, generating further jobs as needed."""
        while self._available < n:
            columns = self._next_job_columns()
            self._pending.append(columns)
            self._available += len(columns[0])
        pieces: List[Tuple[np.ndarray, ...]] = []
        remaining = n
        while remaining > 0:
            front = self._pending[0]
            front_len = len(front[0]) - self._head
            if front_len <= remaining:
                pieces.append(tuple(col[self._head:] for col in front))
                self._pending.pop(0)
                self._head = 0
                remaining -= front_len
            else:
                stop = self._head + remaining
                pieces.append(tuple(col[self._head:stop] for col in front))
                self._head = stop
                remaining = 0
        self._available -= n
        if len(pieces) == 1:
            return pieces[0]
        return tuple(np.concatenate([piece[i] for piece in pieces])
                     for i in range(4))


#: Public names of the per-core building blocks.  The scenario compiler
#: (:mod:`repro.scenario.compiler`) composes tenants from exactly these
#: pieces -- a dataset layout drawn from a caller-supplied RNG stream plus
#: per-slot job streams -- so they are part of this module's contract, not
#: private implementation detail: changing ``CoreLayout.__init__`` or
#: ``SlotStream.take`` is an API change for the scenario engine too.
CoreLayout = _CoreLayout
SlotStream = _SlotStream


def iter_trace_chunks(spec: WorkloadSpec, num_accesses: int, num_cores: int = 16,
                      seed: int = 42,
                      chunk_size: int = DEFAULT_CHUNK_SIZE
                      ) -> Iterator[TraceBuffer]:
    """Stream the canonical multi-core trace as :class:`TraceBuffer` chunks.

    The concatenation of the yielded chunks is bit-identical for every
    ``chunk_size``: each (core, slot) pair draws from its own RNG stream, so
    how emission is windowed cannot reorder any pair's job sequence.
    Memory stays bounded by the chunk size plus at most one in-flight job
    per (core, slot) pair.
    """
    if num_accesses < 0:
        raise ValueError("num_accesses must be non-negative")
    if num_cores < 1:
        raise ValueError("num_cores must be positive")
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    jobs_per_core = spec.jobs_per_core
    period = num_cores * jobs_per_core
    slots: List[List[_SlotStream]] = []
    for core in range(num_cores):
        layout = _core_layout(spec, core, seed)
        slots.append([
            _SlotStream(spec, layout,
                        seeded_generator(seed, f"{spec.seed_stream}/core{core}/slot{s}"))
            for s in range(jobs_per_core)
        ])

    position = 0
    while position < num_accesses:
        count = min(chunk_size, num_accesses - position)
        out_core = np.empty(count, dtype=np.int32)
        out_pc = np.empty(count, dtype=np.uint64)
        out_address = np.empty(count, dtype=np.uint64)
        out_store = np.empty(count, dtype=np.bool_)
        out_instr = np.empty(count, dtype=np.int32)
        for core in range(num_cores):
            for slot in range(jobs_per_core):
                # Global positions of this pair: g ≡ core + C·slot (mod C·J).
                first = (core + num_cores * slot - position) % period
                rows = len(range(first, count, period))
                if rows == 0:
                    continue
                pc, address, is_store, instructions = slots[core][slot].take(rows)
                out_core[first::period] = core
                out_pc[first::period] = pc.astype(np.uint64, copy=False)
                out_address[first::period] = address.astype(np.uint64, copy=False)
                out_store[first::period] = is_store
                out_instr[first::period] = instructions
        yield TraceBuffer(out_core, out_pc, out_address, out_store, out_instr)
        position += count


def generate_trace_buffer(spec: WorkloadSpec, num_accesses: int,
                          num_cores: int = 16, seed: int = 42,
                          chunk_size: int = DEFAULT_CHUNK_SIZE) -> TraceBuffer:
    """Generate the full canonical trace as one columnar buffer."""
    return TraceBuffer.concat(
        list(iter_trace_chunks(spec, num_accesses, num_cores=num_cores,
                               seed=seed, chunk_size=chunk_size)))


# --------------------------------------------------------------------- #
# Legacy object-at-a-time engine (reference implementation)
# --------------------------------------------------------------------- #
class CoarseScanJob:
    """Scan of one coarse-grained software object."""

    __slots__ = ("blocks", "position", "is_write", "pc", "repeats_left")

    def __init__(self, blocks: List[int], is_write: bool, pc: int) -> None:
        self.blocks = blocks
        self.position = 0
        self.is_write = is_write
        self.pc = pc
        self.repeats_left = 0

    @property
    def done(self) -> bool:
        """True when every selected block of the object has been visited."""
        return self.position >= len(self.blocks)

    def next_access(self, core: int, rng: np.random.Generator,
                    spec: WorkloadSpec) -> Access:
        """Produce the next access of the scan."""
        if self.repeats_left > 0:
            self.repeats_left -= 1
            block = self.blocks[max(self.position - 1, 0)]
        else:
            block = self.blocks[self.position]
            self.position += 1
            extra = spec.accesses_per_block - 1.0
            if extra > 0 and rng.random() < extra:
                self.repeats_left = 1
        offset = int(rng.integers(0, _OFFSET_CHOICES)) * 8
        access_type = AccessType.STORE if self.is_write else AccessType.LOAD
        instructions = max(1, int(rng.poisson(spec.instructions_per_access)))
        return Access(core=core, pc=self.pc, address=block + offset,
                      type=access_type, instructions=instructions)


class PointerChaseJob:
    """A chain of dependent accesses through a huge index structure."""

    __slots__ = ("hops_left", "pcs", "fine_base", "fine_span")

    def __init__(self, hops: int, pcs, fine_base: int, fine_span: int) -> None:
        self.hops_left = hops
        self.pcs = pcs
        self.fine_base = fine_base
        self.fine_span = fine_span

    @property
    def done(self) -> bool:
        """True when the chain has been fully traversed."""
        return self.hops_left <= 0

    def next_access(self, core: int, rng: np.random.Generator,
                    spec: WorkloadSpec) -> Access:
        """Produce the next hop of the chase."""
        self.hops_left -= 1
        block = self.fine_base + int(rng.integers(0, self.fine_span // BLOCK_SIZE)) * BLOCK_SIZE
        pc = int(self.pcs[int(rng.integers(0, len(self.pcs)))])
        is_store = rng.random() < spec.fine_store_fraction
        access_type = AccessType.STORE if is_store else AccessType.LOAD
        offset = int(rng.integers(0, _OFFSET_CHOICES)) * 8
        instructions = max(1, int(rng.poisson(spec.instructions_per_access)))
        return Access(core=core, pc=pc, address=block + offset,
                      type=access_type, instructions=instructions)


class CoreGenerator:
    """Generates the access stream of one core, one boxed access at a time.

    This is the legacy reference engine: job creation and access emission
    interleave on a single per-core RNG, so its stream is statistically (not
    byte-) equivalent to the columnar engine's.  It remains the baseline the
    trace-pipeline benchmark compares against and a convenient handle for
    per-access experimentation.
    """

    def __init__(self, spec: WorkloadSpec, core: int, seed: int = 42) -> None:
        self.spec = spec
        self.core = core
        self.rng = seeded_generator(seed, f"{spec.seed_stream}/core{core}")
        self._layout = _CoreLayout(spec, self.rng)
        self._jobs: List[object] = [self._new_job() for _ in range(spec.jobs_per_core)]
        self._next_job = 0

    # ------------------------------------------------------------------ #
    # Job management
    # ------------------------------------------------------------------ #
    def _new_job(self):
        spec = self.spec
        if self.rng.random() < spec.coarse_job_fraction:
            return self._new_coarse_job()
        return self._new_fine_job()

    def _new_coarse_job(self) -> CoarseScanJob:
        spec = self.spec
        layout = self._layout
        index = int(np.searchsorted(layout.object_cdf, self.rng.random()))
        index = min(index, len(layout.object_bases) - 1)
        base = int(layout.object_bases[index])
        low, high = spec.coarse_object_bytes
        size = int(self.rng.integers(low // BLOCK_SIZE, high // BLOCK_SIZE + 1)) * BLOCK_SIZE
        blocks = [base + offset for offset in range(0, size, BLOCK_SIZE)]
        if spec.coarse_touch_fraction < 1.0:
            keep = self.rng.random(len(blocks)) < spec.coarse_touch_fraction
            blocks = [block for block, kept in zip(blocks, keep) if kept]
            if not blocks:
                blocks = [base]
        is_write = self.rng.random() < spec.coarse_write_fraction
        if self.rng.random() >= spec.coarse_sequential_fraction:
            # Data-dependent walk: same footprint, shuffled visiting order.
            order = self.rng.permutation(len(blocks))
            blocks = [blocks[i] for i in order]
        if self.rng.random() < spec.coarse_pc_noise:
            # A cold code path touches this object: the PC is effectively
            # unique, so PC-indexed predictors cannot anticipate the scan.
            pc = _COLD_PC_BASE + 16 * int(self.rng.integers(0, _COLD_PC_POOL))
        else:
            pcs = layout.coarse_write_pcs if is_write else layout.coarse_read_pcs
            pc = int(pcs[int(self.rng.integers(0, len(pcs)))])
        return CoarseScanJob(blocks=blocks, is_write=is_write, pc=pc)

    def _new_fine_job(self) -> PointerChaseJob:
        spec = self.spec
        low, high = spec.fine_chain_hops
        hops = int(self.rng.integers(low, high + 1))
        return PointerChaseJob(hops=hops, pcs=self._layout.fine_pcs,
                               fine_base=self._layout.fine_base,
                               fine_span=spec.fine_space_bytes)

    # ------------------------------------------------------------------ #
    # Access stream
    # ------------------------------------------------------------------ #
    def next_access(self) -> Access:
        """Produce the core's next memory access, replacing finished jobs."""
        job_index = self._next_job
        self._next_job = (self._next_job + 1) % len(self._jobs)
        job = self._jobs[job_index]
        access = job.next_access(self.core, self.rng, self.spec)
        if job.done:
            self._jobs[job_index] = self._new_job()
        return access

    def stream(self, count: int) -> Iterator[Access]:
        """Yield ``count`` accesses from this core."""
        for _ in range(count):
            yield self.next_access()


def generate_trace_legacy(spec: WorkloadSpec, num_accesses: int,
                          num_cores: int = 16, seed: int = 42) -> List[Access]:
    """Generate a trace with the object-at-a-time reference engine.

    Used by the trace-pipeline benchmark as the pre-columnar baseline; new
    code should use :func:`generate_trace_buffer` or :func:`iter_trace_chunks`.
    """
    if num_accesses < 0:
        raise ValueError("num_accesses must be non-negative")
    generators = [CoreGenerator(spec, core, seed=seed) for core in range(num_cores)]
    trace: List[Access] = []
    core = 0
    for _ in range(num_accesses):
        trace.append(generators[core].next_access())
        core = (core + 1) % num_cores
    return trace


# --------------------------------------------------------------------- #
# Compatibility shims over the columnar engine
# --------------------------------------------------------------------- #
def generate_trace(spec: WorkloadSpec, num_accesses: int, num_cores: int = 16,
                   seed: int = 42) -> List[Access]:
    """Generate a multi-core trace of ``num_accesses`` interleaved accesses.

    The per-core streams are interleaved round-robin, which deterministically
    models request mingling at the shared LLC: consecutive accesses of one
    core's operation are separated by roughly ``num_cores * jobs_per_core``
    unrelated accesses in the merged stream.

    This is a compatibility shim: the stream is produced by the columnar
    engine and boxed into :class:`Access` records on the way out, so it is
    bit-identical to :func:`generate_trace_buffer` for the same arguments.
    """
    return generate_trace_buffer(spec, num_accesses, num_cores=num_cores,
                                 seed=seed).to_accesses()


def iterate_trace(spec: WorkloadSpec, num_accesses: int, num_cores: int = 16,
                  seed: int = 42) -> Iterator[Access]:
    """Streaming variant of :func:`generate_trace` (bounded memory)."""
    for chunk in iter_trace_chunks(spec, num_accesses, num_cores=num_cores,
                                   seed=seed):
        for access in chunk:
            yield access


def trace_store_fraction(trace: Union[TraceBuffer, List[Access]]) -> float:
    """Fraction of accesses in a trace that are stores (characterisation helper)."""
    if isinstance(trace, TraceBuffer):
        return trace.store_fraction
    if not trace:
        return 0.0
    stores = sum(1 for access in trace if access.is_store)
    return stores / len(trace)
