"""Per-core trace generation.

Each simulated core runs a small pool of concurrent *operations* (jobs) and
round-robins among them, which is how a server thread interleaves work on
several requests and how accesses to one coarse object end up separated by
unrelated accesses -- the behaviour that defeats the memory controller's
scheduling window in the baseline system (Section II.C of the paper).

Two kinds of jobs exist:

* :class:`CoarseScanJob` -- walks a coarse software object (a database row,
  an index page, a media buffer) block by block with a single function (PC).
  Read scans issue loads; write scans issue stores to every touched block.
  A configurable fraction of blocks is skipped so density is high but not
  always 100%.
* :class:`PointerChaseJob` -- performs a chain of dependent accesses to
  effectively random locations of a huge index structure (hash buckets, tree
  nodes), touching one block per hop; these produce the low-density accesses
  of Figure 5.

The multi-core trace is the deterministic round-robin interleaving of the
per-core streams, which models how requests from many cores mingle at the
shared LLC and memory controllers.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.common.request import Access, AccessType
from repro.common.rng import seeded_generator, zipf_weights
from repro.workloads.spec import WorkloadSpec

#: Base virtual PC values for the three code families; spread far apart so
#: different families never collide in predictor tables.
_COARSE_READ_PC_BASE = 0x400000
_COARSE_WRITE_PC_BASE = 0x500000
_FINE_PC_BASE = 0x600000
#: Pool of "cold" PCs used to model scans reached through rarely-executed
#: code paths (see ``WorkloadSpec.coarse_pc_noise``).
_COLD_PC_BASE = 0x700000
_COLD_PC_POOL = 4096
#: The fine-grained index space starts above the coarse heap.
_FINE_SPACE_OFFSET_ALIGN = REGION_SIZE


class CoarseScanJob:
    """Scan of one coarse-grained software object."""

    __slots__ = ("blocks", "position", "is_write", "pc", "repeats_left")

    def __init__(self, blocks: List[int], is_write: bool, pc: int) -> None:
        self.blocks = blocks
        self.position = 0
        self.is_write = is_write
        self.pc = pc
        self.repeats_left = 0

    @property
    def done(self) -> bool:
        """True when every selected block of the object has been visited."""
        return self.position >= len(self.blocks)

    def next_access(self, core: int, rng: np.random.Generator,
                    spec: WorkloadSpec) -> Access:
        """Produce the next access of the scan."""
        if self.repeats_left > 0:
            self.repeats_left -= 1
            block = self.blocks[max(self.position - 1, 0)]
        else:
            block = self.blocks[self.position]
            self.position += 1
            extra = spec.accesses_per_block - 1.0
            if extra > 0 and rng.random() < extra:
                self.repeats_left = 1
        offset = int(rng.integers(0, BLOCK_SIZE // 8)) * 8
        access_type = AccessType.STORE if self.is_write else AccessType.LOAD
        instructions = max(1, int(rng.poisson(spec.instructions_per_access)))
        return Access(core=core, pc=self.pc, address=block + offset,
                      type=access_type, instructions=instructions)


class PointerChaseJob:
    """A chain of dependent accesses through a huge index structure."""

    __slots__ = ("hops_left", "pcs", "fine_base", "fine_span")

    def __init__(self, hops: int, pcs: List[int], fine_base: int, fine_span: int) -> None:
        self.hops_left = hops
        self.pcs = pcs
        self.fine_base = fine_base
        self.fine_span = fine_span

    @property
    def done(self) -> bool:
        """True when the chain has been fully traversed."""
        return self.hops_left <= 0

    def next_access(self, core: int, rng: np.random.Generator,
                    spec: WorkloadSpec) -> Access:
        """Produce the next hop of the chase."""
        self.hops_left -= 1
        block = self.fine_base + int(rng.integers(0, self.fine_span // BLOCK_SIZE)) * BLOCK_SIZE
        pc = self.pcs[int(rng.integers(0, len(self.pcs)))]
        is_store = rng.random() < spec.fine_store_fraction
        access_type = AccessType.STORE if is_store else AccessType.LOAD
        offset = int(rng.integers(0, BLOCK_SIZE // 8)) * 8
        instructions = max(1, int(rng.poisson(spec.instructions_per_access)))
        return Access(core=core, pc=pc, address=block + offset,
                      type=access_type, instructions=instructions)


class CoreGenerator:
    """Generates the access stream of one core for one workload."""

    def __init__(self, spec: WorkloadSpec, core: int, seed: int = 42) -> None:
        self.spec = spec
        self.core = core
        self.rng = seeded_generator(seed, f"{spec.seed_stream}/core{core}")
        self._object_bases = self._allocate_objects()
        weights = zipf_weights(len(self._object_bases), spec.popularity_skew)
        #: Cumulative popularity distribution; sampled with searchsorted so a
        #: job creation costs O(log n) instead of O(n).
        self._object_cdf = np.cumsum(weights)
        self._coarse_read_pcs = [_COARSE_READ_PC_BASE + 16 * i
                                 for i in range(spec.coarse_read_pcs)]
        self._coarse_write_pcs = [_COARSE_WRITE_PC_BASE + 16 * i
                                  for i in range(spec.coarse_write_pcs)]
        self._fine_pcs = [_FINE_PC_BASE + 16 * i for i in range(spec.fine_pcs)]
        self._fine_base = self._fine_space_base()
        self._jobs: List[object] = [self._new_job() for _ in range(spec.jobs_per_core)]
        self._next_job = 0

    # ------------------------------------------------------------------ #
    # Dataset layout
    # ------------------------------------------------------------------ #
    def _allocate_objects(self) -> np.ndarray:
        """Pick the base address of every coarse object in the pool.

        Objects are spread uniformly through the coarse heap; a configurable
        fraction starts misaligned with respect to region boundaries.
        """
        spec = self.spec
        max_object = max(spec.coarse_object_bytes)
        usable = max(spec.coarse_heap_bytes - max_object, REGION_SIZE)
        bases = self.rng.integers(0, usable // REGION_SIZE,
                                  size=spec.coarse_object_count) * REGION_SIZE
        misaligned = self.rng.random(spec.coarse_object_count) < spec.unaligned_fraction
        shift = (self.rng.integers(1, REGION_SIZE // BLOCK_SIZE,
                                   size=spec.coarse_object_count) * BLOCK_SIZE)
        return bases + np.where(misaligned, shift, 0)

    def _fine_space_base(self) -> int:
        base = self.spec.coarse_heap_bytes
        remainder = base % _FINE_SPACE_OFFSET_ALIGN
        if remainder:
            base += _FINE_SPACE_OFFSET_ALIGN - remainder
        return base

    # ------------------------------------------------------------------ #
    # Job management
    # ------------------------------------------------------------------ #
    def _new_job(self):
        spec = self.spec
        if self.rng.random() < spec.coarse_job_fraction:
            return self._new_coarse_job()
        return self._new_fine_job()

    def _new_coarse_job(self) -> CoarseScanJob:
        spec = self.spec
        index = int(np.searchsorted(self._object_cdf, self.rng.random()))
        index = min(index, len(self._object_bases) - 1)
        base = int(self._object_bases[index])
        low, high = spec.coarse_object_bytes
        size = int(self.rng.integers(low // BLOCK_SIZE, high // BLOCK_SIZE + 1)) * BLOCK_SIZE
        blocks = [base + offset for offset in range(0, size, BLOCK_SIZE)]
        if spec.coarse_touch_fraction < 1.0:
            keep = self.rng.random(len(blocks)) < spec.coarse_touch_fraction
            blocks = [block for block, kept in zip(blocks, keep) if kept]
            if not blocks:
                blocks = [base]
        is_write = self.rng.random() < spec.coarse_write_fraction
        if self.rng.random() >= spec.coarse_sequential_fraction:
            # Data-dependent walk: same footprint, shuffled visiting order.
            order = self.rng.permutation(len(blocks))
            blocks = [blocks[i] for i in order]
        if self.rng.random() < spec.coarse_pc_noise:
            # A cold code path touches this object: the PC is effectively
            # unique, so PC-indexed predictors cannot anticipate the scan.
            pc = _COLD_PC_BASE + 16 * int(self.rng.integers(0, _COLD_PC_POOL))
        else:
            pcs = self._coarse_write_pcs if is_write else self._coarse_read_pcs
            pc = pcs[int(self.rng.integers(0, len(pcs)))]
        return CoarseScanJob(blocks=blocks, is_write=is_write, pc=pc)

    def _new_fine_job(self) -> PointerChaseJob:
        spec = self.spec
        low, high = spec.fine_chain_hops
        hops = int(self.rng.integers(low, high + 1))
        return PointerChaseJob(hops=hops, pcs=self._fine_pcs,
                               fine_base=self._fine_base,
                               fine_span=spec.fine_space_bytes)

    # ------------------------------------------------------------------ #
    # Access stream
    # ------------------------------------------------------------------ #
    def next_access(self) -> Access:
        """Produce the core's next memory access, replacing finished jobs."""
        job_index = self._next_job
        self._next_job = (self._next_job + 1) % len(self._jobs)
        job = self._jobs[job_index]
        access = job.next_access(self.core, self.rng, self.spec)
        if job.done:
            self._jobs[job_index] = self._new_job()
        return access

    def stream(self, count: int) -> Iterator[Access]:
        """Yield ``count`` accesses from this core."""
        for _ in range(count):
            yield self.next_access()


def generate_trace(spec: WorkloadSpec, num_accesses: int, num_cores: int = 16,
                   seed: int = 42) -> List[Access]:
    """Generate a multi-core trace of ``num_accesses`` interleaved accesses.

    The per-core streams are interleaved round-robin, which deterministically
    models request mingling at the shared LLC: consecutive accesses of one
    core's operation are separated by roughly ``num_cores * jobs_per_core``
    unrelated accesses in the merged stream.
    """
    if num_accesses < 0:
        raise ValueError("num_accesses must be non-negative")
    generators = [CoreGenerator(spec, core, seed=seed) for core in range(num_cores)]
    trace: List[Access] = []
    core = 0
    for _ in range(num_accesses):
        trace.append(generators[core].next_access())
        core = (core + 1) % num_cores
    return trace


def iterate_trace(spec: WorkloadSpec, num_accesses: int, num_cores: int = 16,
                  seed: int = 42) -> Iterator[Access]:
    """Streaming variant of :func:`generate_trace` (constant memory)."""
    generators = [CoreGenerator(spec, core, seed=seed) for core in range(num_cores)]
    core = 0
    for _ in range(num_accesses):
        yield generators[core].next_access()
        core = (core + 1) % num_cores


def trace_store_fraction(trace: List[Access]) -> float:
    """Fraction of accesses in a trace that are stores (characterisation helper)."""
    if not trace:
        return 0.0
    stores = sum(1 for access in trace if access.is_store)
    return stores / len(trace)
