"""Memory-controller transaction scheduling policies.

The paper's systems all use FR-FCFS [Rixner et al., ISCA 2000]
(:mod:`repro.dram.scheduler`); Section VI discusses how policies that trade
row-buffer locality for fairness compose with BuMP.  This module provides the
alternatives the discussion and the ablation benchmarks need.  Every policy
exposes the same queue interface the controller consumes:

* ``push(request, coords)`` -- append one pending transfer;
* ``pop_next(open_rows)`` -- remove and return the next ``(request, coords)``
  to serve given the currently open row of every bank;
* ``any_pending_for_row(coords)`` -- whether another visible request targets
  the same row (consulted by the close-row page policy);
* ``window`` and ``__len__``.

Policies provided:

``FCFSQueue``
    Strict arrival order.  The lower bound on row-buffer locality: only
    accidentally adjacent same-row requests merge into row hits.

``FRFCFSQueue``
    The paper's policy (re-exported from :mod:`repro.dram.scheduler`).

``BankRoundRobinQueue``
    A fairness-oriented scheduler in the spirit of fair queuing memory
    systems: it rotates service across cores, picking each core's oldest
    request (row hits within the chosen core are still preferred).  Trades
    row locality for per-core fairness, the trade-off Section VI cites.

``DrainWhenFullWriteQueue``
    A write-buffering wrapper: writes are held in a separate queue and
    drained in row-sorted batches once a high-watermark is reached (or at
    the end of the run), while reads flow through the wrapped policy.  This
    mimics how real controllers schedule writebacks opportunistically and is
    the mechanism VWQ-style proposals build on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.common.request import DRAMRequest
from repro.dram.address_mapping import DRAMCoordinates
from repro.dram.scheduler import FRFCFSQueue, open_row_key_set, row_state_key


def _as_open_set(open_rows) -> set:
    """Accept either a set of combined keys or a {(rank, bank): row} mapping."""
    return open_rows if type(open_rows) is set else open_row_key_set(open_rows)

PendingEntry = Tuple[DRAMRequest, DRAMCoordinates]


class FCFSQueue:
    """Strict first-come-first-served transaction queue."""

    def __init__(self, window: int = 64) -> None:
        if window < 1:
            raise ValueError("scheduling window must hold at least one request")
        self.window = window
        self._pending: List[PendingEntry] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> List[PendingEntry]:
        """The queued requests, oldest first (read-only view for tests)."""
        return list(self._pending)

    def push(self, request: DRAMRequest, coords: DRAMCoordinates) -> None:
        """Append a request to the tail of the queue."""
        self._pending.append((request, coords))

    def pop_next(self, open_rows) -> Optional[PendingEntry]:
        """Serve strictly in arrival order regardless of row-buffer state."""
        if not self._pending:
            return None
        return self._pending.pop(0)

    def any_pending_for_row(self, coords: DRAMCoordinates) -> bool:
        """Whether a queued request within the window targets the same row."""
        limit = min(self.window, len(self._pending))
        for index in range(limit):
            other = self._pending[index][1]
            if (other.rank == coords.rank and other.bank == coords.bank
                    and other.row == coords.row):
                return True
        return False


class BankRoundRobinQueue:
    """Core-rotating scheduler that bounds any one core's share of service.

    Requests are bucketed per issuing core; the scheduler rotates across the
    cores that have pending requests, and within the chosen core's bucket it
    prefers a request hitting an open row, falling back to the core's oldest
    request.  This approximates fair-queuing memory scheduling: no core can
    monopolise the row buffer with a long same-row run while others starve.
    """

    def __init__(self, window: int = 64) -> None:
        if window < 1:
            raise ValueError("scheduling window must hold at least one request")
        self.window = window
        self._per_core: "OrderedDict[int, List[PendingEntry]]" = OrderedDict()
        self._size = 0
        self._rotation: List[int] = []
        self._rotation_index = 0

    def __len__(self) -> int:
        return self._size

    @property
    def pending(self) -> List[PendingEntry]:
        """All queued requests, grouped by core (read-only view for tests)."""
        entries: List[PendingEntry] = []
        for bucket in self._per_core.values():
            entries.extend(bucket)
        return entries

    def push(self, request: DRAMRequest, coords: DRAMCoordinates) -> None:
        """Append a request to its core's bucket."""
        self._per_core.setdefault(request.core, []).append((request, coords))
        self._size += 1

    def _next_core(self) -> Optional[int]:
        cores = [core for core, bucket in self._per_core.items() if bucket]
        if not cores:
            return None
        if self._rotation != cores:
            self._rotation = cores
            self._rotation_index %= len(cores)
        core = self._rotation[self._rotation_index % len(self._rotation)]
        self._rotation_index = (self._rotation_index + 1) % len(self._rotation)
        return core

    def pop_next(self, open_rows) -> Optional[PendingEntry]:
        """Pick the next core in rotation; prefer its row hits, else its oldest."""
        core = self._next_core()
        if core is None:
            return None
        bucket = self._per_core[core]
        limit = min(self.window, len(bucket))
        open_set = _as_open_set(open_rows)
        chosen = 0
        for index in range(limit):
            coords = bucket[index][1]
            if row_state_key(coords.rank, coords.bank, coords.row) in open_set:
                chosen = index
                break
        entry = bucket.pop(chosen)
        self._size -= 1
        if not bucket:
            del self._per_core[core]
        return entry

    def any_pending_for_row(self, coords: DRAMCoordinates) -> bool:
        """Whether any queued request targets the same row."""
        seen = 0
        for bucket in self._per_core.values():
            for _, other in bucket:
                if seen >= self.window:
                    return False
                seen += 1
                if (other.rank == coords.rank and other.bank == coords.bank
                        and other.row == coords.row):
                    return True
        return False


class DrainWhenFullWriteQueue:
    """Write-buffering wrapper around a read scheduling policy.

    Reads are pushed straight into ``read_queue``; writes accumulate in a
    separate buffer.  Once the buffer reaches ``high_watermark`` entries the
    wrapper switches to drain mode and serves writes -- sorted by (rank, bank,
    row) so same-row writes stream back to back -- until the buffer falls to
    ``low_watermark``.  This is how commodity controllers amortise bus
    turnaround and row activations for writebacks, and it is the substrate
    eager-writeback mechanisms assume.
    """

    def __init__(self, read_queue=None, window: int = 64,
                 high_watermark: int = 32, low_watermark: int = 8) -> None:
        if high_watermark <= low_watermark:
            raise ValueError("high watermark must exceed the low watermark")
        self.window = window
        self.read_queue = read_queue if read_queue is not None else FRFCFSQueue(window)
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self._writes: List[PendingEntry] = []
        self._draining = False

    def __len__(self) -> int:
        return len(self.read_queue) + len(self._writes)

    @property
    def buffered_writes(self) -> int:
        """Number of writes currently held in the write buffer."""
        return len(self._writes)

    @property
    def draining(self) -> bool:
        """True while the wrapper is in write-drain mode."""
        return self._draining

    def push(self, request: DRAMRequest, coords: DRAMCoordinates) -> None:
        """Route writes to the write buffer and reads to the wrapped queue."""
        if request.is_write:
            self._writes.append((request, coords))
        else:
            self.read_queue.push(request, coords)

    def _pop_write(self, open_rows) -> PendingEntry:
        # Prefer a write hitting an open row; otherwise take the write whose
        # (rank, bank, row) sorts first so subsequent pops stream the same row.
        open_set = _as_open_set(open_rows)
        for index, (_, coords) in enumerate(self._writes):
            if row_state_key(coords.rank, coords.bank, coords.row) in open_set:
                return self._writes.pop(index)
        best = min(range(len(self._writes)),
                   key=lambda i: (self._writes[i][1].rank, self._writes[i][1].bank,
                                  self._writes[i][1].row, i))
        return self._writes.pop(best)

    def pop_next(self, open_rows) -> Optional[PendingEntry]:
        """Serve reads normally; batch-drain writes past the high watermark."""
        if self._writes and len(self._writes) >= self.high_watermark:
            self._draining = True
        if self._draining:
            if self._writes:
                entry = self._pop_write(open_rows)
                if len(self._writes) <= self.low_watermark:
                    self._draining = False
                return entry
            self._draining = False

        entry = self.read_queue.pop_next(open_rows)
        if entry is not None:
            return entry
        if self._writes:
            return self._pop_write(open_rows)
        return None

    def any_pending_for_row(self, coords: DRAMCoordinates) -> bool:
        """Whether any queued read or buffered write targets the same row."""
        if self.read_queue.any_pending_for_row(coords):
            return True
        for _, other in self._writes[: self.window]:
            if (other.rank == coords.rank and other.bank == coords.bank
                    and other.row == coords.row):
                return True
        return False


#: Registry used by the controller and the system configuration.
SCHEDULER_FACTORIES = {
    "fcfs": FCFSQueue,
    "frfcfs": FRFCFSQueue,
    "bank_round_robin": BankRoundRobinQueue,
    "write_drain": DrainWhenFullWriteQueue,
}


def make_scheduler(name: str, window: int = 64):
    """Instantiate a scheduling policy by name.

    Raises ``KeyError`` with the list of known policies for unknown names so
    configuration typos fail loudly.
    """
    try:
        factory = SCHEDULER_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(SCHEDULER_FACTORIES))
        raise KeyError(f"unknown scheduler {name!r}; known schedulers: {known}") from None
    return factory(window=window)


def scheduler_names() -> List[str]:
    """Names of all registered scheduling policies."""
    return sorted(SCHEDULER_FACTORIES)
