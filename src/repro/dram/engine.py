"""DRAM engine selection.

Two interchangeable memory-system engines implement the same metrics surface
and produce bit-identical simulation results (the parity suite asserts this
for every workload, named configuration and catalog scenario):

``flat`` (default)
    :class:`repro.dram.flat.FlatMemorySystem` -- preallocated NumPy
    per-(channel, bank) state, flat ring-buffer transaction queues with the
    incremental FR-FCFS bucket scheme, and a batched
    ``enqueue_block_batch`` intake consuming whole per-chunk miss arrays.

``object``
    :class:`repro.dram.system.MemorySystem` driving per-channel
    :class:`repro.dram.controller.MemoryController` instances -- the
    original request-object model, kept as the reference baseline the same
    way the cache layer kept its dict engine (:mod:`repro.cache.engine`).

Select globally with the ``REPRO_DRAM_ENGINE`` environment variable or per
run via the ``dram_engine`` argument of
:class:`repro.sim.system.ServerSystem` / :func:`repro.sim.runner.run_trace`
/ :func:`repro.sim.runner.run_workload_streaming`.

The flat engine covers the configuration space of the paper's evaluation:
FR-FCFS scheduling and DRAM organisations whose rank/bank counts fit the
packed row-state key.  :func:`resolve_dram_engine` transparently falls back
to the object engine outside that space (the ablation-only scheduling
policies of :mod:`repro.dram.policies`, oversized organisations), mirroring
how the cache layer's fast scheduler only engages for ``FRFCFSQueue``.
Results are bit-identical either way, so the fallback is a speed decision,
never a fidelity one.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.common.params import DRAMOrganization
from repro.dram.flat import PACK_LIMIT

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINES",
    "ENGINE_ENV_VAR",
    "dram_engine_name",
    "resolve_dram_engine",
]

#: Environment variable consulted when no explicit engine is requested.
ENGINE_ENV_VAR = "REPRO_DRAM_ENGINE"

#: Engine used when neither the caller nor the environment picks one.
DEFAULT_ENGINE = "flat"

ENGINES = ("flat", "object")


def dram_engine_name(override: Optional[str] = None) -> str:
    """Resolve the requested DRAM engine name.

    Priority: explicit ``override`` argument, then the ``REPRO_DRAM_ENGINE``
    environment variable, then :data:`DEFAULT_ENGINE`.  Unknown names fail
    loudly so configuration typos cannot silently fall back.
    """
    name = override
    if name is None:
        name = os.environ.get(ENGINE_ENV_VAR, "").strip().lower() or DEFAULT_ENGINE
    name = name.lower()
    if name not in ENGINES:
        raise ValueError(
            f"unknown DRAM engine {name!r}; known engines: {', '.join(ENGINES)}")
    return name


def resolve_dram_engine(override: Optional[str] = None,
                        scheduler: str = "frfcfs",
                        org: Optional[DRAMOrganization] = None) -> str:
    """Effective engine for a concrete system configuration.

    Resolves the request like :func:`dram_engine_name`, then downgrades
    ``flat`` to ``object`` when the configuration sits outside the flat
    engine's space: a non-FR-FCFS transaction scheduler (the ablation
    policies only exist in the object engine) or a DRAM organisation whose
    rank/bank counts overflow the packed row-state key.  The downgrade is
    sound because the engines are bit-identical wherever both apply.
    """
    name = dram_engine_name(override)
    if name != "flat":
        return name
    if scheduler != "frfcfs":
        return "object"
    if org is not None and (org.ranks_per_channel > PACK_LIMIT
                            or org.banks_per_rank > PACK_LIMIT):
        # Counts up to PACK_LIMIT are fine: indices 0..PACK_LIMIT-1 fit the
        # packed key's 6-bit fields (the same bound row_state_key packs).
        return "object"
    return "flat"
