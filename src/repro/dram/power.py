"""IDD-current-based DRAM power model (Micron power-calculator style).

The headline energy results of the paper use the per-event constants of
Table III (:mod:`repro.energy.params`).  This module provides the lower-level
model those constants were derived from: the Micron DDR3 power calculator,
which starts from the device's IDD currents and the measured command activity
and computes per-rank power in four groups:

* **background power** -- a weighted mix of the precharge/active standby and
  power-down states, driven by how often any bank of the rank is open and by
  whether the controller uses power-down modes during idle gaps;
* **activate power** -- proportional to how often rows are opened, i.e. to the
  average interval between ACTIVATE commands (``tRC``-equivalent spacing);
* **read/write burst power** -- proportional to data-bus utilisation;
* **termination power** -- I/O drivers plus on-die termination on the rank
  itself and on the other ranks sharing the channel.

The model is deliberately independent from :mod:`repro.energy.dram_energy` so
the two can be cross-checked: ``tests/test_dram_power.py`` asserts that for
the paper's operating points the IDD model lands within a reasonable band of
the Table III constants, and the energy-model ablation benchmark reports both.

Reference: Micron TN-41-01 "Calculating Memory System Power for DDR3" and the
2 Gbit DDR3-1600 x8 data sheet current values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import DDR3Timing, DRAMOrganization


@dataclass
class IDDCurrents:
    """IDD currents (mA) and voltage of one DDR3-1600 2 Gbit x8 device."""

    #: Operating voltage.
    vdd: float = 1.5
    #: One-bank activate-precharge current (measured at tRC min cadence).
    idd0: float = 95.0
    #: Precharge power-down current.
    idd2p: float = 12.0
    #: Precharge standby current (all banks closed, CKE high).
    idd2n: float = 42.0
    #: Active power-down current.
    idd3p: float = 40.0
    #: Active standby current (at least one bank open, CKE high).
    idd3n: float = 57.0
    #: Operating burst read current.
    idd4r: float = 180.0
    #: Operating burst write current.
    idd4w: float = 185.0
    #: Burst refresh current.
    idd5b: float = 215.0
    #: Devices per rank (x8 devices on a 64-bit channel).
    devices_per_rank: int = 8

    def power_w(self, current_ma: float) -> float:
        """Convert a per-device current into per-rank power in watts."""
        return current_ma * 1e-3 * self.vdd * self.devices_per_rank


@dataclass
class TerminationPowers:
    """Per-transfer I/O and termination power (W) while a burst is on the bus.

    Values follow the Micron calculator's defaults for a 2-DIMM-per-channel
    DDR3 topology: the rank driving or receiving data dissipates ``dq_*``;
    every other rank on the channel dissipates ``odt_*`` in its terminators.
    """

    dq_read_w: float = 0.30
    dq_write_w: float = 0.92
    odt_read_other_w: float = 0.76
    odt_write_other_w: float = 0.92


@dataclass
class RankActivity:
    """Observed activity of one rank over a measurement interval.

    All cycle quantities are in memory-bus cycles of the same interval
    ``elapsed_cycles``.
    """

    elapsed_cycles: float
    activations: float
    read_cycles: float
    write_cycles: float
    #: Fraction of the interval during which at least one bank was open.
    any_bank_open_fraction: float = 1.0
    #: Fraction of the idle (non-bursting) time spent in power-down.
    powerdown_fraction: float = 0.0

    @property
    def read_duty(self) -> float:
        """Fraction of the interval the data bus carried read bursts."""
        if self.elapsed_cycles <= 0:
            return 0.0
        return min(self.read_cycles / self.elapsed_cycles, 1.0)

    @property
    def write_duty(self) -> float:
        """Fraction of the interval the data bus carried write bursts."""
        if self.elapsed_cycles <= 0:
            return 0.0
        return min(self.write_cycles / self.elapsed_cycles, 1.0)


@dataclass
class RankPowerBreakdown:
    """Average power of one rank over the measured interval, in watts."""

    background_w: float
    activate_w: float
    read_w: float
    write_w: float
    termination_w: float
    refresh_w: float

    @property
    def total_w(self) -> float:
        """Total average power of the rank."""
        return (self.background_w + self.activate_w + self.read_w + self.write_w
                + self.termination_w + self.refresh_w)

    @property
    def dynamic_w(self) -> float:
        """Power attributable to command/data activity (everything but background)."""
        return self.total_w - self.background_w

    def energy_nj(self, elapsed_seconds: float) -> float:
        """Total rank energy over ``elapsed_seconds`` in nanojoules."""
        return self.total_w * elapsed_seconds * 1e9


class DRAMPowerModel:
    """Micron-calculator-style power model for a DDR3 rank."""

    #: ACTIVATE-to-ACTIVATE spacing at which IDD0 is specified (tRC).
    def __init__(self, currents: IDDCurrents = None,
                 termination: TerminationPowers = None,
                 timing: DDR3Timing = None,
                 org: DRAMOrganization = None) -> None:
        self.currents = currents if currents is not None else IDDCurrents()
        self.termination = termination if termination is not None else TerminationPowers()
        self.timing = timing if timing is not None else DDR3Timing()
        self.org = org if org is not None else DRAMOrganization()

    # ------------------------------------------------------------------ #
    # Component powers
    # ------------------------------------------------------------------ #
    def background_power_w(self, activity: RankActivity) -> float:
        """Standby/power-down power of the rank, weighted by bank-open time."""
        c = self.currents
        active_fraction = min(max(activity.any_bank_open_fraction, 0.0), 1.0)
        pd = min(max(activity.powerdown_fraction, 0.0), 1.0)

        active_standby = c.power_w(c.idd3n)
        active_pd = c.power_w(c.idd3p)
        precharge_standby = c.power_w(c.idd2n)
        precharge_pd = c.power_w(c.idd2p)

        active_w = active_fraction * ((1.0 - pd) * active_standby + pd * active_pd)
        precharge_w = (1.0 - active_fraction) * (
            (1.0 - pd) * precharge_standby + pd * precharge_pd
        )
        return active_w + precharge_w

    def activate_power_w(self, activity: RankActivity) -> float:
        """Row activate/precharge power from the observed activate cadence.

        The IDD0 specification point is one activate-precharge pair every tRC;
        its non-background component scales inversely with the actual average
        spacing between activations.
        """
        if activity.activations <= 0 or activity.elapsed_cycles <= 0:
            return 0.0
        c = self.currents
        timing = self.timing
        spec_power = c.power_w(c.idd0) - c.power_w(c.idd3n)
        actual_interval = activity.elapsed_cycles / activity.activations
        if actual_interval <= 0:
            return 0.0
        scale = timing.tRC / max(actual_interval, float(timing.tRC))
        return spec_power * scale

    def read_power_w(self, activity: RankActivity) -> float:
        """Array read-burst power, scaled by read data-bus duty cycle."""
        c = self.currents
        return (c.power_w(c.idd4r) - c.power_w(c.idd3n)) * activity.read_duty

    def write_power_w(self, activity: RankActivity) -> float:
        """Array write-burst power, scaled by write data-bus duty cycle."""
        c = self.currents
        return (c.power_w(c.idd4w) - c.power_w(c.idd3n)) * activity.write_duty

    def termination_power_w(self, activity: RankActivity) -> float:
        """I/O driver and on-die-termination power of the rank and its peers."""
        t = self.termination
        other_ranks = max(self.org.ranks_per_channel - 1, 0)
        read_w = activity.read_duty * (t.dq_read_w + other_ranks * t.odt_read_other_w)
        write_w = activity.write_duty * (t.dq_write_w + other_ranks * t.odt_write_other_w)
        return read_w + write_w

    def refresh_power_w(self) -> float:
        """Average refresh power of the rank (IDD5 burst amortised over tREFI)."""
        c = self.currents
        # One tRFC-long burst at IDD5B every tREFI; 2 Gbit DDR3: tRFC = 160 ns,
        # tREFI = 7.8 us.
        tRFC_ns = 160.0
        tREFI_ns = 7800.0
        burst_fraction = tRFC_ns / tREFI_ns
        return (c.power_w(c.idd5b) - c.power_w(c.idd3n)) * burst_fraction

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def rank_power(self, activity: RankActivity,
                   include_refresh: bool = True) -> RankPowerBreakdown:
        """Full power breakdown of one rank for the observed activity."""
        return RankPowerBreakdown(
            background_w=self.background_power_w(activity),
            activate_w=self.activate_power_w(activity),
            read_w=self.read_power_w(activity),
            write_w=self.write_power_w(activity),
            termination_w=self.termination_power_w(activity),
            refresh_w=self.refresh_power_w() if include_refresh else 0.0,
        )

    def activation_energy_nj(self) -> float:
        """Energy of a single activate-precharge pair implied by IDD0.

        Useful as a cross-check against Table III's 29.7 nJ activation energy
        (the values agree to within the fidelity of the published constants).
        """
        c = self.currents
        timing = self.timing
        spec_power = c.power_w(c.idd0) - c.power_w(c.idd3n)
        tRC_seconds = timing.tRC * timing.clock_ns * 1e-9
        return spec_power * tRC_seconds * 1e9

    def transfer_energy_nj(self, is_write: bool) -> float:
        """Burst + termination energy of one 64-byte transfer (cross-check)."""
        c = self.currents
        t = self.termination
        timing = self.timing
        burst_seconds = timing.burst_cycles * timing.clock_ns * 1e-9
        other_ranks = max(self.org.ranks_per_channel - 1, 0)
        if is_write:
            array_w = c.power_w(c.idd4w) - c.power_w(c.idd3n)
            term_w = t.dq_write_w + other_ranks * t.odt_write_other_w
        else:
            array_w = c.power_w(c.idd4r) - c.power_w(c.idd3n)
            term_w = t.dq_read_w + other_ranks * t.odt_read_other_w
        return (array_w + term_w) * burst_seconds * 1e9


def activity_from_counters(elapsed_cycles: float, activations: float,
                           reads: float, writes: float,
                           burst_cycles: int = 4,
                           ranks_sharing: int = 1,
                           any_bank_open_fraction: float = 1.0,
                           powerdown_fraction: float = 0.0) -> RankActivity:
    """Build a :class:`RankActivity` from controller-level counters.

    ``ranks_sharing`` spreads channel-level counters evenly over the ranks of
    the channel when per-rank attribution is not available.
    """
    ranks = max(ranks_sharing, 1)
    return RankActivity(
        elapsed_cycles=elapsed_cycles,
        activations=activations / ranks,
        read_cycles=reads * burst_cycles / ranks,
        write_cycles=writes * burst_cycles / ranks,
        any_bank_open_fraction=any_bank_open_fraction,
        powerdown_fraction=powerdown_fraction,
    )
