"""Physical-address-to-DRAM-coordinate mapping.

Section IV.D and V.A of the paper describe two interleaving schemes, both of
the form ``Row : ColumnHigh : Rank : Bank : Channel : ColumnLow : ByteOffset``
but differing in how the column bits are split around the channel/bank/rank
bits:

* **Block-level interleaving** (the close-row baseline, "Base-close"):
  ``ColumnLow`` covers one 64-byte cache block, so consecutive blocks rotate
  across channels, banks and ranks.  This maximises bank-level parallelism
  for sequential streams but guarantees that the blocks of a 1KB region live
  in sixteen different banks, so bulk transfers cannot amortise activations.

* **Region-level interleaving** (Base-open, SMS, VWQ and BuMP):
  ``ColumnLow`` covers one 1KB region, so an entire region maps to a single
  DRAM row of a single bank and consecutive regions rotate across channels,
  banks and ranks.  ``ColumnHigh`` then selects one of the eight 1KB regions
  that share an 8KB row.

The mapping works on block-aligned physical addresses and returns a
:class:`DRAMCoordinates` tuple of (channel, rank, bank, row, column).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.common.addressing import BLOCK_BITS, REGION_BITS
from repro.common.params import DRAMOrganization


class DRAMCoordinates(NamedTuple):
    """Location of one cache block inside the memory system.

    A ``NamedTuple`` rather than a frozen dataclass: one is built per DRAM
    transfer, and tuple construction skips the ``object.__setattr__`` dance
    frozen dataclasses pay per field.
    """

    channel: int = 0
    rank: int = 0
    bank: int = 0
    row: int = 0
    column: int = 0

    @property
    def bank_id(self) -> int:
        """Globally unique bank identifier within a channel (rank * banks + bank)."""
        return self.rank * 1024 + self.bank


class AddressMapping:
    """Splits a block-aligned physical address into DRAM coordinates.

    ``column_low_bits`` counts the *block-granular* column bits placed below
    the channel/bank/rank bits -- 0 for block interleaving (the whole block
    offset already sits in the byte offset) and ``REGION_BITS - BLOCK_BITS``
    (= 4) for region interleaving.
    """

    def __init__(self, org: DRAMOrganization, column_low_bits: int,
                 row_size_bytes: int = 8192) -> None:
        if org.channels & (org.channels - 1):
            raise ValueError("channel count must be a power of two")
        if org.banks_per_rank & (org.banks_per_rank - 1):
            raise ValueError("bank count must be a power of two")
        if org.ranks_per_channel & (org.ranks_per_channel - 1):
            raise ValueError("rank count must be a power of two")

        self.org = org
        self.row_size_bytes = row_size_bytes
        self.column_low_bits = column_low_bits
        self.channel_bits = org.channels.bit_length() - 1
        self.bank_bits = org.banks_per_rank.bit_length() - 1
        self.rank_bits = org.ranks_per_channel.bit_length() - 1
        blocks_per_row = row_size_bytes // (1 << BLOCK_BITS)
        self.column_bits = blocks_per_row.bit_length() - 1
        if column_low_bits > self.column_bits:
            raise ValueError("column_low_bits exceeds total column bits")
        self.column_high_bits = self.column_bits - column_low_bits

    def map(self, block_address: int) -> DRAMCoordinates:
        """Return the DRAM coordinates of a block-aligned physical address."""
        bits = block_address >> BLOCK_BITS

        column_low = bits & ((1 << self.column_low_bits) - 1)
        bits >>= self.column_low_bits

        channel = bits & ((1 << self.channel_bits) - 1)
        bits >>= self.channel_bits

        bank = bits & ((1 << self.bank_bits) - 1)
        bits >>= self.bank_bits

        rank = bits & ((1 << self.rank_bits) - 1)
        bits >>= self.rank_bits

        column_high = bits & ((1 << self.column_high_bits) - 1)
        bits >>= self.column_high_bits

        row = bits
        column = (column_high << self.column_low_bits) | column_low
        return DRAMCoordinates(channel=channel, rank=rank, bank=bank, row=row, column=column)


def make_block_interleaving(org: DRAMOrganization,
                            row_size_bytes: int = 8192) -> AddressMapping:
    """Mapping used by Base-close: consecutive blocks rotate across channels/banks."""
    return AddressMapping(org, column_low_bits=0, row_size_bytes=row_size_bytes)


def make_region_interleaving(org: DRAMOrganization,
                             row_size_bytes: int = 8192,
                             region_bits: int = REGION_BITS) -> AddressMapping:
    """Mapping used by BuMP/Base-open: an entire region maps to one DRAM row."""
    return AddressMapping(
        org,
        column_low_bits=region_bits - BLOCK_BITS,
        row_size_bytes=row_size_bytes,
    )
