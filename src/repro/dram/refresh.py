"""DRAM refresh modelling.

DDR3 devices must refresh every row once per 64 ms retention window.  The
controller satisfies this by issuing one auto-refresh (REF) command per rank
every ``tREFI`` (7.8 us at normal temperature); each REF occupies the rank
for ``tRFC`` cycles and closes every open row in it.

The block-granular controller does not interleave refreshes into its analytic
schedule (their first-order effects are captured here instead):

* **Bandwidth/latency overhead** -- the fraction of time a rank is unavailable
  is ``tRFC / tREFI`` (about 2.8% for 2 Gbit DDR3-1600), which
  :class:`RefreshScheduler` exposes so the timing sensitivity studies can
  charge it.
* **Energy overhead** -- every REF command costs roughly one full-row
  activation plus precharge per bank; :meth:`refresh_energy_nj` integrates
  that over a run's duration for the energy sensitivity analysis.
* **Row-buffer interaction** -- a REF closes all open rows of its rank, so
  long-idle open rows do not survive refresh; :meth:`survives_refresh` lets
  the characterisation code bound how much row-buffer locality an *infinite*
  open-row policy could ever harvest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.params import DDR3Timing, DRAMOrganization


@dataclass
class RefreshParams:
    """Refresh timing of a 2 Gbit DDR3 device (Micron data sheet values)."""

    #: Average refresh command interval in nanoseconds (7.8 us).
    tREFI_ns: float = 7800.0
    #: Refresh cycle time in memory-bus cycles (160 ns at 1.25 ns/cycle).
    tRFC_cycles: int = 128
    #: Retention window in milliseconds; every row is refreshed once per window.
    retention_ms: float = 64.0
    #: Energy of one REF command per rank in nanojoules.  A REF internally
    #: activates and precharges several rows concurrently; the Micron power
    #: calculator attributes roughly 8x a single activation to it for a
    #: 2 Gbit x8 part.
    refresh_energy_nj: float = 237.0

    @property
    def tREFI_cycles(self) -> float:
        """Refresh interval in memory-bus cycles."""
        return self.tREFI_ns / DDR3Timing().clock_ns

    @property
    def refreshes_per_window(self) -> int:
        """Number of REF commands issued per retention window (8192 for DDR3)."""
        return int(round(self.retention_ms * 1e6 / self.tREFI_ns))


class RefreshScheduler:
    """Accounts for per-rank auto-refresh activity over a simulated interval."""

    def __init__(self, params: RefreshParams = None,
                 org: DRAMOrganization = None) -> None:
        self.params = params if params is not None else RefreshParams()
        self.org = org if org is not None else DRAMOrganization()

    # ------------------------------------------------------------------ #
    # Overheads
    # ------------------------------------------------------------------ #
    @property
    def unavailability(self) -> float:
        """Fraction of time each rank is blocked by refresh (tRFC / tREFI)."""
        return self.params.tRFC_cycles / self.params.tREFI_cycles

    def refreshes_in(self, elapsed_bus_cycles: float) -> float:
        """REF commands issued to one rank during ``elapsed_bus_cycles``."""
        if elapsed_bus_cycles <= 0:
            return 0.0
        return elapsed_bus_cycles / self.params.tREFI_cycles

    def total_refreshes_in(self, elapsed_bus_cycles: float) -> float:
        """REF commands issued across every rank of the memory system."""
        ranks = self.org.channels * self.org.ranks_per_channel
        return ranks * self.refreshes_in(elapsed_bus_cycles)

    def refresh_energy_nj(self, elapsed_seconds: float) -> float:
        """Total refresh energy across the memory system over ``elapsed_seconds``."""
        if elapsed_seconds <= 0:
            return 0.0
        elapsed_ns = elapsed_seconds * 1e9
        refreshes_per_rank = elapsed_ns / self.params.tREFI_ns
        ranks = self.org.channels * self.org.ranks_per_channel
        return refreshes_per_rank * ranks * self.params.refresh_energy_nj

    def refresh_power_w(self) -> float:
        """Average refresh power of the whole memory system in watts."""
        # One REF of refresh_energy_nj every tREFI_ns, per rank.
        per_rank_w = self.params.refresh_energy_nj / self.params.tREFI_ns
        ranks = self.org.channels * self.org.ranks_per_channel
        return per_rank_w * ranks

    # ------------------------------------------------------------------ #
    # Row-buffer interaction
    # ------------------------------------------------------------------ #
    def survives_refresh(self, idle_bus_cycles: float) -> bool:
        """Whether an open row left idle for ``idle_bus_cycles`` stays open.

        Any idle span longer than one refresh interval is guaranteed to be
        interrupted by a REF, which precharges the bank.  Used by the
        characterisation code to cap the *ideal* row-buffer locality.
        """
        return idle_bus_cycles < self.params.tREFI_cycles

    def schedule_cycles(self, elapsed_bus_cycles: float) -> List[float]:
        """Issue cycles of the REF commands to one rank during an interval.

        Returns the (deterministic, evenly spaced) refresh issue cycles; the
        command-level tests feed these into the timing checker together with
        regular traffic to confirm the constraints compose.
        """
        interval = self.params.tREFI_cycles
        cycles = []
        cycle = interval
        while cycle <= elapsed_bus_cycles:
            cycles.append(cycle)
            cycle += interval
        return cycles
