"""FR-FCFS transaction scheduling.

The memory controllers in the paper use First-Ready, First-Come-First-Served
scheduling [Rixner et al., ISCA 2000]: among the requests in the transaction
queue, a request that would hit in an already-open row buffer is served
before older requests that would require an activation; ties are broken by
age.  The scheduler only looks at a bounded window of the oldest pending
requests, which is why accesses to the same DRAM page that are separated by
more than the window in the arrival stream cannot be merged into row hits --
the effect Section II.C of the paper identifies as the reason row-buffer
locality goes unexploited in server CMPs.

Selecting the next transaction used to scan the whole window per pop -- the
hottest loop of the simulator.  The queue now keeps the scan's outcome
incrementally instead:

* every pending entry precomputes a combined (row, rank, bank) key and its
  demand-criticality flag at push time;
* per-key FIFO buckets (``_by_key``) group same-row entries, and a ``_ready``
  dict holds exactly the buckets whose row is currently open -- maintained by
  the owning controller through :meth:`note_row_opened` /
  :meth:`note_row_closed` after each bank state change;
* a FIFO of demand entries supplies the oldest-demand fallback.

``pop_next`` then inspects at most the handful of ready buckets (usually
none for the row-locality-poor streams the paper studies) instead of up to
64 queue slots.  The classic window scan is retained verbatim as the
reference path and is used whenever the caller passes its own open-row state
(as the unit tests do); a property test asserts both paths make identical
decisions.  Scheduling semantics are unchanged either way: oldest row hit in
the window, else oldest demand in the window, else the oldest request.

The flat DRAM engine (:mod:`repro.dram.flat`) ports this same bucket scheme
into its fused drain loop (ring-buffer pending lists, singleton-int
buckets, window membership tested against the fence seq instead of a
bisect).  When changing scheduling semantics here, update
``FlatMemorySystem._drain_channel`` in lockstep -- the engine parity suite
will catch a divergence on any workload, but keeping the two readable side
by side is what keeps that cheap.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import List, Optional, Tuple, Union

from repro.common.request import DRAMRequest, KIND_IS_DEMAND
from repro.dram.address_mapping import DRAMCoordinates

PendingEntry = Tuple[DRAMRequest, DRAMCoordinates]

#: Ranks and banks below this bound pack into one int key; anything larger
#: (never the case for a real organisation) falls back to a tuple key.
_PACK_LIMIT = 64


def row_state_key(rank: int, bank: int, row: int):
    """Combined hashable key identifying one (rank, bank, row) triple.

    Packs into a single int when rank and bank are small (always true for
    the organisations the paper evaluates), because int hashing is much
    cheaper than tuple hashing on the scheduling path.
    """
    if 0 <= rank < _PACK_LIMIT and 0 <= bank < _PACK_LIMIT:
        return (row << 12) | (rank << 6) | bank
    return (row, rank, bank)


def open_row_key_set(open_rows) -> set:
    """Normalise an ``{(rank, bank): row}`` mapping to a set of combined keys."""
    return {
        row_state_key(rank, bank, row)
        for (rank, bank), row in open_rows.items()
        if row is not None
    }


class FRFCFSQueue:
    """Bounded-window FR-FCFS transaction queue for one channel."""

    def __init__(self, window: int = 64) -> None:
        if window < 1:
            raise ValueError("scheduling window must hold at least one request")
        self.window = window
        #: Entries oldest-first: (seq, request, coords, row_state_key, is_demand).
        self._pending: List[tuple] = []
        #: Arrival sequence numbers of ``_pending``, kept parallel for bisect.
        self._seqs: List[int] = []
        self._next_seq = 0
        #: row_state_key -> FIFO of seqs pending for that exact row.
        self._by_key: dict = {}
        #: Subset of ``_by_key`` whose row is currently open (same deque
        #: objects; buckets in here are never empty).
        self._ready: dict = {}
        #: FIFO of seqs of demand (latency-critical) entries.
        self._demand: deque = deque()
        #: The owning controller's open-row key set.  When ``pop_next``
        #: receives this very object the incrementally-maintained state is
        #: trusted; any other argument goes through the reference scan.
        self._open_ref: Optional[set] = None

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> List[PendingEntry]:
        """The queued requests, oldest first (read-only view for tests)."""
        return [(entry[1], entry[2]) for entry in self._pending]

    def track_open_rows(self, open_keys: set) -> None:
        """Bind the controller's open-row key set for incremental scheduling.

        The controller must subsequently report every bank state change via
        :meth:`note_row_opened` / :meth:`note_row_closed` (it mutates
        ``open_keys`` in place, so pushes observe the current state too).
        """
        self._open_ref = open_keys
        # Rebuild the ready view in case entries are already queued.
        self._ready = {
            key: bucket for key, bucket in self._by_key.items() if key in open_keys
        }

    def note_row_opened(self, key) -> None:
        """A bank opened ``key``'s row: its pending entries become row hits."""
        bucket = self._by_key.get(key)
        if bucket is not None:
            self._ready[key] = bucket

    def note_row_closed(self, key) -> None:
        """A bank closed ``key``'s row: its pending entries lose readiness."""
        self._ready.pop(key, None)

    def push(self, request: DRAMRequest, coords: DRAMCoordinates) -> None:
        """Append a request to the tail of the queue."""
        rank = coords.rank
        bank = coords.bank
        # row_state_key inlined: push runs once per DRAM transfer.
        if 0 <= rank < _PACK_LIMIT and 0 <= bank < _PACK_LIMIT:
            key = (coords.row << 12) | (rank << 6) | bank
        else:
            key = (coords.row, rank, bank)
        self.push_entry(request, coords, key)

    def push_entry(self, request: DRAMRequest, coords, key) -> None:
        """Append a request with its precomputed row-state key (fast path)."""
        is_demand = KIND_IS_DEMAND[request.kind.code]
        seq = self._next_seq
        self._next_seq = seq + 1
        self._pending.append((seq, request, coords, key, is_demand))
        self._seqs.append(seq)
        bucket = self._by_key.get(key)
        if bucket is None:
            bucket = self._by_key[key] = deque()
        bucket.append(seq)
        if is_demand:
            self._demand.append(seq)
        open_ref = self._open_ref
        if open_ref is not None and key in open_ref:
            self._ready[key] = bucket

    def pop_next(self, open_rows: Union[set, dict]) -> Optional[PendingEntry]:
        """Remove and return the next request to serve under FR-FCFS.

        ``open_rows`` describes the rows currently open across the channel's
        banks: the controller passes the tracked key set (fast incremental
        path); anything else -- a ``(rank, bank) -> row-or-None`` mapping or
        an ad-hoc key set -- is handled by the reference window scan.
        Within the scheduling window the oldest row-hit request wins; when no
        queued request would hit, the oldest *demand* request wins (demand
        reads and writebacks are latency-critical, while prefetches and bulk
        transfers can tolerate extra queueing); with neither, the oldest
        request wins.  Returns ``None`` when the queue is empty.
        """
        pending = self._pending
        if not pending:
            return None
        if open_rows is not self._open_ref:
            return self._pop_next_scan(open_rows)
        entry = self.pop_entry()
        return (entry[1], entry[2])

    def pop_entry(self) -> Optional[tuple]:
        """Fast-path pop: return the full chosen entry under tracked row state.

        Only valid after :meth:`track_open_rows`; the owning controller calls
        this directly so the serve path can reuse the entry's precomputed
        row-state key.  Entry layout: (seq, request, coords, key, is_demand).
        """
        pending = self._pending
        if not pending:
            return None
        limit = self.window if self.window < len(pending) else len(pending)
        chosen = -1
        ready = self._ready
        if ready:
            best_seq = -1
            for bucket in ready.values():
                seq = bucket[0]
                if best_seq < 0 or seq < best_seq:
                    best_seq = seq
            index = bisect_left(self._seqs, best_seq)
            if index < limit:
                chosen = index
        if chosen < 0:
            demand = self._demand
            if demand:
                index = bisect_left(self._seqs, demand[0])
                if index < limit:
                    chosen = index
            if chosen < 0:
                chosen = 0
        return self._pop_entry_at(chosen)

    def _pop_next_scan(self, open_rows) -> PendingEntry:
        """Reference implementation: scan the window, oldest-first."""
        open_set = open_rows if type(open_rows) is set else open_row_key_set(open_rows)
        pending = self._pending
        limit = self.window if self.window < len(pending) else len(pending)
        chosen = -1
        oldest_demand = -1
        for index in range(limit):
            entry = pending[index]
            if entry[3] in open_set:
                chosen = index
                break
            if oldest_demand < 0 and entry[4]:
                oldest_demand = index
        if chosen < 0:
            chosen = oldest_demand if oldest_demand >= 0 else 0
        return self._pop_at(chosen)

    def _pop_at(self, index: int) -> PendingEntry:
        """Remove the entry at ``index`` and return its ``(request, coords)``."""
        entry = self._pop_entry_at(index)
        return (entry[1], entry[2])

    def _pop_entry_at(self, index: int) -> tuple:
        """Remove the entry at ``index`` and retire it from every structure."""
        entry = self._pending.pop(index)
        seq = entry[0]
        key = entry[3]
        del self._seqs[index]
        bucket = self._by_key[key]
        if bucket[0] == seq:
            bucket.popleft()
        else:
            bucket.remove(seq)
        if not bucket:
            del self._by_key[key]
            self._ready.pop(key, None)
        if entry[4]:
            demand = self._demand
            if demand[0] == seq:
                demand.popleft()
            else:
                demand.remove(seq)
        return entry

    def any_pending_for_row(self, coords: DRAMCoordinates) -> bool:
        """True when another queued request (within the window) targets the same row.

        Used by the close-row page policy to decide whether to keep a row
        open after an access (FR-FCFS close-row still merges back-to-back
        hits it can see).
        """
        key = row_state_key(coords.rank, coords.bank, coords.row)
        bucket = self._by_key.get(key)
        if not bucket:
            return False
        limit = self.window if self.window < len(self._pending) else len(self._pending)
        return bisect_left(self._seqs, bucket[0]) < limit
