"""FR-FCFS transaction scheduling.

The memory controllers in the paper use First-Ready, First-Come-First-Served
scheduling [Rixner et al., ISCA 2000]: among the requests in the transaction
queue, a request that would hit in an already-open row buffer is served
before older requests that would require an activation; ties are broken by
age.  The scheduler only looks at a bounded window of the oldest pending
requests, which is why accesses to the same DRAM page that are separated by
more than the window in the arrival stream cannot be merged into row hits --
the effect Section II.C of the paper identifies as the reason row-buffer
locality goes unexploited in server CMPs.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.request import DRAMRequest
from repro.dram.address_mapping import DRAMCoordinates

PendingEntry = Tuple[DRAMRequest, DRAMCoordinates]


class FRFCFSQueue:
    """Bounded-window FR-FCFS transaction queue for one channel."""

    def __init__(self, window: int = 64) -> None:
        if window < 1:
            raise ValueError("scheduling window must hold at least one request")
        self.window = window
        self._pending: List[PendingEntry] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> List[PendingEntry]:
        """The queued requests, oldest first (read-only view for tests)."""
        return list(self._pending)

    def push(self, request: DRAMRequest, coords: DRAMCoordinates) -> None:
        """Append a request to the tail of the queue."""
        self._pending.append((request, coords))

    def pop_next(self, open_rows: dict) -> Optional[PendingEntry]:
        """Remove and return the next request to serve under FR-FCFS.

        ``open_rows`` maps ``(rank, bank)`` to the row currently open in that
        bank (or ``None``).  Within the scheduling window the oldest row-hit
        request wins; when no queued request would hit, the oldest *demand*
        request wins (demand reads and writebacks are latency-critical, while
        prefetches and bulk transfers can tolerate extra queueing); with
        neither, the oldest request wins.  Returns ``None`` when the queue is
        empty.
        """
        pending = self._pending
        if not pending:
            return None
        limit = self.window if self.window < len(pending) else len(pending)
        chosen = None
        oldest_demand = None
        for index in range(limit):
            request, coords = pending[index]
            if open_rows.get((coords.rank, coords.bank)) == coords.row:
                chosen = index
                break
            if oldest_demand is None and request.kind.is_demand:
                oldest_demand = index
        if chosen is None:
            chosen = oldest_demand if oldest_demand is not None else 0
        return pending.pop(chosen)

    def any_pending_for_row(self, coords: DRAMCoordinates) -> bool:
        """True when another queued request (within the window) targets the same row.

        Used by the close-row page policy to decide whether to keep a row
        open after an access (FR-FCFS close-row still merges back-to-back
        hits it can see).
        """
        limit = min(self.window, len(self._pending))
        for index in range(limit):
            other = self._pending[index][1]
            if (other.rank == coords.rank and other.bank == coords.bank
                    and other.row == coords.row):
                return True
        return False
