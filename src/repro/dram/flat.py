"""Batch-vectorized flat-array DRAM engine.

:class:`FlatMemorySystem` is the memory-system counterpart of the PR-3 cache
overhaul (:mod:`repro.cache.flat`): the same DDR3 timing, FR-FCFS scheduling
and page-policy semantics as the object engine
(:class:`repro.dram.system.MemorySystem` driving per-channel
:class:`repro.dram.controller.MemoryController` instances), re-expressed so
the per-transfer cost is a handful of scalar operations instead of an
allocation-heavy call chain.  Results are **bit-identical** to the object
engine -- the parity suite asserts it across every workload, named system
configuration and catalog scenario -- only the speed differs.

Three structural changes carry the speedup:

1. **Batched intake.**  ``enqueue_block_batch`` accepts whole per-chunk
   arrays of (block address, kind code, arrival cycle) triples.  Channel
   routing and full DRAM-coordinate decode (rank/bank/row plus the packed
   row-state key of :func:`repro.dram.scheduler.row_state_key`) run as a few
   NumPy vector operations over the batch, instead of one
   ``DRAMRequest`` allocation, one ``AddressMapping.map`` call and one
   ``DRAMCoordinates`` tuple per transfer.  Batching is exact, not
   approximate: FR-FCFS decisions only ever inspect the oldest ``window``
   pending entries (every candidate is gated on its rank within the window),
   so requests enqueued behind the window cannot influence a pop, and
   serving at the object engine's drain points or at batch boundaries yields
   the same serve order, cycle for cycle.

2. **Flat ring-buffer queues.**  Each channel's transaction queue is a pair
   of parallel Python lists (entry tuples and their arrival sequence
   numbers) with a head cursor: front pops -- the overwhelmingly common case
   for the row-locality-poor streams the paper studies -- advance the cursor
   in O(1) and the dead prefix is compacted away periodically, so no
   per-pop memmove is paid.  On top of the ring sits the incremental
   FR-FCFS bucket scheme ported from :class:`repro.dram.scheduler.FRFCFSQueue`:
   per-row FIFO buckets, a ready view holding exactly the buckets whose row
   is open, and a FIFO of demand entries.  Buckets store a bare ``int`` seq
   while they hold a single entry (almost always, for these streams) and
   are promoted to a list only on the second same-row arrival, so the
   common push allocates nothing.

3. **Preallocated NumPy state, scalar hot loop.**  Open-row ids, per-bank
   ready/activate timestamps, per-channel bus/completion cycles and every
   measurement counter live in preallocated NumPy arrays
   (``open_row[channels, banks]``, ``bank_ready[channels, banks]``, ...).
   The serve loop hoists one channel's state into plain Python scalars and
   lists, runs the bank timing arithmetic in exactly the object engine's
   operation order (IEEE doubles both ways, hence bit-identical cycles),
   and writes the state back once per drain burst.

The engine folds every measurement into the counter arrays at serve time and
never retains completed requests (the object engine's
``record_completed=False`` mode); :meth:`drain` therefore always returns an
empty list.  Select the engine with ``REPRO_DRAM_ENGINE=flat|object`` or the
``dram_engine=`` keyword of :class:`repro.sim.system.ServerSystem` /
:func:`repro.sim.runner.run_trace` (see :mod:`repro.dram.engine`).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Dict, List, Tuple

import numpy as np

from repro.common.addressing import BLOCK_BITS
from repro.common.params import DDR3Timing, DRAMOrganization
from repro.common.request import (
    DRAMRequest,
    DRAMRequestKind,
    KIND_IS_DEMAND,
    KIND_IS_READ,
)
from repro.common.stats import StatGroup
from repro.dram.address_mapping import AddressMapping
from repro.dram.controller import PagePolicy

__all__ = ["FlatMemorySystem", "FlatChannelStats"]

#: Kinds in ``code`` order (mirrors the fast tables of repro.common.request).
_KINDS_BY_CODE = tuple(DRAMRequestKind)
_NUM_KINDS = len(_KINDS_BY_CODE)
_DEMAND_READ_CODE = DRAMRequestKind.DEMAND_READ.code
#: ``KIND_IS_DEMAND`` as an int64 vector for batched demand classification.
_IS_DEMAND_VEC = np.array(KIND_IS_DEMAND, dtype=np.int64)

#: Integer counters per channel, in column order of ``_counts``.
_INT_KEYS = ("accesses", "row_hits", "row_misses", "row_conflicts",
             "activations", "reads", "writes", "demand_reads")
#: Float accumulators per channel, in column order of ``_fcounts``.
_FLOAT_KEYS = ("bus_busy_cycles", "demand_read_latency_cycles",
               "demand_read_service_cycles")

#: Dead ring-buffer prefix length that triggers compaction.  Large enough
#: that the amortized cost per pop is a fraction of a list append, small
#: enough that the dead prefix never holds more than a few KB of tuples.
_COMPACT_THRESHOLD = 512

#: Rank/bank bound of the packed row-state key (``row_state_key`` packs
#: ``(row << 12) | (rank << 6) | bank``); organisations beyond it fall back
#: to the object engine (see :func:`repro.dram.engine.resolve_dram_engine`).
PACK_LIMIT = 64


class FlatChannelStats:
    """Read-only per-channel view mirroring ``MemoryController``'s surface.

    The flat engine keeps all state in system-wide arrays; tests and the
    measurement boundary still want to talk to "the controller of channel
    *i*".  This view adapts one channel of those arrays to the relevant
    subset of the :class:`repro.dram.controller.MemoryController` interface
    (``stats``, ``reset_counters``, ``last_completion_cycle``,
    ``_completed`` -- always empty, the engine never retains requests).
    """

    __slots__ = ("_system", "_channel")

    #: The flat engine never retains completed requests.
    _completed: Tuple = ()

    def __init__(self, system: "FlatMemorySystem", channel: int) -> None:
        self._system = system
        self._channel = channel

    @property
    def channel_id(self) -> int:
        return self._channel

    @property
    def stats(self) -> StatGroup:
        """Measurement counters of this channel as a :class:`StatGroup`."""
        return self._system.channel_stats(self._channel)

    def reset_counters(self) -> None:
        """Zero this channel's measurement counters (state is preserved)."""
        system = self._system
        channel = self._channel
        system.counts[channel, :] = 0
        system.fcounts[channel, :] = 0.0
        system.kind_counts[channel, :] = 0

    @property
    def last_completion_cycle(self) -> float:
        return float(self._system.last_completion[self._channel])

    @property
    def activations(self) -> int:
        return int(self._system.counts[self._channel,
                                       _INT_KEYS.index("activations")])

    def drain(self) -> List[DRAMRequest]:
        """Serve everything pending on this channel (returns no requests)."""
        self._system._drain_channel(self._channel,
                                    self._system._live(self._channel))
        return []


class FlatMemorySystem:
    """All DDR3 channels of the simulated server, flat-array edition.

    Drop-in replacement for :class:`repro.dram.system.MemorySystem` running
    with ``record_completed=False`` (the simulator's configuration): the
    public metrics surface is identical and every statistic is bit-identical.
    Only FR-FCFS scheduling is supported -- the ablation-only alternatives
    live in the object engine (:mod:`repro.dram.policies`).
    """

    def __init__(self, timing: DDR3Timing, org: DRAMOrganization,
                 mapping: AddressMapping,
                 page_policy: PagePolicy = PagePolicy.OPEN,
                 window: int = 64) -> None:
        if window < 1:
            raise ValueError("scheduling window must hold at least one request")
        if (org.ranks_per_channel > PACK_LIMIT
                or org.banks_per_rank > PACK_LIMIT):
            raise ValueError(
                "flat DRAM engine packs (row, rank, bank) into one int key; "
                f"rank and bank counts must not exceed {PACK_LIMIT} "
                "(use the object engine for larger organisations)")
        self.timing = timing
        self.org = org
        self.mapping = mapping
        self.page_policy = page_policy
        self.scheduler = "frfcfs"
        self.window = window
        self._close_policy = page_policy is PagePolicy.CLOSE
        self._drain_threshold = 2 * window

        channels = org.channels
        self._channels = channels
        self._banks_per_rank = org.banks_per_rank
        self._num_banks = org.ranks_per_channel * org.banks_per_rank

        # Decode geometry (one shift/mask pipeline, vectorized per batch).
        self._cl_bits = mapping.column_low_bits
        self._ch_bits = mapping.channel_bits
        self._bank_bits = mapping.bank_bits
        self._rank_bits = mapping.rank_bits
        self._chigh_bits = mapping.column_high_bits
        self._channel_shift = BLOCK_BITS + mapping.column_low_bits
        self._channel_mask = channels - 1

        # ---------------- preallocated NumPy state ---------------------- #
        #: Open row id per (channel, bank); -1 = precharged (no open row).
        self.open_row = np.full((channels, self._num_banks), -1, dtype=np.int64)
        #: Earliest bus cycle each bank accepts the next column command.
        self.bank_ready = np.zeros((channels, self._num_banks))
        #: Cycle of each bank's last activation (tRRD/tRAS/tRC spacing).
        self.last_activate = np.full((channels, self._num_banks), -1.0e18)
        #: Cycle at which each channel's shared data bus becomes free.
        self.bus_free = np.zeros(channels)
        #: Cycle of the last completed transfer per channel.
        self.last_completion = np.zeros(channels)
        #: Integer measurement counters, ``_INT_KEYS`` column order.
        self.counts = np.zeros((channels, len(_INT_KEYS)), dtype=np.int64)
        #: Float accumulators, ``_FLOAT_KEYS`` column order.
        self.fcounts = np.zeros((channels, len(_FLOAT_KEYS)))
        #: Transfer counts by request-kind code.
        self.kind_counts = np.zeros((channels, _NUM_KINDS), dtype=np.int64)

        # ---------------- per-channel flat queues ----------------------- #
        # Ring buffers: parallel entry/seq lists plus a head cursor; the
        # dead prefix below the cursor is compacted away periodically.
        self._pending: List[list] = [[] for _ in range(channels)]
        self._seqs: List[list] = [[] for _ in range(channels)]
        self._head = [0] * channels
        self._next_seq = [0] * channels
        #: row-state key -> pending seq (int) or FIFO list of seqs.
        self._by_key: List[dict] = [{} for _ in range(channels)]
        #: Subset of ``_by_key`` whose row is currently open.
        self._ready: List[dict] = [{} for _ in range(channels)]
        #: FIFO of demand (latency-critical) seqs per channel.
        self._demand: List[deque] = [deque() for _ in range(channels)]
        #: Currently open row-state keys per channel (one per open bank).
        self._open_keys: List[set] = [set() for _ in range(channels)]
        self._open_key_of_bank: List[list] = [
            [None] * self._num_banks for _ in range(channels)
        ]

        self.controllers: Tuple[FlatChannelStats, ...] = tuple(
            FlatChannelStats(self, channel) for channel in range(channels)
        )

    # ------------------------------------------------------------------ #
    # Request intake
    # ------------------------------------------------------------------ #
    def channel_of(self, block_address: int) -> int:
        """Channel index serving ``block_address`` under the active mapping."""
        return (block_address >> self._channel_shift) & self._channel_mask

    def enqueue(self, request: DRAMRequest) -> None:
        """Route one block transfer (compatibility path, one request).

        The simulator always uses :meth:`enqueue_block_batch`; this scalar
        path serves tests and external callers holding boxed ``DRAMRequest``
        objects, and makes identical scheduling decisions.
        """
        self.enqueue_block_batch(
            [request.block_address], [request.kind.code],
            [request.arrival_cycle])

    def enqueue_block_batch(self, block_addresses, kind_codes,
                            arrival_cycles) -> None:
        """Queue a whole batch of block transfers, in arrival order.

        ``block_addresses`` are block-aligned physical addresses,
        ``kind_codes`` the :class:`DRAMRequestKind` ``code`` integers and
        ``arrival_cycles`` the arrival timestamps in memory-bus cycles; the
        three sequences (lists or NumPy arrays) are parallel.  Channel
        routing, coordinate decode and row-state-key packing run vectorized
        over the batch; each channel then absorbs its requests in order,
        serving a window's worth whenever twice the scheduling window is
        pending -- exactly the object engine's eager-drain discipline, so
        the serve order (and with it every statistic) is identical.
        """
        blocks = np.asarray(block_addresses, dtype=np.int64)
        if not len(blocks):
            return
        kinds = np.asarray(kind_codes, dtype=np.int64)
        arrivals = np.asarray(arrival_cycles, dtype=np.float64)

        bits = blocks >> (BLOCK_BITS + self._cl_bits)
        channel = bits & self._channel_mask
        bits = bits >> self._ch_bits
        bank = bits & ((1 << self._bank_bits) - 1)
        bits = bits >> self._bank_bits
        rank = bits & ((1 << self._rank_bits) - 1)
        row = bits >> (self._rank_bits + self._chigh_bits)
        key_vec = (row << 12) | (rank << 6) | bank
        fbank_vec = rank * self._banks_per_rank + bank
        demand_vec = _IS_DEMAND_VEC[kinds]

        threshold = self._drain_threshold
        window = self.window
        if self._channels == 1:
            bounds = (0, len(blocks))
        else:
            # Stable channel split: one argsort + one gather per column
            # instead of per-channel boolean masks; stability preserves each
            # channel's arrival order, which scheduling depends on.
            order = np.argsort(channel, kind="stable")
            channel_sorted = channel[order]
            bounds = np.searchsorted(
                channel_sorted, np.arange(self._channels + 1)).tolist()
            kinds = kinds[order]
            arrivals = arrivals[order]
            fbank_vec = fbank_vec[order]
            row = row[order]
            key_vec = key_vec[order]
            demand_vec = demand_vec[order]
        kinds_c = kinds.tolist()
        arrivals_c = arrivals.tolist()
        fbank_c = fbank_vec.tolist()
        row_c = row.tolist()
        key_c = key_vec.tolist()
        demand_c = demand_vec.tolist()

        for ci in range(self._channels):
            lo = bounds[ci]
            hi = bounds[ci + 1]
            if lo == hi:
                continue
            pending = self._pending[ci]
            seqs = self._seqs[ci]
            by_key = self._by_key[ci]
            ready = self._ready[ci]
            demand = self._demand[ci]
            open_keys = self._open_keys[ci]
            head = self._head[ci]
            seq = self._next_seq[ci]
            pending_append = pending.append
            seqs_append = seqs.append
            by_key_get = by_key.get
            demand_append = demand.append
            for i in range(lo, hi):
                key = key_c[i]
                is_demand = demand_c[i]
                pending_append((seq, kinds_c[i], arrivals_c[i], fbank_c[i],
                                row_c[i], key, is_demand))
                seqs_append(seq)
                bucket = by_key_get(key)
                if bucket is None:
                    by_key[key] = seq
                    if key in open_keys:
                        ready[key] = seq
                else:
                    if type(bucket) is int:
                        bucket = by_key[key] = [bucket, seq]
                    else:
                        bucket.append(seq)
                    if key in open_keys:
                        ready[key] = bucket
                if is_demand:
                    demand_append(seq)
                seq += 1
                if len(pending) - head >= threshold:
                    self._next_seq[ci] = seq
                    self._drain_channel(ci, window)
                    head = self._head[ci]
            self._next_seq[ci] = seq

    # ------------------------------------------------------------------ #
    # Scheduling and serving
    # ------------------------------------------------------------------ #
    def _live(self, channel: int) -> int:
        return len(self._pending[channel]) - self._head[channel]

    def _drain_channel(self, ci: int, count: int) -> None:
        """Serve up to ``count`` requests on channel ``ci`` under FR-FCFS.

        One fused loop covers scheduling (the incremental bucket scheme of
        :class:`repro.dram.scheduler.FRFCFSQueue` -- keep the two in sync),
        bank timing (:meth:`repro.dram.bank.Bank.access`, same operation
        order) and the counter updates of
        :meth:`repro.dram.controller.MemoryController._serve_core`.
        """
        if count <= 0:
            return
        pending = self._pending[ci]
        seqs = self._seqs[ci]
        head = self._head[ci]
        if len(pending) <= head:
            return
        by_key = self._by_key[ci]
        ready = self._ready[ci]
        demand = self._demand[ci]
        open_keys = self._open_keys[ci]
        okob = self._open_key_of_bank[ci]
        window = self.window
        close_policy = self._close_policy

        # Hoist this channel's NumPy state into scalars/lists for the loop.
        open_row = self.open_row[ci].tolist()
        bank_ready = self.bank_ready[ci].tolist()
        last_activate = self.last_activate[ci].tolist()
        bus_free = float(self.bus_free[ci])
        last_completion = float(self.last_completion[ci])
        (accesses, row_hits, row_misses, row_conflicts, activations,
         reads, writes, demand_reads) = self.counts[ci].tolist()
        bus_busy, dr_latency, dr_service = self.fcounts[ci].tolist()
        kind_counts = self.kind_counts[ci].tolist()

        timing = self.timing
        burst = timing.burst_cycles
        tCAS = timing.tCAS
        tRCD = timing.tRCD
        tRP = timing.tRP
        tRAS = timing.tRAS
        tRC = timing.tRC
        tRRD = timing.tRRD
        tWR = timing.tWR
        tRTP = timing.tRTP
        hit_latency = timing.row_hit_latency
        miss_latency = timing.row_miss_latency
        conflict_latency = timing.row_conflict_latency
        is_read_tab = KIND_IS_READ
        by_key_get = by_key.get

        for _ in range(count):
            live = len(pending) - head
            if not live:
                break
            # ---- FR-FCFS choice: oldest row hit in the window, else the
            # oldest demand in the window, else the oldest request.  Window
            # membership of a seq s reduces to ``s <= seqs[head+limit-1]``
            # because seqs is sorted and duplicate-free.
            limit = window if window < live else live
            fence = seqs[head + limit - 1]
            s0 = seqs[head]
            chosen = -1
            if ready:
                best = -1
                for bucket in ready.values():
                    s = bucket if type(bucket) is int else bucket[0]
                    if best < 0 or s < best:
                        best = s
                if best == s0:
                    chosen = head
                elif best <= fence:
                    chosen = bisect_left(seqs, best, head)
            if chosen < 0:
                if demand:
                    d0 = demand[0]
                    if d0 == s0:
                        chosen = head
                    elif d0 <= fence:
                        chosen = bisect_left(seqs, d0, head)
                if chosen < 0:
                    chosen = head
            if chosen == head:
                # Front pop: advance the ring cursor over both parallel
                # lists (the dead prefix stays in place -- its seqs are all
                # smaller than any live one, so bisect with lo=head never
                # sees it -- and is compacted away periodically).
                entry = pending[head]
                pending[head] = None
                head += 1
                if head >= _COMPACT_THRESHOLD:
                    del pending[:head]
                    del seqs[:head]
                    head = 0
            else:
                entry = pending.pop(chosen)
                del seqs[chosen]
            seq, kind, arrival, fbank, req_row, key, is_demand = entry

            # ---- retire from buckets / demand FIFO.
            bucket = by_key[key]
            if type(bucket) is int:
                del by_key[key]
                if key in ready:
                    del ready[key]
            else:
                if bucket[0] == seq:
                    del bucket[0]
                else:
                    bucket.remove(seq)
                if len(bucket) == 1:
                    lone = bucket[0]
                    by_key[key] = lone
                    if key in ready:
                        ready[key] = lone
            if is_demand:
                if demand[0] == seq:
                    demand.popleft()
                else:
                    demand.remove(seq)

            # ---- close-row policy: keep the row open only when another
            # queued request inside the window targets it (checked after
            # this entry's removal, as the object engine does).
            close_after = False
            if close_policy:
                other = by_key_get(key)
                if other is None:
                    close_after = True
                else:
                    other_head = other if type(other) is int else other[0]
                    live_now = len(pending) - head
                    if live_now:
                        limit_now = window if window < live_now else live_now
                        close_after = other_head > seqs[head + limit_now - 1]
                    else:
                        close_after = True

            # ---- bank timing (Bank.access, same operation order).
            bready = bank_ready[fbank]
            start = arrival if arrival > bready else bready
            orow = open_row[fbank]
            if orow == req_row:
                outcome = 0
                issue = start
                row_hits += 1
            elif orow < 0:
                outcome = 1
                floor = last_activate[fbank] + tRRD
                activate = start if start > floor else floor
                issue = activate + tRCD
                activations += 1
                row_misses += 1
                last_activate[fbank] = activate
            else:
                outcome = 2
                last = last_activate[fbank]
                ras_done = last + tRAS
                precharge_start = start if start > ras_done else ras_done
                a1 = precharge_start + tRP
                a2 = last + tRC
                activate = a1 if a1 > a2 else a2
                issue = activate + tRCD
                activations += 1
                row_conflicts += 1
                last_activate[fbank] = activate
            data_ready = issue + tCAS
            if close_after:
                recovery = tRTP if is_read_tab[kind] else tWR
                open_row[fbank] = -1
                bank_ready[fbank] = data_ready + burst + recovery + tRP
                new_key = None
            else:
                open_row[fbank] = req_row
                bank_ready[fbank] = issue + burst
                new_key = key

            # ---- open-key maintenance (controller + note_row_* fused).
            old_key = okob[fbank]
            if new_key != old_key:
                if old_key is not None:
                    open_keys.discard(old_key)
                    if old_key in ready:
                        del ready[old_key]
                if new_key is not None:
                    open_keys.add(new_key)
                    other = by_key_get(new_key)
                    if other is not None:
                        ready[new_key] = other
                okob[fbank] = new_key

            # ---- shared data bus and counters.
            data_start = data_ready if data_ready > bus_free else bus_free
            completion = data_start + burst
            bus_free = completion
            if completion > last_completion:
                last_completion = completion
            accesses += 1
            bus_busy += burst
            kind_counts[kind] += 1
            if is_read_tab[kind]:
                reads += 1
            else:
                writes += 1
            if kind == _DEMAND_READ_CODE:
                demand_reads += 1
                dr_latency += completion - arrival
                if outcome == 0:
                    dr_service += hit_latency
                elif outcome == 1:
                    dr_service += miss_latency
                else:
                    dr_service += conflict_latency

        # Write the hoisted state back into the NumPy arrays.
        self._head[ci] = head
        self.open_row[ci] = open_row
        self.bank_ready[ci] = bank_ready
        self.last_activate[ci] = last_activate
        self.bus_free[ci] = bus_free
        self.last_completion[ci] = last_completion
        self.counts[ci] = (accesses, row_hits, row_misses, row_conflicts,
                           activations, reads, writes, demand_reads)
        self.fcounts[ci] = (bus_busy, dr_latency, dr_service)
        self.kind_counts[ci] = kind_counts

    def drain(self) -> List[DRAMRequest]:
        """Complete all outstanding transfers on every channel.

        The flat engine folds every measurement into the counter arrays at
        serve time and retains no request objects, so the returned list is
        always empty (the object engine behaves the same way under
        ``record_completed=False``).
        """
        for ci in range(self._channels):
            self._drain_channel(ci, self._live(ci))
        return []

    def pending_count(self) -> int:
        """Number of queued-but-unserved transfers across all channels."""
        return sum(self._live(ci) for ci in range(self._channels))

    # ------------------------------------------------------------------ #
    # Aggregated metrics (mirrors repro.dram.system.MemorySystem)
    # ------------------------------------------------------------------ #
    def reset_counters(self) -> None:
        """Zero every measurement counter (architectural state is preserved)."""
        self.counts[:] = 0
        self.fcounts[:] = 0.0
        self.kind_counts[:] = 0

    def channel_stats(self, channel: int) -> StatGroup:
        """One channel's counters as a :class:`StatGroup` (controller shape)."""
        group = StatGroup(f"mc{channel}")
        ints = self.counts[channel].tolist()
        for key, value in zip(_INT_KEYS, ints):
            group.set(key, value)
        floats = self.fcounts[channel].tolist()
        for key, value in zip(_FLOAT_KEYS, floats):
            group.set(key, value)
        for kind, value in zip(_KINDS_BY_CODE, self.kind_counts[channel].tolist()):
            group.set(f"kind_{kind.value}", value)
        return group

    def aggregate_stats(self) -> StatGroup:
        """Merge the per-channel statistics into one group.

        Channels are merged in index order with the same float-addition
        sequence as the object engine's ``StatGroup.merge`` chain, so the
        aggregate is bit-identical, not merely numerically close.
        """
        merged = StatGroup("dram")
        for channel in range(self._channels):
            merged.merge(self.channel_stats(channel))
        return merged

    @property
    def row_hit_ratio(self) -> float:
        """Row-buffer hit ratio across every channel."""
        stats = self.aggregate_stats()
        return stats.ratio("row_hits", "accesses")

    @property
    def activations(self) -> int:
        """Total activations across every channel."""
        return int(self.counts[:, _INT_KEYS.index("activations")].sum())

    @property
    def accesses(self) -> int:
        """Total column accesses (reads + writes) across every channel."""
        return int(self.aggregate_stats()["accesses"])

    @property
    def average_demand_read_latency(self) -> float:
        """Mean loaded demand-read latency in memory-bus cycles, across channels."""
        stats = self.aggregate_stats()
        return stats.ratio("demand_read_latency_cycles", "demand_reads")

    @property
    def average_demand_read_service(self) -> float:
        """Mean unloaded demand-read service latency in bus cycles, across channels."""
        stats = self.aggregate_stats()
        return stats.ratio("demand_read_service_cycles", "demand_reads")

    @property
    def bus_busy_cycles(self) -> float:
        """Total data-bus busy cycles summed across channels."""
        return self.aggregate_stats()["bus_busy_cycles"]

    @property
    def bandwidth_bound_cycles(self) -> float:
        """Bus cycles the busiest channel needs just to move all its data."""
        if not self._channels:
            return 0.0
        busy = self.fcounts[:, _FLOAT_KEYS.index("bus_busy_cycles")]
        return float(busy.max())

    @property
    def elapsed_cycles(self) -> float:
        """Cycle of the last completed transfer on the busiest channel."""
        if not self._channels:
            return 0.0
        return float(self.last_completion.max())

    def traffic_by_kind(self) -> Dict[DRAMRequestKind, int]:
        """Number of transfers of each provenance kind."""
        totals = self.kind_counts.sum(axis=0).tolist()
        return {kind: int(count) for kind, count in zip(_KINDS_BY_CODE, totals)}

    def channel_utilization(self, total_bus_cycles: float) -> float:
        """Average fraction of data-bus cycles in use over ``total_bus_cycles``."""
        if total_bus_cycles <= 0 or not self._channels:
            return 0.0
        busy_index = _FLOAT_KEYS.index("bus_busy_cycles")
        per_channel = [
            float(self.fcounts[channel, busy_index]) / total_bus_cycles
            for channel in range(self._channels)
        ]
        return sum(per_channel) / len(per_channel)
