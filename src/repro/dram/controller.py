"""Per-channel memory controller.

The controller accepts block-granular DRAM requests tagged with an arrival
time (in memory-bus cycles), queues them in a bounded FR-FCFS transaction
window, serves them against the channel's banks, and records everything the
evaluation needs:

* row-buffer hits / misses / conflicts and the activation count (energy);
* per-request latency, split by request kind, so the timing model can charge
  exposed stall cycles only to demand reads;
* data-bus occupancy, which bounds achievable bandwidth and is what makes the
  indiscriminate Full-region scheme collapse (Section V.D).

The controller supports the two page policies the paper compares: *open-row*
(rows stay open after an access) and *close-row* (rows are precharged right
after an access unless another queued request targets the same row).

Counters are kept as plain attributes (this is the hottest part of the
simulator) and exposed as a :class:`StatGroup` through the ``stats`` property.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.common.params import DDR3Timing, DRAMOrganization
from repro.common.request import DRAMRequest, DRAMRequestKind, KIND_IS_READ
from repro.common.stats import StatGroup
from repro.dram.address_mapping import AddressMapping, DRAMCoordinates
from repro.dram.bank import Bank, RowBufferOutcome
from repro.dram.scheduler import FRFCFSQueue, row_state_key

#: Kinds in ``code`` order, for translating fast-path counters back to names.
_KINDS_BY_CODE = tuple(DRAMRequestKind)
_DEMAND_READ_CODE = DRAMRequestKind.DEMAND_READ.code


class PagePolicy(Enum):
    """Row-buffer management policy of the memory controller."""

    OPEN = "open"
    CLOSE = "close"


class MemoryController:
    """Controller for a single DDR3 channel."""

    def __init__(self, channel_id: int, timing: DDR3Timing, org: DRAMOrganization,
                 mapping: AddressMapping, page_policy: PagePolicy = PagePolicy.OPEN,
                 window: int = 64, scheduler: str = "frfcfs",
                 fast_scheduler: bool = True,
                 record_completed: bool = True) -> None:
        self.channel_id = channel_id
        self.timing = timing
        self.org = org
        self.mapping = mapping
        self.page_policy = page_policy
        if scheduler == "frfcfs":
            self.queue = FRFCFSQueue(window=window)
        else:
            from repro.dram.policies import make_scheduler

            self.queue = make_scheduler(scheduler, window=window)
        self._banks: Dict[Tuple[int, int], Bank] = {
            (rank, bank): Bank(timing)
            for rank in range(org.ranks_per_channel)
            for bank in range(org.banks_per_rank)
        }
        #: The same banks as a flat list indexed by rank * banks_per_rank +
        #: bank, so the serve path needs no key-tuple allocation.
        self._banks_per_rank = org.banks_per_rank
        self._bank_list = [
            self._banks[(rank, bank)]
            for rank in range(org.ranks_per_channel)
            for bank in range(org.banks_per_rank)
        ]
        #: Open-row state as a set of combined (row, rank, bank) keys -- the
        #: form the scheduling window consumes -- plus each bank's current
        #: entry (indexed like ``_bank_list``) for incremental maintenance.
        self._open_keys: set = set()
        self._open_key_of_bank = [None] * len(self._bank_list)
        self._close_policy = page_policy is PagePolicy.CLOSE
        #: With ``fast_scheduler`` FR-FCFS maintains per-row readiness
        #: incrementally (the controller reports every bank state change and
        #: the queue never scans).  Without it the queue runs the legacy
        #: window scan -- selected by the dict cache engine so the benchmark
        #: baseline preserves the pre-overhaul core end to end.  Both paths
        #: make identical scheduling decisions.
        self._queue_tracks_rows = fast_scheduler and isinstance(self.queue, FRFCFSQueue)
        if self._queue_tracks_rows:
            self.queue.track_open_rows(self._open_keys)
        self._drain_threshold = 2 * self.queue.window
        #: Cycle at which the shared data bus becomes free.
        self.bus_free_cycle = 0.0
        #: Cycle of the last completed transfer (elapsed busy span of the channel).
        self.last_completion_cycle = 0.0
        #: With ``record_completed`` every served request is retained so
        #: :meth:`drain` can hand the caller per-request outcomes (unit tests
        #: and trace capture).  The simulator turns it off: all measurements
        #: fold into the scalar counters at serve time, and retaining one
        #: object per transfer would grow memory linearly with trace length
        #: (the streaming paths promise a bounded footprint).
        self._record_completed = record_completed
        self._completed: List[DRAMRequest] = []
        self.reset_counters()

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #
    def reset_counters(self) -> None:
        """Zero every measurement counter (architectural state is preserved)."""
        self._accesses = 0
        self._row_hits = 0
        self._row_misses = 0
        self._row_conflicts = 0
        self._activations = 0
        self._reads = 0
        self._writes = 0
        self._bus_busy_cycles = 0.0
        self._demand_reads = 0
        self._demand_read_latency = 0.0
        self._demand_read_service = 0.0
        self._kind_counts = [0] * len(_KINDS_BY_CODE)

    @property
    def stats(self) -> StatGroup:
        """Measurement counters as a :class:`StatGroup`."""
        group = StatGroup(f"mc{self.channel_id}")
        group.set("accesses", self._accesses)
        group.set("row_hits", self._row_hits)
        group.set("row_misses", self._row_misses)
        group.set("row_conflicts", self._row_conflicts)
        group.set("activations", self._activations)
        group.set("reads", self._reads)
        group.set("writes", self._writes)
        group.set("bus_busy_cycles", self._bus_busy_cycles)
        group.set("demand_reads", self._demand_reads)
        group.set("demand_read_latency_cycles", self._demand_read_latency)
        group.set("demand_read_service_cycles", self._demand_read_service)
        for kind, count in zip(_KINDS_BY_CODE, self._kind_counts):
            group.set(f"kind_{kind.value}", count)
        return group

    # ------------------------------------------------------------------ #
    # Request intake
    # ------------------------------------------------------------------ #
    def enqueue(self, request: DRAMRequest) -> None:
        """Queue one block transfer for this channel.

        ``request.arrival_cycle`` must already be expressed in memory-bus
        cycles.  To bound memory footprint and mimic the finite transaction
        queue, the controller drains eagerly once twice the scheduling window
        is pending.
        """
        coords = self.mapping.map(request.block_address)
        queue = self.queue
        if self._queue_tracks_rows:
            rank = coords[1]
            bank = coords[2]
            row = coords[3]
            # row_state_key inlined (rank/bank always fit the packed form for
            # real organisations; the generic push handles the rest).
            if rank < 64 and bank < 64:
                queue.push_entry(request, coords, (row << 12) | (rank << 6) | bank)
            else:
                queue.push(request, coords)
        else:
            queue.push(request, coords)
        if len(queue) >= self._drain_threshold:
            self._drain(queue.window)

    def drain(self) -> List[DRAMRequest]:
        """Serve every pending request and return all newly completed ones.

        The returned list is empty when the controller was built with
        ``record_completed=False`` (the statistics counters are unaffected).
        """
        self._drain(len(self.queue))
        completed, self._completed = self._completed, []
        return completed

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #
    def _drain(self, count: int) -> None:
        queue = self.queue
        if self._queue_tracks_rows:
            serve = self._serve_core
            for _ in range(count):
                entry = queue.pop_entry()
                if entry is None:
                    return
                serve(entry[1], entry[2], entry[3])
            return
        for _ in range(count):
            entry = queue.pop_next(self._open_keys)
            if entry is None:
                return
            self._serve(*entry)

    def _serve(self, request: DRAMRequest, coords: DRAMCoordinates) -> None:
        self._serve_core(request, coords,
                         row_state_key(coords.rank, coords.bank, coords.row))

    def _serve_core(self, request: DRAMRequest, coords: DRAMCoordinates,
                    key) -> None:
        _channel, rank, bank_index, row, _column = coords
        flat_bank = rank * self._banks_per_rank + bank_index
        bank = self._bank_list[flat_bank]
        close_after = False
        if self._close_policy:
            close_after = not self.queue.any_pending_for_row(coords)

        kind_code = request.kind.code
        is_read = KIND_IS_READ[kind_code]
        outcome, _issue, data_ready = bank.access(
            row,
            start_cycle=request.arrival_cycle,
            is_write=not is_read,
            close_after=close_after,
        )
        open_row = bank.open_row
        old_key = self._open_key_of_bank[flat_bank]
        # After an open-row access the bank holds exactly the served row, so
        # the entry's own key is reused instead of repacking it.
        if open_row is None:
            new_key = None
        elif open_row == row:
            new_key = key
        else:
            new_key = row_state_key(rank, bank_index, open_row)
        if new_key != old_key:
            tracking = self._queue_tracks_rows
            if old_key is not None:
                self._open_keys.discard(old_key)
                if tracking:
                    self.queue.note_row_closed(old_key)
            if new_key is not None:
                self._open_keys.add(new_key)
                if tracking:
                    self.queue.note_row_opened(new_key)
            self._open_key_of_bank[flat_bank] = new_key

        burst = self.timing.burst_cycles
        data_start = data_ready if data_ready > self.bus_free_cycle else self.bus_free_cycle
        completion = data_start + burst
        self.bus_free_cycle = completion
        if completion > self.last_completion_cycle:
            self.last_completion_cycle = completion

        request.row_hit = outcome is RowBufferOutcome.HIT
        request.latency_cycles = completion - request.arrival_cycle

        self._accesses += 1
        self._bus_busy_cycles += burst
        self._kind_counts[kind_code] += 1
        if is_read:
            self._reads += 1
        else:
            self._writes += 1
        if outcome is RowBufferOutcome.HIT:
            self._row_hits += 1
        else:
            self._activations += 1
            if outcome is RowBufferOutcome.CONFLICT:
                self._row_conflicts += 1
            else:
                self._row_misses += 1
        if kind_code == _DEMAND_READ_CODE:
            self._demand_reads += 1
            self._demand_read_latency += request.latency_cycles
            # Unloaded (service) latency by row-buffer outcome; the timing
            # model charges this to the core while bandwidth saturation is
            # captured separately by the channel-elapsed-time bound.
            timing = self.timing
            if outcome is RowBufferOutcome.HIT:
                service = timing.row_hit_latency
            elif outcome is RowBufferOutcome.MISS:
                service = timing.row_miss_latency
            else:
                service = timing.row_conflict_latency
            self._demand_read_service += service
        if self._record_completed:
            self._completed.append(request)

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def row_hit_ratio(self) -> float:
        """Fraction of column accesses served from an open row buffer."""
        if self._accesses == 0:
            return 0.0
        return self._row_hits / self._accesses

    @property
    def average_demand_read_latency(self) -> float:
        """Mean loaded latency (queueing included) of demand reads, in bus cycles."""
        if self._demand_reads == 0:
            return 0.0
        return self._demand_read_latency / self._demand_reads

    @property
    def average_demand_read_service(self) -> float:
        """Mean unloaded service latency of demand reads, in bus cycles."""
        if self._demand_reads == 0:
            return 0.0
        return self._demand_read_service / self._demand_reads

    @property
    def activations(self) -> int:
        """Total row activations issued by this controller."""
        return self._activations

    def bank_states(self) -> Dict[Tuple[int, int], Bank]:
        """Expose per-bank state for tests and detailed analysis."""
        return dict(self._banks)
