"""The complete main-memory system: all channels behind one interface.

The system model pushes block transfers here; the memory system routes each
to the controller of its channel (per the active interleaving scheme), and at
the end of a simulation aggregates row-buffer statistics, per-kind traffic
counts, latency and bus-occupancy figures across channels.  The energy model
(:mod:`repro.energy.dram_energy`) consumes those aggregates.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.addressing import BLOCK_BITS
from repro.common.params import DDR3Timing, DRAMOrganization
from repro.common.request import DRAMRequest, DRAMRequestKind
from repro.common.stats import StatGroup
from repro.dram.address_mapping import AddressMapping
from repro.dram.controller import MemoryController, PagePolicy


class MemorySystem:
    """All DDR3 channels of the simulated server."""

    def __init__(self, timing: DDR3Timing, org: DRAMOrganization,
                 mapping: AddressMapping, page_policy: PagePolicy = PagePolicy.OPEN,
                 window: int = 64, scheduler: str = "frfcfs",
                 fast_scheduler: bool = True,
                 record_completed: bool = True) -> None:
        self.timing = timing
        self.org = org
        self.mapping = mapping
        self.page_policy = page_policy
        self.scheduler = scheduler
        self.controllers = [
            MemoryController(channel, timing, org, mapping, page_policy, window,
                             scheduler=scheduler, fast_scheduler=fast_scheduler,
                             record_completed=record_completed)
            for channel in range(org.channels)
        ]
        # Block -> channel routing reduced to one shift and one mask, so the
        # per-request path never runs the full mapping arithmetic (the
        # controller derives the complete coordinates exactly once).
        self._channel_shift = BLOCK_BITS + mapping.column_low_bits
        self._channel_mask = org.channels - 1

    # ------------------------------------------------------------------ #
    # Request flow
    # ------------------------------------------------------------------ #
    def enqueue(self, request: DRAMRequest) -> None:
        """Route one block transfer to its channel's controller."""
        channel = (request.block_address >> self._channel_shift) & self._channel_mask
        self.controllers[channel].enqueue(request)

    def channel_of(self, block_address: int) -> int:
        """Channel index serving ``block_address`` under the active mapping."""
        return (block_address >> self._channel_shift) & self._channel_mask

    def drain(self) -> List[DRAMRequest]:
        """Complete all outstanding transfers; return them (all channels).

        The returned list holds only the transfers completed since the last
        drain (empty when the controllers do not record completions); the
        aggregate counters are unaffected either way.
        """
        completed: List[DRAMRequest] = []
        for controller in self.controllers:
            completed.extend(controller.drain())
        return completed

    # ------------------------------------------------------------------ #
    # Aggregated metrics
    # ------------------------------------------------------------------ #
    def aggregate_stats(self) -> StatGroup:
        """Merge the per-channel statistics into one group."""
        merged = StatGroup("dram")
        for controller in self.controllers:
            merged.merge(controller.stats)
        return merged

    @property
    def row_hit_ratio(self) -> float:
        """Row-buffer hit ratio across every channel."""
        stats = self.aggregate_stats()
        return stats.ratio("row_hits", "accesses")

    @property
    def activations(self) -> int:
        """Total activations across every channel."""
        return sum(controller.activations for controller in self.controllers)

    @property
    def accesses(self) -> int:
        """Total column accesses (reads + writes) across every channel."""
        return int(self.aggregate_stats()["accesses"])

    @property
    def average_demand_read_latency(self) -> float:
        """Mean loaded demand-read latency in memory-bus cycles, across channels."""
        stats = self.aggregate_stats()
        return stats.ratio("demand_read_latency_cycles", "demand_reads")

    @property
    def average_demand_read_service(self) -> float:
        """Mean unloaded demand-read service latency in bus cycles, across channels."""
        stats = self.aggregate_stats()
        return stats.ratio("demand_read_service_cycles", "demand_reads")

    @property
    def bus_busy_cycles(self) -> float:
        """Total data-bus busy cycles summed across channels."""
        return self.aggregate_stats()["bus_busy_cycles"]

    @property
    def bandwidth_bound_cycles(self) -> float:
        """Bus cycles the busiest channel needs just to move all its data.

        No matter how well computation overlaps with memory, the run cannot
        finish before the busiest channel has streamed every transfer across
        its data bus.  This bound is what makes indiscriminate bulk streaming
        (Full-region) collapse once it oversubscribes the channels.
        """
        if not self.controllers:
            return 0.0
        return max(c.stats["bus_busy_cycles"] for c in self.controllers)

    @property
    def elapsed_cycles(self) -> float:
        """Cycle of the last completed transfer on the busiest channel."""
        if not self.controllers:
            return 0.0
        return max(c.last_completion_cycle for c in self.controllers)

    def traffic_by_kind(self) -> Dict[DRAMRequestKind, int]:
        """Number of transfers of each provenance kind."""
        stats = self.aggregate_stats()
        return {kind: int(stats[f"kind_{kind.value}"]) for kind in DRAMRequestKind}

    def channel_utilization(self, total_bus_cycles: float) -> float:
        """Average fraction of data-bus cycles in use over ``total_bus_cycles``."""
        if total_bus_cycles <= 0 or not self.controllers:
            return 0.0
        per_channel = [
            controller.stats["bus_busy_cycles"] / total_bus_cycles
            for controller in self.controllers
        ]
        return sum(per_channel) / len(per_channel)
