"""Per-bank row-buffer state and timing.

Each DRAM bank holds at most one open row in its row buffer.  An access to
the open row is a *row hit* and only needs a column command (tCAS before the
data burst); back-to-back hits to the open row stream at the column-to-column
cadence (one burst every ``burst_cycles``), which is precisely the behaviour
bulk streaming exploits.  An access to a different row while another is open
is a *row conflict*: the bank must precharge (tRP), activate the new row
(tRCD) and then issue the column command.  An access when no row is open
(*row miss*, e.g. after a close-row policy precharged the bank) skips the
precharge.

The bank tracks the earliest bus cycle at which it can accept the next column
command (``ready_cycle``) plus the cycle of its last activation so precharge
timing respects tRAS and activation spacing respects tRC.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Tuple

from repro.common.params import DDR3Timing


class RowBufferOutcome(Enum):
    """Classification of one column access with respect to the row buffer."""

    HIT = "hit"
    MISS = "miss"
    CONFLICT = "conflict"


class Bank:
    """State of one DRAM bank."""

    __slots__ = ("timing", "open_row", "ready_cycle", "activations", "accesses",
                 "row_hits", "last_activate_cycle")

    def __init__(self, timing: DDR3Timing) -> None:
        self.timing = timing
        self.open_row: Optional[int] = None
        self.ready_cycle: float = 0.0
        self.activations = 0
        self.accesses = 0
        self.row_hits = 0
        self.last_activate_cycle: float = -1.0e18

    def classify(self, row: int) -> RowBufferOutcome:
        """How an access to ``row`` would be served right now."""
        if self.open_row is None:
            return RowBufferOutcome.MISS
        if self.open_row == row:
            return RowBufferOutcome.HIT
        return RowBufferOutcome.CONFLICT

    def access(self, row: int, start_cycle: float, is_write: bool,
               close_after: bool) -> Tuple[RowBufferOutcome, float, float]:
        """Serve one column access to ``row`` starting no earlier than ``start_cycle``.

        Returns ``(outcome, issue_cycle, data_ready_cycle)`` where
        ``issue_cycle`` is when the column command issues (after any
        precharge/activate) and ``data_ready_cycle`` is when the burst can
        begin on the data bus.  The caller arbitrates the shared data bus.
        """
        timing = self.timing
        start = max(start_cycle, self.ready_cycle)
        outcome = self.classify(row)

        if outcome is RowBufferOutcome.HIT:
            issue = start
        elif outcome is RowBufferOutcome.MISS:
            activate = max(start, self.last_activate_cycle + timing.tRRD)
            issue = activate + timing.tRCD
            self.activations += 1
            self.last_activate_cycle = activate
        else:
            # Close the open row first; the precharge may not start before
            # tRAS has elapsed since that row's activation, and the new
            # activation must respect tRC row-cycle spacing.
            precharge_start = max(start, self.last_activate_cycle + timing.tRAS)
            activate = max(precharge_start + timing.tRP,
                           self.last_activate_cycle + timing.tRC)
            issue = activate + timing.tRCD
            self.activations += 1
            self.last_activate_cycle = activate

        data_ready = issue + timing.tCAS

        self.accesses += 1
        if outcome is RowBufferOutcome.HIT:
            self.row_hits += 1

        if close_after:
            # Close-row policy: precharge right after the access completes.
            recovery = timing.tWR if is_write else timing.tRTP
            self.open_row = None
            self.ready_cycle = data_ready + timing.burst_cycles + recovery + timing.tRP
        else:
            # Open-row policy: the next column command to this bank can issue
            # one burst later (column-to-column cadence).
            self.open_row = row
            self.ready_cycle = issue + timing.burst_cycles

        return outcome, issue, data_ready

    @property
    def row_hit_ratio(self) -> float:
        """Fraction of this bank's accesses that hit in its row buffer."""
        if self.accesses == 0:
            return 0.0
        return self.row_hits / self.accesses
