"""Per-bank row-buffer state and timing.

Each DRAM bank holds at most one open row in its row buffer.  An access to
the open row is a *row hit* and only needs a column command (tCAS before the
data burst); back-to-back hits to the open row stream at the column-to-column
cadence (one burst every ``burst_cycles``), which is precisely the behaviour
bulk streaming exploits.  An access to a different row while another is open
is a *row conflict*: the bank must precharge (tRP), activate the new row
(tRCD) and then issue the column command.  An access when no row is open
(*row miss*, e.g. after a close-row policy precharged the bank) skips the
precharge.

The bank tracks the earliest bus cycle at which it can accept the next column
command (``ready_cycle``) plus the cycle of its last activation so precharge
timing respects tRAS and activation spacing respects tRC.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Tuple

from repro.common.params import DDR3Timing


class RowBufferOutcome(Enum):
    """Classification of one column access with respect to the row buffer."""

    HIT = "hit"
    MISS = "miss"
    CONFLICT = "conflict"


class Bank:
    """State of one DRAM bank."""

    __slots__ = ("timing", "open_row", "ready_cycle", "activations", "accesses",
                 "row_hits", "last_activate_cycle",
                 "_tCAS", "_tRCD", "_tRP", "_tRAS", "_tRC", "_tRRD", "_tWR",
                 "_tRTP", "_burst")

    def __init__(self, timing: DDR3Timing) -> None:
        self.timing = timing
        # Timing scalars hoisted out of the dataclass: ``access`` runs once
        # per DRAM transfer and pays for every attribute chain it keeps.
        self._tCAS = timing.tCAS
        self._tRCD = timing.tRCD
        self._tRP = timing.tRP
        self._tRAS = timing.tRAS
        self._tRC = timing.tRC
        self._tRRD = timing.tRRD
        self._tWR = timing.tWR
        self._tRTP = timing.tRTP
        self._burst = timing.burst_cycles
        self.open_row: Optional[int] = None
        self.ready_cycle: float = 0.0
        self.activations = 0
        self.accesses = 0
        self.row_hits = 0
        self.last_activate_cycle: float = -1.0e18

    def classify(self, row: int) -> RowBufferOutcome:
        """How an access to ``row`` would be served right now.

        Side-effect-free probe for callers and tests.  :meth:`access` inlines
        this same classification (it runs once per DRAM transfer); keep the
        two in sync when changing the row-buffer rules.
        """
        if self.open_row is None:
            return RowBufferOutcome.MISS
        if self.open_row == row:
            return RowBufferOutcome.HIT
        return RowBufferOutcome.CONFLICT

    def access(self, row: int, start_cycle: float, is_write: bool,
               close_after: bool) -> Tuple[RowBufferOutcome, float, float]:
        """Serve one column access to ``row`` starting no earlier than ``start_cycle``.

        Returns ``(outcome, issue_cycle, data_ready_cycle)`` where
        ``issue_cycle`` is when the column command issues (after any
        precharge/activate) and ``data_ready_cycle`` is when the burst can
        begin on the data bus.  The caller arbitrates the shared data bus.
        """
        ready = self.ready_cycle
        start = start_cycle if start_cycle > ready else ready
        open_row = self.open_row

        if open_row == row:
            outcome = RowBufferOutcome.HIT
            issue = start
            self.row_hits += 1
        elif open_row is None:
            outcome = RowBufferOutcome.MISS
            activate = max(start, self.last_activate_cycle + self._tRRD)
            issue = activate + self._tRCD
            self.activations += 1
            self.last_activate_cycle = activate
        else:
            # Close the open row first; the precharge may not start before
            # tRAS has elapsed since that row's activation, and the new
            # activation must respect tRC row-cycle spacing.
            outcome = RowBufferOutcome.CONFLICT
            last_activate = self.last_activate_cycle
            precharge_start = max(start, last_activate + self._tRAS)
            activate = max(precharge_start + self._tRP, last_activate + self._tRC)
            issue = activate + self._tRCD
            self.activations += 1
            self.last_activate_cycle = activate

        data_ready = issue + self._tCAS
        self.accesses += 1

        if close_after:
            # Close-row policy: precharge right after the access completes.
            recovery = self._tWR if is_write else self._tRTP
            self.open_row = None
            self.ready_cycle = data_ready + self._burst + recovery + self._tRP
        else:
            # Open-row policy: the next column command to this bank can issue
            # one burst later (column-to-column cadence).
            self.open_row = row
            self.ready_cycle = issue + self._burst

        return outcome, issue, data_ready

    @property
    def row_hit_ratio(self) -> float:
        """Fraction of this bank's accesses that hit in its row buffer."""
        if self.accesses == 0:
            return 0.0
        return self.row_hits / self.accesses
