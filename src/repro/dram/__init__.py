"""DDR3 main-memory substrate.

The paper evaluates BuMP on a two-channel DDR3-1600 memory system modelled
with DRAMSim2.  This package provides the equivalent trace-driven model:

* :mod:`repro.dram.address_mapping` -- the two physical address interleaving
  schemes the paper compares: block-level interleaving (used by the
  close-row baseline to maximise bank/channel parallelism) and region-level
  interleaving (used by the open-row baseline, SMS, VWQ and BuMP so that an
  entire 1KB region maps to a single DRAM row).
* :mod:`repro.dram.bank` -- per-bank row-buffer state and timing.
* :mod:`repro.dram.scheduler` -- FR-FCFS scheduling with open-row or
  close-row page policies over a bounded transaction window.
* :mod:`repro.dram.controller` -- one memory controller per channel: accepts
  block-granular :class:`repro.common.request.DRAMRequest` transfers, applies
  the scheduler, and records row-buffer hits, per-request latency, bus
  occupancy and the command counts the energy model consumes.
* :mod:`repro.dram.system` -- the full memory system (all channels) behind a
  single ``enqueue``/``drain`` interface.
* :mod:`repro.dram.flat` -- the batch-vectorized flat-array engine: the same
  timing and scheduling semantics as controller + system, bit-identical
  results, NumPy state arrays and a batched ``enqueue_block_batch`` intake.
* :mod:`repro.dram.engine` -- engine selection (``REPRO_DRAM_ENGINE=flat``,
  the default, or ``object``; the object engine is the reference baseline).
"""

from repro.dram.address_mapping import (
    AddressMapping,
    DRAMCoordinates,
    make_block_interleaving,
    make_region_interleaving,
)
from repro.dram.bank import Bank
from repro.dram.controller import MemoryController, PagePolicy
from repro.dram.engine import dram_engine_name, resolve_dram_engine
from repro.dram.flat import FlatMemorySystem
from repro.dram.system import MemorySystem

__all__ = [
    "AddressMapping",
    "DRAMCoordinates",
    "make_block_interleaving",
    "make_region_interleaving",
    "Bank",
    "MemoryController",
    "PagePolicy",
    "MemorySystem",
    "FlatMemorySystem",
    "dram_engine_name",
    "resolve_dram_engine",
]
