"""Command-level DRAM modelling.

The block-granular controller (:mod:`repro.dram.controller`) accounts for
row-buffer outcomes and bank timing analytically.  This module provides the
command-level view underneath it: the DDR3 command set (ACTIVATE, READ,
WRITE, PRECHARGE, REFRESH), a per-bank/per-rank timing checker that validates
command sequences against the JEDEC-style constraints of Table II (tRCD, tRP,
tRAS, tRC, tCCD, tWTR, tWR, tRTP, tRRD, tFAW, tRFC), and a command trace
recorder that experiments and tests use to verify that a scheduling decision
sequence is legal and to count per-command energy events.

Two users exist inside the repository:

* property-based tests assert that the analytic bank model of
  :mod:`repro.dram.bank` never produces an issue schedule the command-level
  checker would reject;
* the IDD-based power model (:mod:`repro.dram.power`) consumes command counts
  and per-bank activation intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.common.params import DDR3Timing


class CommandKind(Enum):
    """DDR3 commands the controller can issue to a bank."""

    ACTIVATE = "activate"
    READ = "read"
    WRITE = "write"
    PRECHARGE = "precharge"
    REFRESH = "refresh"


@dataclass(frozen=True)
class DRAMCommand:
    """One command issued on the command bus.

    ``cycle`` is the issue cycle in memory-bus clocks; ``rank``/``bank``
    identify the target bank; ``row`` is meaningful for ACTIVATE only.
    """

    kind: CommandKind
    cycle: float
    rank: int = 0
    bank: int = 0
    row: int = 0

    @property
    def bank_key(self) -> Tuple[int, int]:
        """The (rank, bank) pair the command addresses."""
        return (self.rank, self.bank)


class TimingViolation(Exception):
    """Raised by the checker when a command breaks a timing constraint."""

    def __init__(self, command: DRAMCommand, constraint: str, earliest: float) -> None:
        super().__init__(
            f"{command.kind.value} @ {command.cycle:.1f} to rank {command.rank} "
            f"bank {command.bank} violates {constraint}: earliest legal cycle "
            f"is {earliest:.1f}"
        )
        self.command = command
        self.constraint = constraint
        self.earliest = earliest


@dataclass
class _BankState:
    """Timing-relevant state of one bank inside the checker."""

    open_row: Optional[int] = None
    last_activate: float = float("-inf")
    last_precharge: float = float("-inf")
    last_read: float = float("-inf")
    last_write: float = float("-inf")
    #: Earliest cycle a PRECHARGE may issue (read-to-precharge / write recovery).
    precharge_allowed: float = float("-inf")


class CommandTimingChecker:
    """Validates a stream of DRAM commands against DDR3 timing constraints.

    The checker is deliberately strict: it raises :class:`TimingViolation`
    on the first illegal command rather than silently adjusting it, because
    its role is to certify schedules produced elsewhere, not to repair them.
    Checked constraints:

    ======== =========================================================
    tRCD     ACTIVATE -> READ/WRITE to the same bank
    tRAS     ACTIVATE -> PRECHARGE to the same bank
    tRP      PRECHARGE -> ACTIVATE to the same bank
    tRC      ACTIVATE -> ACTIVATE to the same bank
    tRRD     ACTIVATE -> ACTIVATE to different banks of the same rank
    tFAW     at most four ACTIVATEs per rank in any tFAW window
    tCCD     column command -> column command (same rank), = burst length
    tRTP     READ -> PRECHARGE to the same bank
    tWR      end of WRITE burst -> PRECHARGE to the same bank
    tWTR     end of WRITE burst -> READ to the same rank
    tRFC     REFRESH -> any command to the same rank
    ======== =========================================================
    """

    def __init__(self, timing: Optional[DDR3Timing] = None, tRFC: int = 88) -> None:
        self.timing = timing if timing is not None else DDR3Timing()
        self.tRFC = tRFC
        self._banks: Dict[Tuple[int, int], _BankState] = {}
        #: Per-rank sliding window of recent ACTIVATE issue cycles (tFAW).
        self._recent_activates: Dict[int, List[float]] = {}
        #: Per-rank earliest cycle a column command may issue (tCCD / tWTR).
        self._column_allowed: Dict[int, float] = {}
        #: Per-rank cycle until which the rank is busy refreshing.
        self._refresh_busy_until: Dict[int, float] = {}
        self.history: List[DRAMCommand] = []

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _bank(self, command: DRAMCommand) -> _BankState:
        return self._banks.setdefault(command.bank_key, _BankState())

    def _require(self, command: DRAMCommand, earliest: float, constraint: str) -> None:
        if command.cycle + 1e-9 < earliest:
            raise TimingViolation(command, constraint, earliest)

    def _check_refresh_window(self, command: DRAMCommand) -> None:
        busy_until = self._refresh_busy_until.get(command.rank, float("-inf"))
        self._require(command, busy_until, "tRFC")

    # ------------------------------------------------------------------ #
    # Command admission
    # ------------------------------------------------------------------ #
    def issue(self, command: DRAMCommand) -> None:
        """Admit one command, raising :class:`TimingViolation` when illegal."""
        handler = {
            CommandKind.ACTIVATE: self._issue_activate,
            CommandKind.READ: self._issue_read,
            CommandKind.WRITE: self._issue_write,
            CommandKind.PRECHARGE: self._issue_precharge,
            CommandKind.REFRESH: self._issue_refresh,
        }[command.kind]
        handler(command)
        self.history.append(command)

    def issue_all(self, commands: List[DRAMCommand]) -> None:
        """Admit a whole schedule (commands must already be in issue order)."""
        for command in commands:
            self.issue(command)

    def _issue_activate(self, command: DRAMCommand) -> None:
        timing = self.timing
        bank = self._bank(command)
        self._check_refresh_window(command)
        if bank.open_row is not None:
            raise TimingViolation(command, "activate-to-open-bank", float("inf"))
        self._require(command, bank.last_precharge + timing.tRP, "tRP")
        self._require(command, bank.last_activate + timing.tRC, "tRC")

        same_rank = [
            cycle for (rank, _), state in self._banks.items()
            if rank == command.rank
            for cycle in [state.last_activate]
            if cycle > float("-inf")
        ]
        if same_rank:
            self._require(command, max(same_rank) + timing.tRRD, "tRRD")

        window = self._recent_activates.setdefault(command.rank, [])
        window[:] = [cycle for cycle in window if command.cycle - cycle < timing.tFAW]
        if len(window) >= 4:
            self._require(command, min(window) + timing.tFAW, "tFAW")
        window.append(command.cycle)

        bank.open_row = command.row
        bank.last_activate = command.cycle
        bank.precharge_allowed = command.cycle + timing.tRAS

    def _issue_read(self, command: DRAMCommand) -> None:
        timing = self.timing
        bank = self._bank(command)
        self._check_refresh_window(command)
        if bank.open_row is None:
            raise TimingViolation(command, "read-to-closed-bank", float("inf"))
        self._require(command, bank.last_activate + timing.tRCD, "tRCD")
        self._require(command,
                      self._column_allowed.get(command.rank, float("-inf")), "tCCD/tWTR")

        bank.last_read = command.cycle
        bank.precharge_allowed = max(bank.precharge_allowed, command.cycle + timing.tRTP)
        self._column_allowed[command.rank] = command.cycle + timing.burst_cycles

    def _issue_write(self, command: DRAMCommand) -> None:
        timing = self.timing
        bank = self._bank(command)
        self._check_refresh_window(command)
        if bank.open_row is None:
            raise TimingViolation(command, "write-to-closed-bank", float("inf"))
        self._require(command, bank.last_activate + timing.tRCD, "tRCD")
        self._require(command,
                      self._column_allowed.get(command.rank, float("-inf")), "tCCD/tWTR")

        bank.last_write = command.cycle
        write_end = command.cycle + timing.tCAS + timing.burst_cycles
        bank.precharge_allowed = max(bank.precharge_allowed, write_end + timing.tWR)
        # A read following a write on the same rank must wait out tWTR after
        # the write burst completes; model it through the column gate.
        self._column_allowed[command.rank] = max(
            command.cycle + timing.burst_cycles, write_end + timing.tWTR
        )

    def _issue_precharge(self, command: DRAMCommand) -> None:
        bank = self._bank(command)
        self._check_refresh_window(command)
        if bank.open_row is None:
            # Precharging an idle bank is legal (a NOP in effect).
            bank.last_precharge = max(bank.last_precharge, command.cycle)
            return
        self._require(command, bank.precharge_allowed, "tRAS/tRTP/tWR")
        bank.open_row = None
        bank.last_precharge = command.cycle

    def _issue_refresh(self, command: DRAMCommand) -> None:
        # All banks of the rank must be precharged before REFRESH.
        for (rank, _), state in self._banks.items():
            if rank == command.rank and state.open_row is not None:
                raise TimingViolation(command, "refresh-with-open-row", float("inf"))
        self._check_refresh_window(command)
        self._refresh_busy_until[command.rank] = command.cycle + self.tRFC

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def open_row(self, rank: int, bank: int) -> Optional[int]:
        """Row currently open in (rank, bank), or ``None``."""
        state = self._banks.get((rank, bank))
        return state.open_row if state is not None else None

    def command_counts(self) -> Dict[CommandKind, int]:
        """Number of admitted commands of each kind."""
        counts = {kind: 0 for kind in CommandKind}
        for command in self.history:
            counts[command.kind] += 1
        return counts


@dataclass
class CommandTrace:
    """An ordered record of DRAM commands plus summary statistics.

    The controller-level model does not emit commands directly; tests and the
    power model build command traces from higher-level access outcomes with
    :meth:`from_access_sequence` and then validate/aggregate them.
    """

    commands: List[DRAMCommand] = field(default_factory=list)

    def append(self, command: DRAMCommand) -> None:
        """Add one command to the trace."""
        self.commands.append(command)

    def extend(self, commands: List[DRAMCommand]) -> None:
        """Add several commands to the trace."""
        self.commands.extend(commands)

    def __len__(self) -> int:
        return len(self.commands)

    def counts(self) -> Dict[CommandKind, int]:
        """Number of commands of each kind in the trace."""
        counts = {kind: 0 for kind in CommandKind}
        for command in self.commands:
            counts[command.kind] += 1
        return counts

    def activations(self) -> int:
        """Number of ACTIVATE commands."""
        return self.counts()[CommandKind.ACTIVATE]

    def column_accesses(self) -> int:
        """Number of READ plus WRITE commands."""
        counts = self.counts()
        return counts[CommandKind.READ] + counts[CommandKind.WRITE]

    def mean_activate_interval(self) -> float:
        """Mean cycles between consecutive ACTIVATEs to the same bank.

        The Micron power model derives activation power from this interval
        (a busier bank re-activates more often and burns more ACT power).
        Returns 0.0 when fewer than two activations exist for every bank.
        """
        per_bank: Dict[Tuple[int, int], List[float]] = {}
        for command in self.commands:
            if command.kind is CommandKind.ACTIVATE:
                per_bank.setdefault(command.bank_key, []).append(command.cycle)
        intervals: List[float] = []
        for cycles in per_bank.values():
            cycles.sort()
            intervals.extend(b - a for a, b in zip(cycles, cycles[1:]))
        if not intervals:
            return 0.0
        return sum(intervals) / len(intervals)

    def validate(self, timing: Optional[DDR3Timing] = None) -> None:
        """Run the whole trace through a fresh :class:`CommandTimingChecker`."""
        checker = CommandTimingChecker(timing)
        checker.issue_all(sorted(self.commands, key=lambda c: c.cycle))


def expand_access(row: int, rank: int, bank: int, start_cycle: float,
                  is_write: bool, open_row: Optional[int],
                  timing: Optional[DDR3Timing] = None) -> List[DRAMCommand]:
    """Expand one block access into its legal command sequence.

    Mirrors the analytic path of :class:`repro.dram.bank.Bank`: a row hit is a
    single column command, a row miss is ACTIVATE + column, and a row conflict
    is PRECHARGE + ACTIVATE + column.  The returned commands are spaced by the
    minimum legal distances so they can be fed to the checker directly.
    """
    timing = timing if timing is not None else DDR3Timing()
    commands: List[DRAMCommand] = []
    column = CommandKind.WRITE if is_write else CommandKind.READ

    if open_row == row:
        commands.append(DRAMCommand(column, start_cycle, rank, bank, row))
        return commands

    cycle = start_cycle
    if open_row is not None:
        commands.append(DRAMCommand(CommandKind.PRECHARGE, cycle, rank, bank, open_row))
        cycle += timing.tRP
    commands.append(DRAMCommand(CommandKind.ACTIVATE, cycle, rank, bank, row))
    cycle += timing.tRCD
    commands.append(DRAMCommand(column, cycle, rank, bank, row))
    return commands
