"""Aggregation of component energies into the paper's reported metrics.

Three figures of the paper consume the energy model:

* **Figure 1** needs the *whole-server* energy split across cores, LLC, NOC,
  memory controllers and memory, with memory further split into activation,
  burst & I/O, and background.
* **Figures 9 and 13** need the *dynamic memory energy per access* split into
  activation vs. burst/IO, normalised between systems.
* The text of Section V reports energy per instruction improvements.

:class:`ServerEnergyModel` assembles those views from the DRAM and chip
energy models given the activity counts a simulation produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import DRAMOrganization, SystemParams
from repro.energy.chip_energy import ChipEnergyBreakdown, ChipEnergyModel
from repro.energy.dram_energy import DRAMEnergyBreakdown, DRAMEnergyModel, MemoryEnergyPerAccessParts
from repro.energy.params import ChipEnergyParams, DRAMEnergyParams


@dataclass
class MemoryEnergyPerAccess(MemoryEnergyPerAccessParts):
    """Alias kept for the public API: per-access activation and burst/IO energy."""


@dataclass
class EnergyBreakdown:
    """Complete server energy picture for one simulated run."""

    chip: ChipEnergyBreakdown
    dram: DRAMEnergyBreakdown
    instructions: float
    useful_accesses: float

    @property
    def total_nj(self) -> float:
        """Total server energy (on-chip + memory) in nanojoules."""
        return self.chip.total_nj + self.dram.total_nj

    @property
    def energy_per_instruction_nj(self) -> float:
        """Server energy divided by committed application instructions."""
        if self.instructions <= 0:
            return 0.0
        return self.total_nj / self.instructions

    def component_shares(self) -> dict:
        """Fractional energy share of each Figure-1 component."""
        total = self.total_nj
        if total <= 0:
            return {}
        return {
            "cores": self.chip.cores_nj / total,
            "llc": self.chip.llc_nj / total,
            "noc": self.chip.noc_nj / total,
            "memory_controller": self.chip.memory_controller_nj / total,
            "memory_activation": self.dram.activation_nj / total,
            "memory_burst_io": self.dram.burst_io_nj / total,
            "memory_background": self.dram.background_nj / total,
        }

    @property
    def memory_share(self) -> float:
        """Fraction of server energy consumed by main memory."""
        total = self.total_nj
        if total <= 0:
            return 0.0
        return self.dram.total_nj / total


class ServerEnergyModel:
    """Combines the chip and DRAM energy models for one system configuration."""

    def __init__(self, system: SystemParams = None,
                 dram_params: DRAMEnergyParams = None,
                 chip_params: ChipEnergyParams = None) -> None:
        self.system = system if system is not None else SystemParams()
        self.dram_model = DRAMEnergyModel(dram_params, self.system.dram_org)
        self.chip_model = ChipEnergyModel(chip_params, self.system.num_cores)

    def breakdown(self, *, instructions: float, elapsed_seconds: float,
                  aggregate_ipc: float, activations: float, dram_reads: float,
                  dram_writes: float, llc_reads: float, llc_writes: float,
                  noc_utilization: float, channel_utilization: float,
                  useful_accesses: float) -> EnergyBreakdown:
        """Produce the full server energy breakdown for one run."""
        delivered_gbps = self._delivered_bandwidth_gbps(
            dram_reads + dram_writes, elapsed_seconds
        )
        chip = self.chip_model.compute(
            aggregate_ipc=aggregate_ipc,
            llc_reads=llc_reads,
            llc_writes=llc_writes,
            noc_utilization=noc_utilization,
            delivered_bandwidth_gbps=delivered_gbps,
            elapsed_seconds=elapsed_seconds,
        )
        dram = self.dram_model.compute(
            activations=activations,
            reads=dram_reads,
            writes=dram_writes,
            elapsed_seconds=elapsed_seconds,
            utilization=channel_utilization,
        )
        return EnergyBreakdown(
            chip=chip,
            dram=dram,
            instructions=instructions,
            useful_accesses=useful_accesses,
        )

    def memory_energy_per_access(self, activations: float, dram_reads: float,
                                 dram_writes: float,
                                 useful_accesses: float) -> MemoryEnergyPerAccess:
        """Dynamic memory energy per useful access, as plotted in Figure 9."""
        parts = self.dram_model.energy_per_access_nj(
            activations, dram_reads, dram_writes, useful_accesses
        )
        return MemoryEnergyPerAccess(
            activation_nj=parts.activation_nj, burst_io_nj=parts.burst_io_nj
        )

    @staticmethod
    def _delivered_bandwidth_gbps(transfers: float, elapsed_seconds: float) -> float:
        if elapsed_seconds <= 0:
            return 0.0
        return transfers * 64.0 / elapsed_seconds / 1e9
