"""Energy model of the simulated server.

The paper's custom energy-modelling framework (Section V.A, Table III)
combines per-component constants from McPAT, CACTI and the Micron DDR3 power
model.  This package reproduces that framework:

* :mod:`repro.energy.params` -- the constants of Table III;
* :mod:`repro.energy.dram_energy` -- Micron-style DRAM energy: activation,
  read/write burst, I/O termination and background power;
* :mod:`repro.energy.chip_energy` -- cores, LLC, NOC and memory-controller
  energy;
* :mod:`repro.energy.structures` -- storage and access energy of BuMP's own
  tables (Sections IV.D and V.F);
* :mod:`repro.energy.accounting` -- the aggregation used by Figures 1, 9 and
  13: total server energy by component, memory energy per access split into
  activation vs. burst/IO, and energy per instruction.
"""

from repro.energy.accounting import EnergyBreakdown, MemoryEnergyPerAccess, ServerEnergyModel
from repro.energy.dram_energy import DRAMEnergyModel
from repro.energy.chip_energy import ChipEnergyModel
from repro.energy.params import ChipEnergyParams, DRAMEnergyParams
from repro.energy.structures import BuMPStructureEnergy, SRAMStructureModel

__all__ = [
    "EnergyBreakdown",
    "MemoryEnergyPerAccess",
    "ServerEnergyModel",
    "DRAMEnergyModel",
    "ChipEnergyModel",
    "ChipEnergyParams",
    "DRAMEnergyParams",
    "BuMPStructureEnergy",
    "SRAMStructureModel",
]
