"""Storage and energy cost of BuMP's own hardware structures.

Section IV.D of the paper itemises BuMP's storage: a 256-entry trigger table
(2.5KB), a 256-entry density table (3KB), a 1024-entry dirty region table
(4.25KB) and a 1024-entry bulk history table (4.5KB), for roughly 14KB total,
all 16-way set-associative.  Section V.F reports CACTI-derived access
energies of ~2 pJ for the region-density tracking tables and ~4 pJ for the
BHT/DRT, with total on-chip power overhead below 50 mW.

The :class:`SRAMStructureModel` provides a small analytic SRAM model so the
storage numbers above fall out of the entry counts and field widths rather
than being hard-coded, and :class:`BuMPStructureEnergy` turns access counts
into energy/power figures for the overhead analysis of Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.params import ChipEnergyParams


@dataclass
class SRAMStructureModel:
    """A set-associative SRAM table described by entry count and payload width."""

    name: str
    entries: int
    tag_bits: int
    payload_bits: int
    valid_bits: int = 1

    @property
    def bits_per_entry(self) -> int:
        """Storage of one entry including tag and valid bit."""
        return self.tag_bits + self.payload_bits + self.valid_bits

    @property
    def total_bits(self) -> int:
        """Total storage of the structure in bits."""
        return self.entries * self.bits_per_entry

    @property
    def total_kib(self) -> float:
        """Total storage in kibibytes."""
        return self.total_bits / 8.0 / 1024.0


@dataclass
class BuMPStructureEnergy:
    """Access energy and power of BuMP's tables."""

    params: ChipEnergyParams

    def rdtt_energy_nj(self, accesses: float) -> float:
        """Energy of the trigger + density table lookups/updates."""
        return accesses * self.params.bump_rdtt_access_energy_nj

    def bht_drt_energy_nj(self, accesses: float) -> float:
        """Energy of bulk-history and dirty-region table lookups/updates."""
        return accesses * self.params.bump_bht_drt_access_energy_nj

    def total_energy_nj(self, rdtt_accesses: float, bht_drt_accesses: float) -> float:
        """Total access energy of all BuMP structures."""
        return self.rdtt_energy_nj(rdtt_accesses) + self.bht_drt_energy_nj(bht_drt_accesses)

    def average_power_w(self, rdtt_accesses: float, bht_drt_accesses: float,
                        elapsed_seconds: float) -> float:
        """Average power drawn by BuMP's structures over an interval."""
        if elapsed_seconds <= 0:
            return 0.0
        total_nj = self.total_energy_nj(rdtt_accesses, bht_drt_accesses)
        return total_nj * 1e-9 / elapsed_seconds
