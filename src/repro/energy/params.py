"""Energy and power constants of Table III of the paper.

All energies are in nanojoules, all powers in watts, matching the table:

======================  ==========================================
Component               Value
======================  ==========================================
Core                    peak dynamic 700 mW, leakage 70 mW
LLC                     read 0.63 nJ, write 0.70 nJ, leakage 750 mW
NOC                     peak dynamic 55 mW, leakage 30 mW
Memory controller       250 mW dynamic at 12.8 GB/s
DRAM (per 2GB rank,     background 540-770 mW, activation 29.7 nJ,
64-byte transfer)       read 8.1 nJ / write 8.4 nJ,
                        I/O termination read 1.5 nJ / RRead 3.8 nJ,
                        write 4.6 nJ / RWrite 4.6 nJ
======================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class DRAMEnergyParams:
    """Per-rank DRAM power and per-transfer energies (Table III, last row)."""

    #: Idle (powered, no traffic) background power per rank, watts.
    background_power_idle_w: float = 0.540
    #: Background power per rank at full activity, watts.
    background_power_active_w: float = 0.770
    #: Energy of one row activation (an 8KB page open + implicit precharge), nJ.
    activation_energy_nj: float = 29.7
    #: Burst (array read/write) energy per 64-byte transfer, nJ.
    read_energy_nj: float = 8.1
    write_energy_nj: float = 8.4
    #: I/O and termination energy per 64-byte transfer, nJ.  The "R" variants
    #: are termination dissipated in the *other* ranks on the shared channel;
    #: with four ranks per channel essentially every transfer pays them.
    io_read_nj: float = 1.5
    io_rread_nj: float = 3.8
    io_write_nj: float = 4.6
    io_rwrite_nj: float = 4.6

    @property
    def read_transfer_energy_nj(self) -> float:
        """Total burst + termination energy of one 64-byte read."""
        return self.read_energy_nj + self.io_read_nj + self.io_rread_nj

    @property
    def write_transfer_energy_nj(self) -> float:
        """Total burst + termination energy of one 64-byte write."""
        return self.write_energy_nj + self.io_write_nj + self.io_rwrite_nj


@dataclass
class ChipEnergyParams:
    """Per-component on-chip power/energy constants (Table III)."""

    core_peak_dynamic_w: float = 0.700
    core_leakage_w: float = 0.070
    #: IPC at which a core dissipates its peak dynamic power; actual dynamic
    #: power is scaled by achieved-IPC / reference-IPC as in the paper.
    core_reference_ipc: float = 2.0

    llc_read_energy_nj: float = 0.63
    llc_write_energy_nj: float = 0.70
    llc_leakage_w: float = 0.750

    noc_peak_dynamic_w: float = 0.055
    noc_leakage_w: float = 0.030

    #: Memory-controller dynamic power at the reference bandwidth.
    mc_dynamic_w_at_ref: float = 0.250
    mc_reference_bandwidth_gbps: float = 12.8
    #: Number of memory controllers (one per channel).
    mc_count: int = 2

    #: Energy per access of BuMP's region-density tracking tables and of the
    #: bulk history / dirty region tables (Section V.F: ~2 pJ and ~4 pJ).
    bump_rdtt_access_energy_nj: float = 0.002
    bump_bht_drt_access_energy_nj: float = 0.004
