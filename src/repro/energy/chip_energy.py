"""On-chip energy: cores, LLC, NOC and memory controllers.

The paper estimates core dynamic power by scaling a published measurement by
the ratio of achieved IPC to a reference IPC, measures leakage with McPAT,
uses CACTI per-access energies for the LLC, treats NOC power as a small
constant plus traffic-proportional dynamic energy, and charges the memory
controllers dynamic power proportional to delivered bandwidth.  All of those
reductions are reproduced here from the Table III constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.params import ChipEnergyParams


@dataclass
class ChipEnergyBreakdown:
    """Energy consumed on chip over a simulated interval (nanojoules)."""

    cores_nj: float
    llc_nj: float
    noc_nj: float
    memory_controller_nj: float

    @property
    def total_nj(self) -> float:
        """Total on-chip energy."""
        return self.cores_nj + self.llc_nj + self.noc_nj + self.memory_controller_nj


class ChipEnergyModel:
    """Computes on-chip component energy from activity counts."""

    def __init__(self, params: ChipEnergyParams = None, num_cores: int = 16) -> None:
        self.params = params if params is not None else ChipEnergyParams()
        self.num_cores = num_cores

    # ------------------------------------------------------------------ #
    # Per-component models
    # ------------------------------------------------------------------ #
    def core_energy_nj(self, aggregate_ipc: float, elapsed_seconds: float) -> float:
        """Dynamic + leakage energy of all cores.

        ``aggregate_ipc`` is the total committed IPC across the chip; per-core
        dynamic power scales with per-core IPC relative to the reference IPC.
        """
        params = self.params
        per_core_ipc = aggregate_ipc / self.num_cores if self.num_cores else 0.0
        scale = min(per_core_ipc / params.core_reference_ipc, 1.5)
        dynamic_w = params.core_peak_dynamic_w * scale * self.num_cores
        leakage_w = params.core_leakage_w * self.num_cores
        return (dynamic_w + leakage_w) * elapsed_seconds * 1e9

    def llc_energy_nj(self, reads: float, writes: float, elapsed_seconds: float) -> float:
        """CACTI-style LLC energy: per-access read/write energy plus leakage."""
        params = self.params
        dynamic = reads * params.llc_read_energy_nj + writes * params.llc_write_energy_nj
        leakage = params.llc_leakage_w * elapsed_seconds * 1e9
        return dynamic + leakage

    def noc_energy_nj(self, utilization: float, elapsed_seconds: float) -> float:
        """NOC energy: dynamic power scaled by link utilisation plus leakage."""
        params = self.params
        utilization = min(max(utilization, 0.0), 1.0)
        power_w = params.noc_peak_dynamic_w * utilization + params.noc_leakage_w
        return power_w * elapsed_seconds * 1e9

    def memory_controller_energy_nj(self, delivered_bandwidth_gbps: float,
                                    elapsed_seconds: float) -> float:
        """Memory-controller energy: dynamic power proportional to bandwidth."""
        params = self.params
        scale = delivered_bandwidth_gbps / params.mc_reference_bandwidth_gbps
        scale = min(max(scale, 0.0), 1.5)
        power_w = params.mc_dynamic_w_at_ref * scale * params.mc_count
        return power_w * elapsed_seconds * 1e9

    # ------------------------------------------------------------------ #
    # Aggregate
    # ------------------------------------------------------------------ #
    def compute(self, aggregate_ipc: float, llc_reads: float, llc_writes: float,
                noc_utilization: float, delivered_bandwidth_gbps: float,
                elapsed_seconds: float) -> ChipEnergyBreakdown:
        """Energy of every on-chip component over a simulated interval."""
        return ChipEnergyBreakdown(
            cores_nj=self.core_energy_nj(aggregate_ipc, elapsed_seconds),
            llc_nj=self.llc_energy_nj(llc_reads, llc_writes, elapsed_seconds),
            noc_nj=self.noc_energy_nj(noc_utilization, elapsed_seconds),
            memory_controller_nj=self.memory_controller_energy_nj(
                delivered_bandwidth_gbps, elapsed_seconds
            ),
        )
