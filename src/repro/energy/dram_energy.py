"""Micron-style DRAM energy model.

Dynamic DRAM energy has two parts the paper's figures separate:

* **Activation energy** -- one fixed cost per row activation (page open plus
  the implied precharge).  This is the component bulk streaming amortises:
  serving sixteen blocks of a region from one activation pays the 29.7 nJ
  once instead of up to sixteen times.
* **Burst & I/O energy** -- per 64-byte transfer: the array burst plus the
  I/O and on-die-termination energy on the channel.

Background (static) power is charged per rank for the duration of the run,
scaled between the idle and active values by channel utilisation, mirroring
how the Micron power calculator interpolates between IDD3N-style idle and
active-standby currents.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import DRAMOrganization
from repro.energy.params import DRAMEnergyParams


@dataclass
class DRAMEnergyBreakdown:
    """Energy consumed by main memory over a simulated interval (nanojoules)."""

    activation_nj: float
    read_burst_io_nj: float
    write_burst_io_nj: float
    background_nj: float

    @property
    def burst_io_nj(self) -> float:
        """Total burst + I/O energy (reads and writes)."""
        return self.read_burst_io_nj + self.write_burst_io_nj

    @property
    def dynamic_nj(self) -> float:
        """Activation plus burst/IO energy."""
        return self.activation_nj + self.burst_io_nj

    @property
    def total_nj(self) -> float:
        """Dynamic plus background energy."""
        return self.dynamic_nj + self.background_nj


class DRAMEnergyModel:
    """Computes DRAM energy from memory-controller event counts."""

    def __init__(self, params: DRAMEnergyParams = None,
                 org: DRAMOrganization = None) -> None:
        self.params = params if params is not None else DRAMEnergyParams()
        self.org = org if org is not None else DRAMOrganization()

    @property
    def total_ranks(self) -> int:
        """Number of 2GB ranks in the memory system."""
        return self.org.channels * self.org.ranks_per_channel

    def background_power_w(self, utilization: float) -> float:
        """Background power of the whole memory system at a given utilisation."""
        utilization = min(max(utilization, 0.0), 1.0)
        per_rank = (
            self.params.background_power_idle_w
            + utilization
            * (self.params.background_power_active_w - self.params.background_power_idle_w)
        )
        return per_rank * self.total_ranks

    def compute(self, activations: float, reads: float, writes: float,
                elapsed_seconds: float, utilization: float = 0.0) -> DRAMEnergyBreakdown:
        """Energy for a run with the given command counts and duration."""
        params = self.params
        activation_nj = activations * params.activation_energy_nj
        read_nj = reads * params.read_transfer_energy_nj
        write_nj = writes * params.write_transfer_energy_nj
        background_nj = self.background_power_w(utilization) * elapsed_seconds * 1e9
        return DRAMEnergyBreakdown(
            activation_nj=activation_nj,
            read_burst_io_nj=read_nj,
            write_burst_io_nj=write_nj,
            background_nj=background_nj,
        )

    def energy_per_access_nj(self, activations: float, reads: float, writes: float,
                             useful_accesses: float) -> "MemoryEnergyPerAccessParts":
        """Dynamic memory energy per *useful* access, split as in Figure 9.

        ``useful_accesses`` is the number of demand transfers the program
        actually required (demand reads plus demand writebacks of the
        baseline traffic).  Overfetched blocks and premature writebacks
        inflate the numerator but not the denominator, which is what makes
        the indiscriminate Full-region scheme look (correctly) bad.
        """
        if useful_accesses <= 0:
            return MemoryEnergyPerAccessParts(0.0, 0.0)
        breakdown = self.compute(activations, reads, writes, elapsed_seconds=0.0)
        return MemoryEnergyPerAccessParts(
            activation_nj=breakdown.activation_nj / useful_accesses,
            burst_io_nj=breakdown.burst_io_nj / useful_accesses,
        )


@dataclass
class MemoryEnergyPerAccessParts:
    """Per-access dynamic memory energy, split into the Figure 9 components."""

    activation_nj: float
    burst_io_nj: float

    @property
    def total_nj(self) -> float:
        """Activation plus burst/IO energy per access."""
        return self.activation_nj + self.burst_io_nj
