"""Convenience entry points for running experiments.

The runner hides the boilerplate every experiment shares: build the workload
trace (once per workload, reused across system configurations so every system
sees the identical reference stream), instantiate the configured system, run
the trace and hand back the :class:`SimulationResult`.

Traces are columnar :class:`repro.trace.buffer.TraceBuffer` bundles end to
end: :func:`build_trace` returns a buffer (it still iterates as boxed
``Access`` records for legacy callers), :func:`run_trace` feeds buffers --
or streaming chunk iterators -- straight into the simulator's row loop, and
:func:`run_workload_streaming` runs arbitrarily long traces at bounded
memory without ever materializing per-access Python objects.

A small in-process trace cache keeps the benchmark harness fast: Figures 2, 9,
10 and 13 each run the same six traces through several configurations, and
regenerating a trace costs more than simulating it.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.common.fingerprint import workload_fingerprint
from repro.common.request import Access
from repro.sim.config import SystemConfig, named_configs
from repro.sim.results import SimulationResult
from repro.sim.snapshot import (
    SystemSnapshot,
    capture_warmup,
    config_key as _snapshot_config_key,
    load_snapshot,
    restore,
    skip_accesses,
    snapshot_fingerprint,
)
from repro.sim.system import ServerSystem
from repro.telemetry.metrics import (
    record_snapshot_capture,
    record_snapshot_restore,
)
from repro.trace.buffer import DEFAULT_CHUNK_SIZE, TraceBuffer, as_chunk_iterator
from repro.trace.source import resume_source
from repro.workloads.catalog import get_workload
from repro.workloads.generator import generate_trace_buffer, iter_trace_chunks
from repro.workloads.spec import WorkloadSpec

#: Default trace length used by the benchmark harness; large enough for the
#: 4MB LLC and the predictors to warm up and reach steady state, small enough
#: for a pure-Python simulator to run every figure in minutes.
DEFAULT_TRACE_LENGTH = 240_000
#: Fraction of the trace used only to warm caches, predictors and row buffers
#: before measurement starts (the paper uses warmed checkpoints similarly).
DEFAULT_WARMUP_FRACTION = 0.5
DEFAULT_NUM_CORES = 16
DEFAULT_SEED = 42

#: Upper bound on cached traces (the cache previously grew without limit).
#: Eight entries cover the six paper workloads at one geometry with room for
#: two sweep variants; columnar buffers keep the bound's residency to tens of
#: MB.  The campaign engine keeps its own equally-bounded, content-keyed memo
#: (:mod:`repro.exec.pool`) for the analysis paths; this cache serves the
#: single-run API and the CLI's run/compare/trace commands.
TRACE_CACHE_MAX_ENTRIES = 8

_TRACE_CACHE: "OrderedDict[tuple, TraceBuffer]" = OrderedDict()
#: Lifetime hit/miss counts of the trace cache (cache-consulted calls only;
#: ``use_cache=False`` bypasses are neither).  Surfaced by
#: :func:`trace_cache_info` and the ``repro report --caches`` command.
_TRACE_CACHE_HITS = 0
_TRACE_CACHE_MISSES = 0

TraceLike = Union[TraceBuffer, Sequence[Access], Iterable]


def _freeze_trace(trace: TraceBuffer) -> TraceBuffer:
    """Mark a buffer's column arrays read-only (in place) and return it."""
    for column in (trace.core, trace.pc, trace.address, trace.is_store,
                   trace.instructions):
        column.setflags(write=False)
    return trace


def build_trace(workload: Union[str, WorkloadSpec], num_accesses: int = DEFAULT_TRACE_LENGTH,
                num_cores: int = DEFAULT_NUM_CORES, seed: int = DEFAULT_SEED,
                use_cache: bool = True) -> TraceBuffer:
    """Build (or fetch from the LRU cache) the columnar trace for a workload.

    The cache key is the *content fingerprint* of the spec -- every field,
    not the display name -- so two specs that share a name but differ in any
    parameter (e.g. ``with_overrides`` variants) can never serve each other's
    trace.

    Cached buffers are returned **read-only** (``writeable=False`` on every
    column array): every cache hit hands back the same arrays, so a caller
    mutating them in place would silently corrupt the reference stream of
    every later run of the same workload.  Writing to a column now raises;
    callers that need a mutable trace should copy the columns or pass
    ``use_cache=False``.
    """
    global _TRACE_CACHE_HITS, _TRACE_CACHE_MISSES
    spec = get_workload(workload) if isinstance(workload, str) else workload
    key = (workload_fingerprint(spec), num_accesses, num_cores, seed)
    if use_cache and key in _TRACE_CACHE:
        _TRACE_CACHE_HITS += 1
        _TRACE_CACHE.move_to_end(key)
        return _TRACE_CACHE[key]
    trace = generate_trace_buffer(spec, num_accesses, num_cores=num_cores, seed=seed)
    if use_cache:
        _TRACE_CACHE_MISSES += 1
        _freeze_trace(trace)
        _TRACE_CACHE[key] = trace
        _TRACE_CACHE.move_to_end(key)
        while len(_TRACE_CACHE) > TRACE_CACHE_MAX_ENTRIES:
            _TRACE_CACHE.popitem(last=False)
    return trace


def clear_trace_cache() -> None:
    """Drop all cached traces (frees memory between unrelated sweeps).

    Also zeroes the hit/miss counters, so :func:`trace_cache_info` after a
    clear describes only the activity since.
    """
    global _TRACE_CACHE_HITS, _TRACE_CACHE_MISSES
    _TRACE_CACHE.clear()
    _TRACE_CACHE_HITS = 0
    _TRACE_CACHE_MISSES = 0


def trace_cache_info() -> Dict[str, float]:
    """Occupancy, capacity and lifetime effectiveness of the trace cache.

    ``hit_ratio`` is hits over cache-consulted lookups (hits + misses),
    0.0 before the first lookup.
    """
    lookups = _TRACE_CACHE_HITS + _TRACE_CACHE_MISSES
    return {
        "entries": len(_TRACE_CACHE),
        "capacity": TRACE_CACHE_MAX_ENTRIES,
        "hits": _TRACE_CACHE_HITS,
        "misses": _TRACE_CACHE_MISSES,
        "hit_ratio": _TRACE_CACHE_HITS / lookups if lookups else 0.0,
    }


def run_trace(trace: TraceLike, config: SystemConfig,
              workload_name: str = "workload",
              warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
              extra_agents: Optional[Iterable] = None,
              num_accesses: Optional[int] = None,
              cache_engine: Optional[str] = None,
              dram_engine: Optional[str] = None,
              interp: Optional[str] = None,
              telemetry=None,
              snapshot=None,
              warmup_snapshot=None,
              snapshot_key: Optional[str] = None) -> SimulationResult:
    """Run an explicit trace through one system configuration.

    ``trace`` may be a :class:`TraceBuffer`, a sequence of ``Access``
    records, an iterator of either (including a stream of ``TraceBuffer``
    chunks), or a :class:`repro.scenario.spec.Scenario` (compiled to a
    streaming chunk iterator; its ``total_accesses`` supplies the warmup
    boundary).  Materialized inputs are consumed in place -- never copied;
    for pure iterators the warmup boundary needs a length, so pass
    ``num_accesses`` to stay streaming (otherwise the iterator is buffered
    once into columnar form).

    ``extra_agents`` are additional :class:`repro.cache.agent.LLCAgent`
    instances attached to the LLC for this run only -- typically passive
    observers such as :class:`repro.trace.capture.LLCTraceRecorder` or the
    region-density profiler.

    ``cache_engine`` selects the cache array engine (``"flat"`` or
    ``"dict"``; default ``REPRO_CACHE_ENGINE``) and ``dram_engine`` the
    memory-system engine (``"flat"`` or ``"object"``; default
    ``REPRO_DRAM_ENGINE``).  Every engine combination produces bit-identical
    results -- the knobs exist for benchmarking and the parity suite.
    ``interp`` selects the flat-engine trace interpreter (``"vector"`` or
    ``"scalar"``; default ``REPRO_INTERP`` -- see :mod:`repro.sim.interp`),
    also bit-identical either way.

    ``telemetry`` selects the observability mode (``"off"``, ``"chunks"``,
    ``"spans"``, ``"full"``, a :class:`repro.telemetry.TelemetryRecorder`
    to keep, or ``None`` to consult ``REPRO_TELEMETRY``).  Telemetry never
    changes the result -- pass a recorder instance to read the timeline and
    span events afterwards.

    ``snapshot`` replays from an explicit warm state instead of simulating
    the trace prefix: a :class:`repro.sim.snapshot.SystemSnapshot` or a path
    to a saved one.  The snapshot's ``processed`` accesses are skipped from
    ``trace`` and the remainder is measured; the result is bit-identical to
    the uninterrupted warmup run the snapshot was captured from.

    ``warmup_snapshot`` amortizes warmup through a snapshot store: pass an
    :class:`repro.exec.store.ArtifactStore` (or a directory path, or
    ``True`` for the ``REPRO_SNAPSHOT_DIR``/``REPRO_ARTIFACT_DIR`` default)
    together with ``snapshot_key`` (see
    :func:`repro.sim.snapshot.snapshot_fingerprint`; the workload-level
    entry points compute it).  A store hit restores instead of warming up; a
    miss warms up once, captures at the measurement boundary, publishes the
    snapshot and continues -- either way the result is bit-identical to a
    cold run.  Neither snapshot path may be combined with ``extra_agents``
    (attached agents are invisible to the fingerprint).
    """
    if snapshot is not None and warmup_snapshot is not None:
        raise ValueError("pass either snapshot or warmup_snapshot, not both")
    if (snapshot is not None or warmup_snapshot is not None) and extra_agents:
        raise ValueError(
            "snapshots cannot be combined with extra_agents: the extra "
            "agents are not part of the snapshot fingerprint")
    if snapshot is not None:
        return _run_from_snapshot(_coerce_snapshot(snapshot), trace, config,
                                  interp=interp, telemetry=telemetry)
    warmup = 0
    if warmup_fraction > 0:
        total = num_accesses
        if total is None:
            total = _trace_length(trace)
        if total is None:
            # A bare iterator with no declared length: buffer it into
            # columnar chunks once so the warmup split can be computed.
            trace = TraceBuffer.concat(list(as_chunk_iterator(trace)))
            total = len(trace)
        warmup = int(total * warmup_fraction)
        # When the trace's true length is known up front, reject an
        # impossible warmup interval *before* simulating anything -- the
        # streaming loop would otherwise consume the whole stream first and
        # raise the same error at the end (which it still does for pure
        # iterators whose declared ``num_accesses`` turns out to be an
        # overestimate).
        known = _trace_length(trace)
        if known is not None and known < warmup:
            raise ValueError(
                "trace shorter than the requested warmup interval")
    if warmup_snapshot is not None and warmup:
        return _run_with_warmup_store(
            trace, config, warmup_snapshot, snapshot_key,
            workload_name=workload_name, warmup=warmup,
            cache_engine=cache_engine, dram_engine=dram_engine,
            interp=interp, telemetry=telemetry)
    system = ServerSystem(config, workload_name=workload_name,
                          cache_engine=cache_engine, dram_engine=dram_engine,
                          interp=interp, telemetry=telemetry)
    if extra_agents is not None:
        system.agents.extend(extra_agents)
    return system.run(trace, warmup_accesses=warmup)


def _as_stream(trace: TraceLike):
    """Normalize ``trace`` for the snapshot paths (Scenario -> chunk stream).

    Mirrors :meth:`ServerSystem.run`'s scenario handling so skipping and
    tail-running see the identical chunk stream a direct run would.
    """
    # Lazy import: repro.scenario layers above repro.sim.
    from repro.scenario.compiler import iter_scenario_chunks
    from repro.scenario.spec import Scenario

    if isinstance(trace, Scenario):
        return iter_scenario_chunks(trace)
    return trace


def _coerce_snapshot(snapshot) -> SystemSnapshot:
    if isinstance(snapshot, SystemSnapshot):
        return snapshot
    return load_snapshot(snapshot)


def _run_from_snapshot(snap: SystemSnapshot, trace: TraceLike,
                       config: SystemConfig, interp: Optional[str] = None,
                       telemetry=None) -> SimulationResult:
    """Fork a system from ``snap`` and measure the remainder of ``trace``."""
    if snap.config_key != _snapshot_config_key(config):
        raise ValueError(
            "snapshot was captured under a different system configuration")
    system = restore(snap, telemetry=telemetry, interp=interp)
    record_snapshot_restore(snap.nbytes)
    stream = _as_stream(trace)
    restore_state = getattr(stream, "restore_state", None)
    if restore_state is not None:
        # A feedback-driven source replays from its checkpointed production
        # state (controller values + the unserviced warmup-split tail)
        # instead of skipping a position-deterministic prefix.
        if snap.source_state is None:
            raise ValueError(
                "snapshot carries no trace-source state: it was not captured "
                "from a feedback-driven (closed-loop) source")
        restore_state(snap.source_state)
        tail = stream
    else:
        if snap.source_state is not None:
            raise ValueError(
                "snapshot carries trace-source state: replay it with the "
                "matching closed-loop source, not an open-loop trace")
        tail = skip_accesses(stream, snap.processed)
    return system.run(tail, warmup_accesses=0)


def _resolve_snapshot_store(warmup_snapshot):
    """Turn ``warmup_snapshot`` into a store handle with snapshot accessors."""
    # Lazy imports: repro.sim must stay importable without repro.exec.
    if warmup_snapshot is True:
        from repro.exec.store import default_snapshot_store

        store = default_snapshot_store()
        if store is None:
            raise ValueError(
                "no snapshot store configured: set REPRO_SNAPSHOT_DIR or "
                "REPRO_ARTIFACT_DIR, or pass an ArtifactStore")
        return store
    if hasattr(warmup_snapshot, "get_snapshot"):
        return warmup_snapshot
    from repro.exec.store import ArtifactStore

    return ArtifactStore(warmup_snapshot)


def _run_with_warmup_store(trace: TraceLike, config: SystemConfig,
                           warmup_snapshot, snapshot_key: Optional[str],
                           workload_name: str, warmup: int,
                           cache_engine: Optional[str],
                           dram_engine: Optional[str],
                           interp: Optional[str],
                           telemetry) -> SimulationResult:
    """Warmup via the snapshot store: restore on hit, capture-once on miss."""
    store = _resolve_snapshot_store(warmup_snapshot)
    if snapshot_key is None:
        raise ValueError(
            "warmup_snapshot requires snapshot_key (run_workload, "
            "run_workload_streaming and run_scenario compute it; see "
            "repro.sim.snapshot.snapshot_fingerprint)")
    snap = store.get_snapshot(snapshot_key)
    if snap is not None:
        if snap.processed != warmup:
            raise ValueError(
                f"snapshot under key {snapshot_key!r} was captured after "
                f"{snap.processed} accesses, not the requested {warmup}")
        return _run_from_snapshot(snap, trace, config, interp=interp,
                                  telemetry=telemetry)
    system = ServerSystem(config, workload_name=workload_name,
                          cache_engine=cache_engine, dram_engine=dram_engine,
                          interp=interp, telemetry=telemetry)
    snap, leftover, source = capture_warmup(system, _as_stream(trace),
                                            warmup)
    store.put_snapshot(snapshot_key, snap)
    record_snapshot_capture(snap.nbytes)
    return system.run(resume_source(leftover, source), warmup_accesses=0)


def _trace_length(trace: TraceLike) -> Optional[int]:
    """Number of accesses in ``trace``, or ``None`` if it must be drained.

    A materialized list of chunks counts *accesses*, not chunks -- ``len()``
    on a ``[TraceBuffer, ...]`` would silently misplace the warmup boundary.
    A scenario declares its length, so it stays streaming.
    """
    total = getattr(trace, "total_accesses", None)
    if isinstance(total, int):  # a Scenario (duck-typed to avoid the import)
        return total
    if isinstance(trace, (list, tuple)) and trace and isinstance(trace[0], TraceBuffer):
        return sum(len(chunk) for chunk in trace)
    try:
        return len(trace)
    except TypeError:
        return None


def run_workload(workload: Union[str, WorkloadSpec], config: SystemConfig,
                 num_accesses: int = DEFAULT_TRACE_LENGTH,
                 num_cores: int = DEFAULT_NUM_CORES,
                 seed: int = DEFAULT_SEED,
                 warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                 cache_engine: Optional[str] = None,
                 dram_engine: Optional[str] = None,
                 interp: Optional[str] = None,
                 telemetry=None,
                 snapshot=None,
                 warmup_snapshot=None) -> SimulationResult:
    """Run one workload through one system configuration.

    ``snapshot`` / ``warmup_snapshot`` behave as in :func:`run_trace`; the
    warmup fingerprint is computed here from the workload spec, geometry and
    engine selection.
    """
    spec = get_workload(workload) if isinstance(workload, str) else workload
    trace = build_trace(spec, num_accesses, num_cores, seed)
    key = None
    if warmup_snapshot is not None and warmup_fraction > 0:
        key = snapshot_fingerprint(
            spec, config, int(num_accesses * warmup_fraction),
            num_cores=num_cores, seed=seed,
            cache_engine=cache_engine, dram_engine=dram_engine)
    return run_trace(trace, config, workload_name=spec.name,
                     warmup_fraction=warmup_fraction, cache_engine=cache_engine,
                     dram_engine=dram_engine, interp=interp, telemetry=telemetry,
                     snapshot=snapshot, warmup_snapshot=warmup_snapshot,
                     snapshot_key=key)


def run_workload_streaming(workload: Union[str, WorkloadSpec], config: SystemConfig,
                           num_accesses: int = DEFAULT_TRACE_LENGTH,
                           num_cores: int = DEFAULT_NUM_CORES,
                           seed: int = DEFAULT_SEED,
                           warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                           chunk_size: int = DEFAULT_CHUNK_SIZE,
                           cache_engine: Optional[str] = None,
                           dram_engine: Optional[str] = None,
                           interp: Optional[str] = None,
                           telemetry=None,
                           snapshot=None,
                           warmup_snapshot=None,
                           closed_loop=None) -> SimulationResult:
    """Run one workload at bounded memory: generator chunks feed the simulator.

    The trace is never materialized (neither as objects nor as one large
    buffer) and nothing is cached, so million-access traces simulate with a
    memory footprint of one chunk.  Results are bit-identical to
    :func:`run_workload` for the same arguments.

    ``workload`` may also be a :class:`repro.scenario.spec.Scenario`; the
    call then delegates to :func:`repro.scenario.runner.run_scenario` (the
    scenario defines its own length and core layout, so ``num_accesses`` and
    ``num_cores`` are ignored).

    ``snapshot`` / ``warmup_snapshot`` behave as in :func:`run_trace` and
    stay streaming: a snapshot hit skips the warmup prefix without
    generating it access by access (the generators are cheap; the simulator
    is not).

    ``closed_loop`` (a :class:`repro.scenario.closed_loop.ClosedLoopSpec`
    or parameter dict) turns a *scenario* run closed-loop -- see
    :func:`repro.scenario.runner.run_scenario`.  Plain workloads have no
    phase structure for the controller to rescale, so the knob is rejected
    for them.
    """
    if hasattr(workload, "phases") and hasattr(workload, "total_accesses"):
        # Lazy import: repro.scenario layers above repro.sim.
        from repro.scenario.runner import run_scenario

        return run_scenario(workload, config, seed=seed,
                            warmup_fraction=warmup_fraction,
                            chunk_size=chunk_size, cache_engine=cache_engine,
                            dram_engine=dram_engine, interp=interp,
                            telemetry=telemetry, snapshot=snapshot,
                            warmup_snapshot=warmup_snapshot,
                            closed_loop=closed_loop)
    if closed_loop is not None:
        raise ValueError(
            "closed_loop applies to scenario runs only; pass a Scenario "
            "(see repro.scenario.closed_loop)")
    spec = get_workload(workload) if isinstance(workload, str) else workload
    chunks = iter_trace_chunks(spec, num_accesses, num_cores=num_cores,
                               seed=seed, chunk_size=chunk_size)
    key = None
    if warmup_snapshot is not None and warmup_fraction > 0:
        key = snapshot_fingerprint(
            spec, config, int(num_accesses * warmup_fraction),
            num_cores=num_cores, seed=seed,
            cache_engine=cache_engine, dram_engine=dram_engine)
    return run_trace(chunks, config, workload_name=spec.name,
                     warmup_fraction=warmup_fraction, num_accesses=num_accesses,
                     cache_engine=cache_engine, dram_engine=dram_engine,
                     interp=interp, telemetry=telemetry,
                     snapshot=snapshot, warmup_snapshot=warmup_snapshot,
                     snapshot_key=key)


def run_configs(workload: Union[str, WorkloadSpec], configs: Iterable[SystemConfig],
                num_accesses: int = DEFAULT_TRACE_LENGTH,
                num_cores: int = DEFAULT_NUM_CORES,
                seed: int = DEFAULT_SEED,
                warmup_fraction: float = DEFAULT_WARMUP_FRACTION) -> Dict[str, SimulationResult]:
    """Run one workload through several configurations over the identical trace."""
    spec = get_workload(workload) if isinstance(workload, str) else workload
    trace = build_trace(spec, num_accesses, num_cores, seed)
    results: Dict[str, SimulationResult] = {}
    for config in configs:
        results[config.name] = run_trace(trace, config, workload_name=spec.name,
                                         warmup_fraction=warmup_fraction)
    return results


def run_named_configs(workload: Union[str, WorkloadSpec],
                      config_names: Optional[List[str]] = None,
                      num_accesses: int = DEFAULT_TRACE_LENGTH,
                      num_cores: int = DEFAULT_NUM_CORES,
                      seed: int = DEFAULT_SEED,
                      warmup_fraction: float = DEFAULT_WARMUP_FRACTION) -> Dict[str, SimulationResult]:
    """Run one workload through the named paper configurations."""
    configs = named_configs(config_names)
    return run_configs(workload, configs.values(), num_accesses, num_cores, seed,
                       warmup_fraction)
