"""Trace-driven full-system model.

This package assembles the substrates (caches, DRAM, NOC, energy) and the
mechanisms under study (stride, SMS, VWQ, BuMP, Full-region) into the system
configurations the paper evaluates, runs workload traces through them, and
produces the metrics every figure and table consumes.

* :mod:`repro.sim.config` -- :class:`SystemConfig` plus factories for the
  named configurations: ``Base-close``, ``Base-open``, ``SMS``, ``VWQ``,
  ``SMS+VWQ``, ``Full-region``, ``BuMP`` and ``Ideal``.
* :mod:`repro.sim.system` -- :class:`ServerSystem`, the trace interpreter
  that moves accesses through the L1s, the LLC, the attached agents and the
  memory system while attributing every DRAM transfer.
* :mod:`repro.sim.timing` -- the analytic performance model (base CPI plus
  exposed memory stalls bounded by memory bandwidth).
* :mod:`repro.sim.results` -- :class:`SimulationResult`, the measurement
  bundle returned by a run.
* :mod:`repro.sim.runner` -- convenience entry points used by the examples,
  tests and benchmark harness.
"""

from repro.sim.config import (
    SystemConfig,
    base_close,
    base_open,
    bump_system,
    bump_vwq_system,
    eager_writeback_system,
    extended_configs,
    full_region_system,
    ideal_system,
    named_configs,
    nextline_system,
    sms_system,
    sms_vwq_system,
    stealth_system,
    vwq_system,
)
from repro.sim.results import SimulationResult
from repro.sim.runner import run_trace, run_workload
from repro.sim.system import ServerSystem
from repro.sim.timing import TimingModel, TimingSummary

__all__ = [
    "SystemConfig",
    "base_close",
    "base_open",
    "bump_system",
    "bump_vwq_system",
    "eager_writeback_system",
    "extended_configs",
    "full_region_system",
    "ideal_system",
    "named_configs",
    "nextline_system",
    "sms_system",
    "sms_vwq_system",
    "stealth_system",
    "vwq_system",
    "SimulationResult",
    "run_trace",
    "run_workload",
    "ServerSystem",
    "TimingModel",
    "TimingSummary",
]
