"""Warm-state snapshots: checkpoint/restore of a full :class:`ServerSystem`.

Warmup dominates BuMP-style studies: row-buffer locality, LRU stamp state
and predictor tables only become representative after hundreds of thousands
of accesses, and every what-if query re-pays that warmup from a cold system.
The PR 3/5/7 flattening program turned all engine state into a handful of
NumPy arrays plus small Python containers, which makes full-system
checkpoint/restore a cheap serialization problem.  This module provides it:

* :func:`capture` freezes a :class:`ServerSystem` at a chunk boundary into a
  :class:`SystemSnapshot`;
* :func:`restore` builds a *fresh* system from the snapshot such that
  continuing it is **bit-identical** to never having stopped (the same
  parity bar every engine met: chunk boundaries are architecturally
  invisible, so capture-at-boundary + continue replays to the same state);
* :func:`capture_warmup` runs a trace's warmup interval and captures at the
  measurement boundary -- the pay-warmup-once / fork-per-query entry point;
* :func:`save_snapshot` / :func:`load_snapshot` persist snapshots as ``.npz``
  containers (big cache arrays as native members, everything else as one
  pickle blob) for the artifact store and cross-process restore;
* :func:`snapshot_fingerprint` names a warm state by what produced it:
  (workload/scenario spec, system configuration, warmup length, cores, seed,
  engine selection, package version).

**Restore strategy.**  ``restore`` never unpickles a live system wholesale.
It builds a fresh :class:`ServerSystem` from the snapshot's configuration
(re-deriving every view, memoryview alias and pooled allocation exactly as
``__init__`` does), then copies the captured state *into* it: pooled cache
arrays are written in place (so the per-core memoryview aliases stay valid),
slot indices / stat groups / the memory system / agents are replaced as
objects, and the one derived binding that references a replaced dict
(``_l1_slot_get``) is rebuilt.  Each restore unpickles a private copy of the
state blob, so many systems can be forked from one snapshot without sharing
mutable state.

**What is deliberately not captured.**  Telemetry recorders (an observer,
never observable -- off==on bit-identity is an invariant), the interpreter
selection (vector and scalar are bit-identical; the restorer picks), and
``extra_agents`` attached after construction (they cannot be fingerprinted;
:func:`capture` refuses systems whose agent roster differs from what the
configuration builds).
"""

from __future__ import annotations

import json
import pickle
import zipfile
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.cache.engine import cache_engine_name
from repro.cache.replacement import LRUPolicy
from repro.common.fingerprint import canonical_data, fingerprint
from repro.dram.engine import resolve_dram_engine
from repro.sim.system import ServerSystem
from repro.trace.buffer import as_chunk_iterator

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "SystemSnapshot",
    "capture",
    "capture_warmup",
    "load_snapshot",
    "restore",
    "resolved_engines",
    "save_snapshot",
    "skip_accesses",
    "snapshot_fingerprint",
]

#: Container format version.  Bumped whenever the captured state layout
#: changes incompatibly; :func:`load_snapshot` and :func:`restore` refuse
#: other versions (the fingerprint additionally carries the package version,
#: so stale-but-loadable snapshots never match a fresh fingerprint either).
SNAPSHOT_FORMAT_VERSION = 1

#: Crossbar counters (plain ints on the hot path), captured by name.
_NOC_COUNTERS = (
    "n_request",
    "n_request_with_pc",
    "n_data",
    "n_predictor_notify",
    "n_generated_request",
)

#: ServerSystem interpreter-cursor scalars, captured by name.
_SCALARS = (
    "_core_cycle",
    "_arrival_bus",
    "_instructions",
    "_measurement_start_core_cycle",
    "_measurement_start_bus_cycle",
)

#: npz member-name prefix for the native array members.
_ARRAY_PREFIX = "array_"


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports repro.sim, so a module-level
    # import would be circular.
    from repro import __version__

    return __version__


@dataclass
class SystemSnapshot:
    """One captured warm state, self-describing and restore-ready.

    ``arrays`` holds the big flat-engine cache planes as native NumPy arrays
    (mmap-friendly in the ``.npz`` container); ``state_blob`` is one pickle
    of everything else -- slot indices, stat groups, the memory system,
    agents, NOC counters and interpreter cursors -- serialized as a single
    object graph so internal aliasing (``system.bump`` *is* an entry of
    ``system.agents``; a DRAM ready-bucket *is* a ``_by_key`` value) survives
    the round trip.
    """

    format_version: int
    package_version: str
    workload_name: str
    cache_engine: str
    dram_engine: str
    #: Accesses consumed before capture (the warmup length for warmup
    #: snapshots); restore paths skip exactly this many from the trace.
    processed: int
    #: Fingerprint of the capturing system's configuration (name and
    #: description dropped); restore against a different configuration is
    #: refused.
    config_key: str
    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    state_blob: bytes = b""
    #: Checkpointed trace-*source* state (closed-loop controller position,
    #: intensity, history and any unserviced warmup-split tail), captured
    #: when the producing source exposes ``checkpoint_state``.  ``None`` for
    #: open-loop sources and pre-existing snapshot files -- the member is
    #: optional in the container, so the format version is unchanged.
    source_state: Optional[Dict] = None

    @property
    def nbytes(self) -> int:
        """Approximate in-memory size (array bytes + state blob bytes)."""
        return sum(a.nbytes for a in self.arrays.values()) + len(self.state_blob)

    def describe(self) -> Dict[str, object]:
        """Human-oriented metadata (``repro snapshot info``)."""
        return {
            "format_version": self.format_version,
            "package_version": self.package_version,
            "workload": self.workload_name,
            "cache_engine": self.cache_engine,
            "dram_engine": self.dram_engine,
            "processed_accesses": self.processed,
            "config_key": self.config_key,
            "array_members": len(self.arrays),
            "array_bytes": sum(a.nbytes for a in self.arrays.values()),
            "state_bytes": len(self.state_blob),
            "total_bytes": self.nbytes,
        }


def config_key(config) -> str:
    """Fingerprint of a system configuration's behaviour-relevant fields.

    ``name`` and ``description`` are labels, not behaviour (two differently
    named but identical configurations produce identical warm state), so
    they are dropped -- mirroring the result-fingerprint convention of
    :mod:`repro.exec.jobs`.
    """
    data = canonical_data(config)
    data.pop("name", None)
    data.pop("description", None)
    return fingerprint(data)


def resolved_engines(config, cache_engine: Optional[str] = None,
                     dram_engine: Optional[str] = None) -> Tuple[str, str]:
    """The (cache, DRAM) engine names a system built this way would run.

    Snapshot fingerprints must key on *effective* engines: the DRAM engine
    transparently downgrades to ``object`` for ablation schedulers and
    oversized organisations, and an env-var override changes the default.
    """
    return (
        cache_engine_name(cache_engine),
        resolve_dram_engine(dram_engine, scheduler=config.scheduler,
                            org=config.system.dram_org),
    )


def snapshot_fingerprint(workload, config, warmup_accesses: int,
                         num_cores: Optional[int] = None,
                         seed: Optional[int] = None,
                         cache_engine: Optional[str] = None,
                         dram_engine: Optional[str] = None,
                         closed_loop=None) -> str:
    """Content address of the warm state a (spec, config, warmup) run produces.

    The trace *prefix* generated for a (workload spec, cores, seed) triple is
    identical regardless of the total trace length -- the generators draw
    per-(core, slot) RNG streams -- so the fingerprint deliberately excludes
    the total access count: a 60k-access query and a 240k-access query with
    the same 30k-access warmup share one snapshot.  Scenarios carry their
    core count in the spec, so ``num_cores`` may be ``None`` for them.

    ``closed_loop`` (a :class:`repro.scenario.closed_loop.ClosedLoopSpec`)
    enters the digest only when set, so every pre-existing open-loop
    fingerprint -- and every snapshot already in an artifact store -- stays
    stable.
    """
    engines = resolved_engines(config, cache_engine, dram_engine)
    data = {
        "kind": "snapshot",
        "version": _package_version(),
        "workload": canonical_data(workload),
        "config": config_key(config),
        "warmup_accesses": int(warmup_accesses),
        "num_cores": num_cores,
        "seed": seed,
        "cache_engine": engines[0],
        "dram_engine": engines[1],
    }
    if closed_loop is not None:
        data["closed_loop"] = canonical_data(closed_loop)
    return fingerprint(data)


# --------------------------------------------------------------------- #
# Capture
# --------------------------------------------------------------------- #
def _flush_pending(system: ServerSystem) -> None:
    """Fold every hot-path pending counter into its StatGroup.

    All of these folds are semantically neutral (every external read goes
    through the flushing ``stats`` properties anyway); doing them before
    capture means the pickled StatGroups are complete and the freshly built
    restore target's zeroed pending ints are correct.
    """
    system._flush_dram()
    system._flush_hot_counters()
    system.llc.stats  # wrapper pendings -> StatGroup
    if system._flat_engine:
        for cache in system._l1_arrays:
            cache.stats
        system._llc_array.stats


def capture(system: ServerSystem, processed: int,
            source_state: Optional[Dict] = None) -> SystemSnapshot:
    """Freeze ``system`` at a chunk boundary into a :class:`SystemSnapshot`.

    Must be called at a chunk boundary (the staged DRAM batch is flushed
    here, which is exactly what ``_run_chunk`` does at every boundary, so
    capturing between chunks never perturbs the run).  The system stays
    valid and can keep running afterwards.

    ``processed`` records how many trace accesses the system has consumed;
    restore paths skip exactly that many before continuing.
    ``source_state`` carries a feedback-driven trace source's checkpoint
    (see :class:`SystemSnapshot.source_state`).

    Systems carrying agents beyond what their configuration builds
    (``run_trace``'s ``extra_agents``) are refused: those agents are not
    part of the fingerprint, so a snapshot would silently drop or duplicate
    their effect on another query.
    """
    _check_no_extra_agents(system)
    _flush_pending(system)

    state: Dict[str, object] = {
        "config": system.config,
        "workload_name": system.workload_name,
        "counters": system.counters,
        "noc": {name: getattr(system.noc, name) for name in _NOC_COUNTERS},
        "scalars": {name: getattr(system, name) for name in _SCALARS},
        "memory": system.memory,
        "agents": system.agents,
        "bump": system.bump,
        "profiler": system.profiler,
    }
    arrays: Dict[str, np.ndarray] = {}
    if system._flat_engine:
        arrays["l1_tags"] = system._l1_pool_tags.copy()
        arrays["l1_flags"] = system._l1_pool_flags.copy()
        arrays["l1_pcs"] = system._l1_pool_pcs.copy()
        arrays["l1_cores"] = system._l1_pool_cores.copy()
        arrays["l1_stamps"] = system._l1_pool_stamps.copy()
        arrays["l1_ticks"] = system._l1_pool_ticks.copy()
        llc = system._llc_array
        arrays["llc_tags"] = llc.tags.copy()
        arrays["llc_flags"] = llc.flags.copy()
        arrays["llc_pcs"] = llc.pcs.copy()
        arrays["llc_cores"] = llc.cores.copy()
        arrays["llc_stamps"] = llc.stamps.copy()
        arrays["llc_ticks"] = llc.ticks.copy()
        state["l1_state"] = [_flat_cache_state(cache)
                             for cache in system._l1_arrays]
        state["llc_state"] = _flat_cache_state(llc)
        state["llc_wrapper_stats"] = system.llc._stats
    else:
        # Dict engine: the per-line-object caches pickle wholesale (their
        # pending counter ints ride along inside the objects).
        state["l1s"] = system.l1s
        state["llc"] = system.llc

    blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    return SystemSnapshot(
        format_version=SNAPSHOT_FORMAT_VERSION,
        package_version=_package_version(),
        workload_name=system.workload_name,
        cache_engine=system.cache_engine,
        dram_engine=system.dram_engine,
        processed=int(processed),
        config_key=config_key(system.config),
        arrays=arrays,
        state_blob=blob,
        source_state=source_state,
    )


def _check_no_extra_agents(system: ServerSystem) -> None:
    reference = ServerSystem.__new__(ServerSystem)
    reference.config = system.config
    reference.agents = []
    reference.bump = None
    reference.profiler = None
    reference._build_agents()
    if len(system.agents) != len(reference.agents) or any(
            type(a) is not type(b)
            for a, b in zip(system.agents, reference.agents)):
        raise ValueError(
            "snapshots cannot capture systems with extra_agents: the extra "
            "agents are not part of the snapshot fingerprint")


def _flat_cache_state(cache) -> Dict[str, object]:
    """The non-array state of one :class:`FlatSetAssociativeCache`.

    The five state planes + tick array travel as native npz members (see
    :func:`capture`); everything else -- the block->slot index, per-set
    occupancy, flushed statistics and the replacement policy (including any
    seeded RNG, which is the snapshot's "RNG state") -- pickles here.
    """
    return {
        "slot_of": cache._slot_of,
        "count": cache._count,
        "stats": cache._stats,
        "policy": cache.policy,
    }


# --------------------------------------------------------------------- #
# Restore
# --------------------------------------------------------------------- #
def restore(snapshot: SystemSnapshot, telemetry=None,
            interp: Optional[str] = None) -> ServerSystem:
    """Build a fresh :class:`ServerSystem` in the snapshot's captured state.

    Continuing the returned system over the remainder of the capturing trace
    is bit-identical to the uninterrupted run.  Each call unpickles its own
    copy of the state blob, so any number of independent systems can be
    forked from one snapshot (the fork-per-query pattern).

    ``telemetry`` and ``interp`` are free choices of the restorer -- both
    are bit-identity-invariant, so neither is part of the captured state.
    """
    if snapshot.format_version != SNAPSHOT_FORMAT_VERSION:
        raise ValueError(
            f"snapshot format v{snapshot.format_version} is not supported "
            f"by this build (expected v{SNAPSHOT_FORMAT_VERSION})")
    state = pickle.loads(snapshot.state_blob)
    system = ServerSystem(
        state["config"],
        workload_name=state["workload_name"],
        cache_engine=snapshot.cache_engine,
        dram_engine=snapshot.dram_engine,
        interp=interp,
        telemetry=telemetry,
    )
    if system.cache_engine != snapshot.cache_engine \
            or system.dram_engine != snapshot.dram_engine:
        raise ValueError(
            f"engine resolution drifted: snapshot was captured on "
            f"({snapshot.cache_engine}, {snapshot.dram_engine}) but this "
            f"build resolves ({system.cache_engine}, {system.dram_engine})")

    arrays = snapshot.arrays
    if system._flat_engine:
        # Pooled L1 planes are written *in place*: every per-core cache's
        # flat views and memoryview aliases stay valid.
        np.copyto(system._l1_pool_tags, arrays["l1_tags"])
        np.copyto(system._l1_pool_flags, arrays["l1_flags"])
        np.copyto(system._l1_pool_pcs, arrays["l1_pcs"])
        np.copyto(system._l1_pool_cores, arrays["l1_cores"])
        np.copyto(system._l1_pool_stamps, arrays["l1_stamps"])
        np.copyto(system._l1_pool_ticks, arrays["l1_ticks"])
        llc = system._llc_array
        np.copyto(llc.tags, arrays["llc_tags"])
        np.copyto(llc.flags, arrays["llc_flags"])
        np.copyto(llc.pcs, arrays["llc_pcs"])
        np.copyto(llc.cores, arrays["llc_cores"])
        np.copyto(llc.stamps, arrays["llc_stamps"])
        np.copyto(llc.ticks, arrays["llc_ticks"])
        for cache, saved in zip(system._l1_arrays, state["l1_state"]):
            _load_flat_cache(cache, saved)
        _load_flat_cache(llc, state["llc_state"])
        # The slot-index dicts were replaced; rebuild the one derived
        # binding that captured the old dicts' bound methods.
        system._l1_slot_get = [cache._slot_of.get
                               for cache in system._l1_arrays]
        system.llc._stats = state["llc_wrapper_stats"]
    else:
        system.l1s = state["l1s"]
        system.llc = state["llc"]

    system.memory = state["memory"]
    system.agents = state["agents"]
    system.bump = state["bump"]
    system.profiler = state["profiler"]
    system._refresh_agent_hooks()
    system.counters = state["counters"]
    for name, value in state["noc"].items():
        setattr(system.noc, name, value)
    for name, value in state["scalars"].items():
        setattr(system, name, value)
    return system


def _load_flat_cache(cache, saved: Dict[str, object]) -> None:
    """Adopt captured non-array state into a fresh flat cache.

    The policy's promotion semantics are re-derived exactly as the
    constructor does (``_lru`` drives the inlined victim scan, ``_promote``
    the stamp writes); a captured RandomPolicy arrives with its RNG
    mid-sequence, which is precisely what parity requires.
    """
    cache._slot_of = saved["slot_of"]
    cache._count = saved["count"]
    cache._stats = saved["stats"]
    policy = saved["policy"]
    cache.policy = policy
    cache._lru = policy.__class__ is LRUPolicy
    cache._promote = True if cache._lru else policy.touch_promotes


# --------------------------------------------------------------------- #
# Warmup capture and trace skipping
# --------------------------------------------------------------------- #
def capture_warmup(system: ServerSystem, trace, warmup_accesses: int):
    """Run ``trace``'s warmup interval on ``system`` and capture at the boundary.

    ``trace`` may be anything :meth:`ServerSystem.run` accepts, including a
    feedback-driven :class:`~repro.trace.source.TraceSource` -- the pull
    loop assembles the same :class:`~repro.trace.source.FeedbackSample`\\ s
    the run loop would, so the production trajectory is identical to an
    uninterrupted run.  Sources exposing ``checkpoint_state`` have their
    production state (controller values and the unserviced tail of the
    split chunk) captured into :attr:`SystemSnapshot.source_state`.

    Returns ``(snapshot, leftover, source)``: the captured warm state, the
    unconsumed tail of the chunk the boundary fell inside (``None`` when the
    boundary coincided with a chunk edge), and the live trace source
    positioned after that chunk.  The caller measures by running
    ``repro.trace.source.resume_source(leftover, source)`` with
    ``warmup_accesses=0`` -- chunk boundaries are architecturally invisible,
    so this is bit-identical to the uninterrupted warmup-split run.

    The warmup interval itself runs unrecorded (``_run_chunk`` directly):
    telemetry of a warmup that later queries skip entirely would be
    misleading, and telemetry never affects results.
    """
    from repro.trace.source import as_trace_source

    if warmup_accesses <= 0:
        raise ValueError("capture_warmup requires a positive warmup interval")
    system._refresh_agent_hooks()
    source = as_trace_source(trace)
    wants_feedback = bool(getattr(source, "wants_feedback", False))
    processed = 0
    while True:
        feedback = system.feedback_sample(processed) if wants_feedback else None
        chunk = source.next_chunk(feedback)
        if chunk is None:
            raise ValueError(
                "trace shorter than the requested warmup interval")
        n = len(chunk)
        if not n:
            continue
        if processed + n >= warmup_accesses:
            split = warmup_accesses - processed
            system._run_chunk(chunk if split == n else chunk[:split])
            system.begin_measurement()
            leftover = chunk[split:] if split < n else None
            checkpoint = getattr(source, "checkpoint_state", None)
            source_state = (checkpoint(leftover=leftover)
                            if checkpoint is not None else None)
            snapshot = capture(system, processed=warmup_accesses,
                               source_state=source_state)
            return snapshot, leftover, source
        system._run_chunk(chunk)
        processed += n


def skip_accesses(chunks, n: int) -> Iterator:
    """Yield ``chunks`` with the first ``n`` accesses dropped.

    Restore paths position a full trace stream at a snapshot's boundary
    without simulating the skipped prefix.  Chunk-size invariance makes the
    re-chunked tail equivalent to the original split.
    """
    remaining = n
    for chunk in as_chunk_iterator(chunks):
        length = len(chunk)
        if remaining >= length:
            remaining -= length
            continue
        if remaining:
            yield chunk[remaining:]
            remaining = 0
        else:
            yield chunk


# --------------------------------------------------------------------- #
# Persistence (.npz codec)
# --------------------------------------------------------------------- #
def save_snapshot(snapshot: SystemSnapshot, path) -> None:
    """Write ``snapshot`` to ``path`` as an ``.npz`` container.

    The big cache planes are native members (zero-copy on the write side,
    regular arrays on load); the metadata rides as a JSON byte member and
    the pickled state as a raw byte member, so ``allow_pickle`` stays off
    for the container itself.
    """
    meta = {
        "format_version": snapshot.format_version,
        "package_version": snapshot.package_version,
        "workload_name": snapshot.workload_name,
        "cache_engine": snapshot.cache_engine,
        "dram_engine": snapshot.dram_engine,
        "processed": snapshot.processed,
        "config_key": snapshot.config_key,
    }
    members = {
        "meta": np.frombuffer(json.dumps(meta, sort_keys=True).encode("utf-8"),
                              dtype=np.uint8),
        "state": np.frombuffer(snapshot.state_blob, dtype=np.uint8),
    }
    if snapshot.source_state is not None:
        # Optional member: absent for open-loop snapshots, ignored by older
        # readers (load only consults meta/state/array_* plus this name).
        members["source"] = np.frombuffer(
            pickle.dumps(snapshot.source_state,
                         protocol=pickle.HIGHEST_PROTOCOL),
            dtype=np.uint8)
    for name, array in snapshot.arrays.items():
        members[_ARRAY_PREFIX + name] = array
    # An explicit file object stops np.savez appending a second ``.npz``
    # suffix to staging paths.
    with open(path, "wb") as handle:
        np.savez(handle, **members)


def load_snapshot(path) -> SystemSnapshot:
    """Read a :func:`save_snapshot` container back into a :class:`SystemSnapshot`.

    Raises ``OSError`` for missing/unreadable files and ``ValueError`` for
    corrupt or incomplete containers (truncated zip, missing members, bad
    metadata) -- callers can rely on those two types covering every failure
    mode instead of leaking ``zipfile``/``json`` internals.
    """
    try:
        # np.load raises ValueError too (e.g. misdetecting arbitrary bytes as
        # pickled data), so the version check lives outside the try block to
        # keep its message un-wrapped.
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(bytes(data["meta"]).decode("utf-8"))
            arrays = {name[len(_ARRAY_PREFIX):]: data[name]
                      for name in data.files if name.startswith(_ARRAY_PREFIX)}
            blob = data["state"].tobytes()
            source_state = (pickle.loads(data["source"].tobytes())
                            if "source" in data.files else None)
    except (ValueError, zipfile.BadZipFile, KeyError,
            json.JSONDecodeError) as exc:
        raise ValueError(f"corrupt snapshot container {path}: {exc}")
    version = meta.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise ValueError(
            f"snapshot format v{version} is not supported by this "
            f"build (expected v{SNAPSHOT_FORMAT_VERSION})")
    return SystemSnapshot(
        format_version=version,
        package_version=meta["package_version"],
        workload_name=meta["workload_name"],
        cache_engine=meta["cache_engine"],
        dram_engine=meta["dram_engine"],
        processed=int(meta["processed"]),
        config_key=meta["config_key"],
        arrays=arrays,
        state_blob=blob,
        source_state=source_state,
    )
