"""Analytic performance model.

The paper's headline performance result (Figure 10) comes from one channel:
bulk transfers fetch blocks before the cores demand them, so demand misses
that would have stalled the pipeline become LLC hits.  Conversely,
indiscriminate streaming (Full-region) saturates memory bandwidth and demand
latency explodes.  Both effects are captured with a simple, transparent
model:

* every committed instruction costs ``base_cpi`` cycles;
* every load-triggered demand LLC miss exposes the measured DRAM latency
  (plus LLC/NOC latency) divided by the core's memory-level parallelism;
* store misses and writebacks never stall (store buffers / background
  writebacks);
* covered misses (blocks found in the LLC because a prefetch or bulk read
  brought them in early) cost only the LLC hit latency;
* the whole run can never finish faster than the busiest memory channel:
  aggregate execution time is bounded below by the DRAM elapsed time, which
  is what punishes bandwidth oversaturation.

Absolute IPC values from this model are not meaningful; ratios between
configurations running the same trace are, and those are what Figure 10
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.params import SystemParams


@dataclass
class TimingSummary:
    """Cycle accounting of one simulated run."""

    instructions: float
    base_cycles: float
    stall_cycles: float
    dram_bound_cycles: float
    cycles: float
    throughput_ipc: float
    elapsed_seconds: float

    @property
    def stall_fraction(self) -> float:
        """Fraction of execution time spent in exposed memory stalls."""
        if self.cycles <= 0:
            return 0.0
        return self.stall_cycles / self.cycles


class TimingModel:
    """Turns event counts and measured DRAM latencies into cycles and IPC."""

    def __init__(self, params: Optional[SystemParams] = None) -> None:
        self.params = params if params is not None else SystemParams()

    def summarize(self, *, instructions: float, load_demand_misses: float,
                  covered_loads: float, llc_load_hits: float,
                  average_dram_latency_bus_cycles: float,
                  dram_elapsed_bus_cycles: float) -> TimingSummary:
        """Compute the cycle count and throughput of one run.

        ``average_dram_latency_bus_cycles`` and ``dram_elapsed_bus_cycles``
        come from the memory system model; everything else is an event count
        from the system model.
        """
        params = self.params
        core = params.core
        num_cores = params.num_cores
        to_core_cycles = params.core_cycles_per_dram_cycle

        base_cycles = instructions * core.base_cpi / num_cores

        miss_penalty = (
            params.noc_latency_cycles
            + params.llc.hit_latency_cycles
            + average_dram_latency_bus_cycles * to_core_cycles
        )
        covered_penalty = params.noc_latency_cycles + params.llc.hit_latency_cycles
        hit_penalty = params.llc.hit_latency_cycles

        stall_cycles = (
            load_demand_misses * miss_penalty / core.memory_level_parallelism
            + covered_loads * covered_penalty / core.memory_level_parallelism
            + llc_load_hits * hit_penalty / core.memory_level_parallelism
        ) / num_cores

        core_cycles = base_cycles + stall_cycles
        dram_bound_cycles = dram_elapsed_bus_cycles * to_core_cycles
        cycles = max(core_cycles, dram_bound_cycles)

        throughput = instructions / cycles if cycles > 0 else 0.0
        elapsed_seconds = cycles * core.cycle_time_ns * 1e-9
        return TimingSummary(
            instructions=instructions,
            base_cycles=base_cycles,
            stall_cycles=stall_cycles,
            dram_bound_cycles=dram_bound_cycles,
            cycles=cycles,
            throughput_ipc=throughput,
            elapsed_seconds=elapsed_seconds,
        )
