"""Trace-interpreter selection.

Two interchangeable interpreters drive the flat-engine hot path and produce
bit-identical simulation results (the parity suites assert this across the
workload x config matrix, the scenario catalog and randomized property
traces):

``vector`` (default)
    The two-pass batch interpreter (:meth:`ServerSystem._run_chunk_vector`):
    pass 1 resolves an entire chunk's L1 probes with NumPy (per-core set
    decode, tag compare across ways) and classifies each access as a pure L1
    hit or an *escape* (miss / eviction / agent-visible event); pass 2
    applies all hit side effects in bulk and replays only the escape rows
    through the scalar path, segmenting the chunk at escapes so every vector
    segment is provably independent.

``scalar``
    The fused row loop (:meth:`ServerSystem._run_chunk_flat`), kept as the
    reference baseline the same way the ``dict`` cache engine and ``object``
    DRAM engine are.

Select globally with the ``REPRO_INTERP`` environment variable or per run
via the ``interp`` argument of :class:`repro.sim.system.ServerSystem` /
:func:`repro.sim.runner.run_trace`.  The vector interpreter needs the flat
cache arrays; under the ``dict`` cache engine the selection transparently
falls back to ``scalar`` (mirroring the flat DRAM engine's fallback for
ablation-only schedulers).
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = [
    "DEFAULT_INTERP",
    "INTERPS",
    "INTERP_ENV_VAR",
    "interp_name",
    "resolve_interp",
]

#: Environment variable consulted when no explicit interpreter is requested.
INTERP_ENV_VAR = "REPRO_INTERP"

#: Interpreter used when neither the caller nor the environment picks one.
DEFAULT_INTERP = "vector"

INTERPS = ("vector", "scalar")


def interp_name(override: Optional[str] = None) -> str:
    """Resolve the requested interpreter name.

    Priority: explicit ``override`` argument, then the ``REPRO_INTERP``
    environment variable, then :data:`DEFAULT_INTERP`.  Unknown names fail
    loudly so configuration typos cannot silently fall back.
    """
    name = override
    if name is None:
        name = os.environ.get(INTERP_ENV_VAR, "").strip().lower() or DEFAULT_INTERP
    name = name.lower()
    if name not in INTERPS:
        raise ValueError(
            f"unknown interpreter {name!r}; known interpreters: "
            f"{', '.join(INTERPS)}")
    return name


def resolve_interp(override: Optional[str] = None,
                   cache_engine: str = "flat") -> str:
    """Effective interpreter for a run: the request, constrained by the engine.

    The vector interpreter reads and writes the flat cache arrays directly,
    so it only exists under the ``flat`` cache engine; any other engine runs
    the scalar row loop regardless of the request (results are bit-identical
    either way -- only the speed differs).
    """
    name = interp_name(override)
    if name == "vector" and cache_engine != "flat":
        return "scalar"
    return name
