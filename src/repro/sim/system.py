"""The full simulated server: cores' L1s, shared LLC, agents, NOC and DRAM.

:class:`ServerSystem` is the trace interpreter.  For every processor access
it walks the hierarchy the same way hardware would:

1. the access probes the issuing core's L1; hits stop there, dirty L1 victims
   are forwarded to the LLC;
2. an L1 miss becomes a demand LLC request (carrying the PC when the
   configuration requires it); every attached agent (stride, SMS, VWQ, BuMP,
   Full-region, density profiler) observes the access;
3. an LLC miss becomes a demand DRAM read and the block is filled; every
   agent observes the miss and may request additional fetches (prefetches /
   bulk reads), which are filled into the LLC as *prefetched* blocks;
4. LLC evictions are observed by the agents (BuMP terminates region tracking
   here and may stream bulk writebacks); dirty victims become demand DRAM
   writes; eager/bulk writebacks clean resident dirty blocks and become DRAM
   writes attributed to the mechanism that generated them;
5. every DRAM transfer is timestamped with the core-time at which it was
   generated and handed to the FR-FCFS memory controllers.

At the end of a run the system assembles a :class:`SimulationResult` with the
traffic decomposition, row-buffer statistics, timing summary and energy
breakdown the experiments consume.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.engine import cache_engine_name
from repro.cache.flat import FLAG_DIRTY, FLAG_PREFETCHED, FLAG_USED
from repro.cache.l1 import L1DataCache
from repro.cache.llc import LastLevelCache
from repro.cache.set_assoc import EvictedLine
from repro.common.addressing import BLOCK_BITS, block_address
from repro.common.request import (
    Access,
    DRAMRequest,
    DRAMRequestKind,
    LLCRequest,
    LLCRequestKind,
)
from repro.common.stats import StatGroup
from repro.core.bump import BuMPPredictor
from repro.core.fullregion import FullRegionStreamer
from repro.dram.address_mapping import make_block_interleaving, make_region_interleaving
from repro.dram.engine import resolve_dram_engine
from repro.dram.flat import FlatMemorySystem
from repro.dram.system import MemorySystem
from repro.energy.accounting import ServerEnergyModel
from repro.noc.crossbar import Crossbar, MessageType
from repro.prefetch.sms import SpatialMemoryStreaming
from repro.prefetch.stride import StridePrefetcher
from repro.sim.config import SystemConfig
from repro.sim.interp import resolve_interp
from repro.sim.results import SimulationResult
from repro.sim.timing import TimingModel
from repro.telemetry.recorder import resolve_telemetry
from repro.trace.buffer import TraceBuffer
from repro.workloads.density import RegionDensityProfiler


#: System counters hoisted to plain instance ints on the flat-engine hot path
#: and folded into the ``counters`` StatGroup once per chunk.
_HOT_COUNTERS = (
    ("_h_l1_writebacks", "l1_writebacks"),
    ("_h_llc_hits", "llc_hits"),
    ("_h_llc_load_hits", "llc_load_hits"),
    ("_h_covered_reads", "covered_reads"),
    ("_h_covered_loads", "covered_loads"),
    ("_h_llc_misses", "llc_misses"),
    ("_h_demand_reads", "demand_reads"),
    ("_h_store_triggered_reads", "store_triggered_reads"),
    ("_h_load_triggered_reads", "load_triggered_reads"),
    ("_h_load_demand_misses", "load_demand_misses"),
    ("_h_llc_evictions", "llc_evictions"),
    ("_h_demand_writebacks", "demand_writebacks"),
    ("_h_overfetch_evictions", "overfetch_evictions"),
    ("_h_bulk_reads", "bulk_reads"),
    ("_h_prefetch_reads", "prefetch_reads"),
    ("_h_bulk_writebacks", "bulk_writebacks"),
    ("_h_eager_writebacks", "eager_writebacks"),
)

#: DRAM request-kind codes, hoisted for the buffered flat-engine issue path.
_DEMAND_READ_CODE = DRAMRequestKind.DEMAND_READ.code
_DEMAND_WRITEBACK_CODE = DRAMRequestKind.DEMAND_WRITEBACK.code

#: Upper bound on the per-instruction-count cycle-increment memo
#: (``_cycle_increment_cache``).  Synthetic workloads draw from a handful of
#: distinct instruction counts, but fuzzed or externally captured traces can
#: carry thousands; past this bound the memo evicts its oldest entry, so it
#: can never grow with trace length.  Eviction is insertion-ordered (hits
#: vastly outnumber inserts and the cached values are config-fixed
#: arithmetic, so per-hit recency tracking would cost more than the memo
#: saves).
_CYCLE_CACHE_LIMIT = 1024

#: When more than one access in this many classifies as an escape, the
#: vector interpreter replays the sub-batch through the scalar flat loop:
#: nearly every row would take the scalar escape path anyway, and the
#: per-segment bookkeeping of the two-pass walk cannot pay for itself.
#: Results are bit-identical on both sides of the threshold -- it only
#: decides which (identical-result) loop runs.
_VECTOR_ESCAPE_FALLBACK_DENOMINATOR = 8

#: Classification granularity of the vector interpreter.  Chunks are walked
#: in sub-batches so each classifies against near-current cache state: a
#: cold or phase-change window densifies escapes only inside its own
#: sub-batches (which fall back to the scalar loop) instead of poisoning
#: the classification of a whole 64K-row chunk.  Large enough that the
#: fixed cost of the ~20 NumPy calls per sub-batch amortizes to noise.
_VECTOR_SUBBATCH = 8192


def _source_intensity(source) -> float:
    """Current admission intensity a source reports (1.0 when open-loop)."""
    return float(getattr(source, "current_intensity", 1.0))


class ServerSystem:
    """One configured instance of the simulated 16-core server."""

    def __init__(self, config: SystemConfig, workload_name: str = "workload",
                 cache_engine: Optional[str] = None,
                 dram_engine: Optional[str] = None,
                 interp: Optional[str] = None,
                 telemetry=None) -> None:
        self.config = config
        self.workload_name = workload_name
        #: Observability recorder (``None`` when telemetry is off -- the
        #: run loop tests this once per chunk and otherwise executes the
        #: exact pre-telemetry code path).  Resolution: explicit argument >
        #: ``REPRO_TELEMETRY`` environment variable > off.
        self.telemetry = resolve_telemetry(telemetry)
        params = config.system

        self.cache_engine = cache_engine_name(cache_engine)
        self._flat_engine = self.cache_engine == "flat"
        self.l1s = [L1DataCache(params.l1d, core, engine=self.cache_engine)
                    for core in range(params.num_cores)]
        self.llc = LastLevelCache(params.llc, engine=self.cache_engine)
        #: Raw flat cache arrays, indexed by core (fused-loop fast path).
        self._l1_arrays = [l1._cache for l1 in self.l1s] if self._flat_engine else None
        self._llc_array = self.llc._cache if self._flat_engine else None
        if self._flat_engine:
            # Per-core L1 state unbundled for the fused row loop: bound dict
            # probes and the raw stamp/flag buffers, indexed by core.  The
            # underlying objects live for the system's lifetime, so the bound
            # references never go stale.  L1s are always LRU (L1DataCache
            # never takes a policy), which the inlined promote relies on.
            arrays = self._l1_arrays
            # Pool the per-core L1 arrays into one [core, set, way]
            # allocation (each cache adopts its row as a view) so the vector
            # interpreter can probe and stamp every core's L1 in single
            # NumPy operations.  Scalar paths are oblivious: their
            # memoryview aliases are rebuilt over the same storage.
            geometry = arrays[0]
            pool_shape = (len(arrays), geometry.num_sets, geometry.ways)
            self._l1_pool_tags = np.empty(pool_shape, dtype=np.int64)
            self._l1_pool_flags = np.empty(pool_shape, dtype=np.uint8)
            self._l1_pool_pcs = np.empty(pool_shape, dtype=np.int64)
            self._l1_pool_cores = np.empty(pool_shape, dtype=np.int32)
            self._l1_pool_stamps = np.empty(pool_shape, dtype=np.int64)
            self._l1_pool_ticks = np.empty(pool_shape[:2], dtype=np.int64)
            for core, cache in enumerate(arrays):
                cache.share_storage(
                    self._l1_pool_tags[core], self._l1_pool_flags[core],
                    self._l1_pool_pcs[core], self._l1_pool_cores[core],
                    self._l1_pool_stamps[core], self._l1_pool_ticks[core])
            # Global flat views (gslot = (core * sets + set) * ways + way).
            self._l1_tags_gflat = self._l1_pool_tags.reshape(-1)
            self._l1_flags_gflat = self._l1_pool_flags.reshape(-1)
            self._l1_stamps_gflat = self._l1_pool_stamps.reshape(-1)
            self._l1_ticks_gflat = self._l1_pool_ticks.reshape(-1)
            # Global set/slot keys fit uint16 for every realistic L1 pool;
            # NumPy's stable sort is an O(n) radix sort for 16-bit integers
            # (~12x the 64-bit merge sort on sub-batch-sized keys), so the
            # bulk stamp path sorts narrow keys whenever it can.
            self._l1_small_keys = self._l1_tags_gflat.size <= 0xFFFF
            self._l1_num_sets = geometry.num_sets
            self._l1_ways = geometry.ways
            self._l1_slot_get = [cache._slot_of.get for cache in arrays]
            self._l1_ticks = [cache._tick for cache in arrays]
            self._l1_stamps = [cache._stamps_mv for cache in arrays]
            self._l1_flags = [cache._flags_mv for cache in arrays]
            self._l1_set_mask = geometry._set_mask
        # Effective interpreter: the two-pass vector interpreter reads the
        # flat cache arrays directly, so a non-flat cache engine transparently
        # falls back to the scalar row loop (results are bit-identical either
        # way).  Resolution: explicit argument > ``REPRO_INTERP`` > vector.
        self.interp = resolve_interp(interp, self.cache_engine)
        self._vector_interp = self.interp == "vector"
        self._carries_pc = config.carries_pc
        self.noc = Crossbar(num_cores=params.num_cores)
        #: instruction count -> core-cycle increment (config-fixed arithmetic).
        self._cycle_increment_cache = {}
        for attr, _key in _HOT_COUNTERS:
            setattr(self, attr, 0)

        if config.interleaving == "block":
            mapping = make_block_interleaving(params.dram_org,
                                              params.dram_org.row_buffer_bytes)
        elif config.interleaving == "region":
            mapping = make_region_interleaving(params.dram_org,
                                               params.dram_org.row_buffer_bytes)
        else:
            raise ValueError(f"unknown interleaving scheme {config.interleaving!r}")
        # Effective DRAM engine: the flat engine covers the paper's space
        # (FR-FCFS, packable organisations) and transparently falls back to
        # the object engine outside it; results are bit-identical either way.
        self.dram_engine = resolve_dram_engine(
            dram_engine, scheduler=config.scheduler, org=params.dram_org)
        self._flat_dram = self.dram_engine == "flat"
        if self._flat_dram:
            self.memory = FlatMemorySystem(
                params.dram_timing, params.dram_org, mapping,
                config.page_policy,
                window=params.dram_org.transaction_queue_entries,
            )
        else:
            self.memory = MemorySystem(
                params.dram_timing, params.dram_org, mapping, config.page_policy,
                window=params.dram_org.transaction_queue_entries,
                scheduler=config.scheduler,
                fast_scheduler=self._flat_engine,
                # Every measurement folds into scalar counters at serve time;
                # retaining one request object per transfer would grow memory
                # linearly with trace length and break the streaming paths'
                # bounded-footprint promise.
                record_completed=False,
            )
        # Staged per-chunk DRAM transfers (flat engine): the fast paths
        # append (block, kind code, arrival) scalars here and ``_flush_dram``
        # hands the memory system the whole batch at chunk boundaries --
        # no DRAMRequest object is ever built on the hot path.
        self._dram_blocks: list = []
        self._dram_kinds: list = []
        self._dram_arrivals: list = []

        self.agents: List[LLCAgent] = []
        self.bump: Optional[BuMPPredictor] = None
        self.profiler: Optional[RegionDensityProfiler] = None
        self._build_agents()
        self._refresh_agent_hooks()

        self.counters = StatGroup("system")
        if config.timing_model == "analytic":
            self.timing = TimingModel(params)
        elif config.timing_model == "interval":
            from repro.cpu.interval import IntervalTimingModel

            self.timing = IntervalTimingModel(params)
        else:
            raise ValueError(f"unknown timing model {config.timing_model!r}")
        self.energy_model = ServerEnergyModel(params)
        self._core_cycle = 0.0
        #: Bus-cycle arrival timestamp of the access being processed
        #: (maintained by the fused loop for the staged DRAM issue sites).
        self._arrival_bus = 0.0
        self._instructions = 0.0
        self._bus_ratio = params.core_cycles_per_dram_cycle
        self._measurement_start_core_cycle = 0.0
        self._measurement_start_bus_cycle = 0.0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build_agents(self) -> None:
        config = self.config
        if config.use_stride:
            self.agents.append(StridePrefetcher())
        if config.use_nextline:
            from repro.prefetch.nextline import NextLinePrefetcher

            self.agents.append(NextLinePrefetcher())
        if config.use_stealth:
            from repro.prefetch.stealth import StealthPrefetcher

            self.agents.append(StealthPrefetcher())
        if config.use_sms:
            self.agents.append(SpatialMemoryStreaming())
        if config.use_vwq:
            from repro.writeback.vwq import VirtualWriteQueue

            self.agents.append(VirtualWriteQueue())
        if config.use_eager_writeback:
            from repro.writeback.eager import EagerWriteback

            self.agents.append(EagerWriteback())
        if config.use_bump:
            self.bump = BuMPPredictor(config.bump)
            self.agents.append(self.bump)
        if config.use_full_region:
            self.agents.append(FullRegionStreamer(config.bump))
        if config.attach_profiler or config.ideal_row_locality:
            self.profiler = RegionDensityProfiler(config.bump.region_size_bytes)
            self.agents.append(self.profiler)

    def _refresh_agent_hooks(self) -> None:
        """Partition agents by which notification hooks they actually override.

        The fast path then skips agents whose hook is the base-class no-op
        (e.g. the stride prefetcher neither observes misses nor evictions),
        avoiding a call and an empty-:class:`AgentActions` allocation per
        event.  Recomputed at the start of every run so agents attached after
        construction (``run_trace``'s ``extra_agents``) are picked up.
        """
        agents = self.agents
        self._access_agents = [
            agent for agent in agents
            if type(agent).on_access is not LLCAgent.on_access
        ]
        self._miss_agents = [
            agent for agent in agents
            if type(agent).on_miss is not LLCAgent.on_miss
        ]
        self._eviction_agents = [
            agent for agent in agents
            if type(agent).on_eviction is not LLCAgent.on_eviction
        ]

    # ------------------------------------------------------------------ #
    # Trace interpretation
    # ------------------------------------------------------------------ #
    def run(self, trace, warmup_accesses: int = 0) -> SimulationResult:
        """Run a trace to completion and return the collected measurements.

        ``trace`` may be a :class:`repro.trace.buffer.TraceBuffer`, an
        iterable of :class:`TraceBuffer` chunks (the streaming pipeline), a
        sequence/iterator of boxed :class:`Access` records (the legacy
        shape), a :class:`repro.scenario.spec.Scenario` (compiled to a chunk
        stream on the fly, at the compiler's default seed), or any
        :class:`repro.trace.source.TraceSource`.  Every shape is interpreted
        through the same columnar row loop, so the result is identical
        regardless of how the trace arrives.

        Production is pull-based: the system fully services chunk *k* before
        requesting chunk *k+1*, and sources declaring ``wants_feedback``
        receive a :class:`~repro.trace.source.FeedbackSample` (assembled by
        :meth:`feedback_sample`) before every pull -- the hook closed-loop
        traffic shapers react through.  Open-loop sources are pulled with
        ``feedback=None`` and pay nothing for the feedback path.

        ``warmup_accesses`` accesses are simulated first to warm the caches,
        the predictor tables and the DRAM row buffers (mirroring the paper's
        SMARTS-style warmed-checkpoint methodology); their events are then
        discarded and only the remainder of the trace is measured.
        """
        # Imported lazily: repro.scenario sits above repro.sim in the layer
        # order, so a module-level import would be circular.  By the time a
        # Scenario instance reaches us its package is necessarily loaded.
        from repro.scenario.compiler import iter_scenario_chunks
        from repro.scenario.spec import Scenario
        from repro.trace.source import as_trace_source

        if isinstance(trace, Scenario):
            trace = iter_scenario_chunks(trace)
        source = as_trace_source(trace)
        wants_feedback = bool(getattr(source, "wants_feedback", False))
        recorder = self.telemetry
        if recorder is not None:
            recorder.on_run_start(self, self.workload_name)
        timing = recorder is not None and recorder.wants_spans
        clock = time.perf_counter
        self._refresh_agent_hooks()
        processed = 0
        measuring = False
        while True:
            feedback = self.feedback_sample(processed) if wants_feedback else None
            if timing:
                tick = clock()
                chunk = source.next_chunk(feedback)
                recorder.add_stage("chunk_generation", clock() - tick)
            else:
                chunk = source.next_chunk(feedback)
            if chunk is None:
                break
            if not len(chunk):
                continue
            if warmup_accesses and not measuring:
                split = warmup_accesses - processed
                if len(chunk) >= split:
                    # The measurement boundary falls in (or at the end of)
                    # this chunk: warm up on the head window, then measure
                    # whatever remains.
                    chunk = self._cross_warmup_boundary(
                        chunk, split, recorder, timing, clock, source)
                    processed += split
                    measuring = True
                    if chunk is None:
                        continue
            if timing:
                tick = clock()
                self._run_chunk(chunk)
                recorder.add_stage("chunk_service", clock() - tick)
            else:
                self._run_chunk(chunk)
            processed += len(chunk)
            if recorder is not None:
                recorder.on_chunk(self, intensity=_source_intensity(source))
        if warmup_accesses and processed < warmup_accesses:
            raise ValueError("trace shorter than the requested warmup interval")
        if recorder is None:
            self._flush_dram()
            self.memory.drain()
            return self._collect_results()
        with recorder.span("dram_drain"):
            self._flush_dram()
            self.memory.drain()
        with recorder.span("result_assembly"):
            result = self._collect_results()
        recorder.on_run_end(self)
        return result

    def _cross_warmup_boundary(self, chunk, split: int, recorder, timing: bool,
                               clock, source) -> Optional[TraceBuffer]:
        """Service a chunk that crosses the warmup boundary at ``split``.

        Runs the warmup head, discards the warmup statistics
        (:meth:`begin_measurement`) and returns the yet-to-be-serviced tail
        (``None`` when the boundary coincides with the chunk end).  The one
        shared implementation of the split for every run mode -- telemetry
        hooks fire only when a recorder is attached, and the simulation call
        sequence is identical either way.
        """
        head = chunk if split == len(chunk) else chunk[:split]
        if timing:
            tick = clock()
            self._run_chunk(head)
            recorder.add_stage("chunk_service", clock() - tick)
        else:
            self._run_chunk(head)
        if recorder is not None:
            recorder.on_chunk(self, intensity=_source_intensity(source))
        self.begin_measurement()
        if recorder is not None:
            recorder.on_measurement_start(self)
        return None if split == len(chunk) else chunk[split:]

    def feedback_sample(self, accesses: int) -> "FeedbackSample":
        """Assemble the closed-loop feedback observation at a chunk boundary.

        All values are cumulative over the run (memory counters reset at the
        warmup boundary's :meth:`begin_measurement`); controllers difference
        against their own last-boundary sample.  Safe to call at any chunk
        boundary: the hot-counter fold is idempotent and every staged DRAM
        transfer has already been flushed by :meth:`_run_chunk`.
        """
        from repro.trace.source import FeedbackSample

        self._flush_hot_counters()
        memory = self.memory
        stats = memory.aggregate_stats()
        pending = getattr(memory, "pending_count", None)
        if pending is not None:
            queue_depth = int(pending())
        else:
            queue_depth = sum(len(c.queue) for c in memory.controllers)
        return FeedbackSample(
            accesses=int(accesses),
            core_cycle=float(self._core_cycle),
            demand_reads=int(stats["demand_reads"]),
            read_latency_cycles=float(stats["demand_read_latency_cycles"]),
            queue_depth=queue_depth,
            llc_misses=int(self.counters["llc_misses"]),
        )

    def _run_chunk(self, chunk: TraceBuffer) -> None:
        """Interpret one columnar chunk.

        Zero-length chunks (phase-boundary splices, empty streams) return
        immediately -- before this guard they paid the full five-column
        decode.  Under the flat cache engine the chunk runs through the
        selected interpreter: the two-pass vector interpreter
        (:meth:`_run_chunk_vector`, the default) or the fused scalar row
        loop (:meth:`_run_chunk_flat`, the reference baseline).  Under the
        dict engine every access walks the original per-access call chain,
        preserving it as the benchmark baseline.
        """
        if not len(chunk):
            return
        if self._flat_engine:
            if self._vector_interp:
                self._run_chunk_vector(chunk)
            else:
                self._run_chunk_flat(chunk)
            self._flush_dram()
            return
        cores, pcs, addresses, stores, instructions = chunk.columns_as_lists()
        step = self._step_fields
        for i in range(len(cores)):
            step(cores[i], pcs[i], addresses[i], stores[i], instructions[i])
        self._flush_dram()

    def _flush_dram(self) -> None:
        """Hand the staged per-chunk DRAM transfers to the memory system.

        Under the flat DRAM engine every ``_issue_dram`` site appends plain
        (block, kind code, arrival cycle) scalars to the staging lists; this
        flush routes the whole batch through
        :meth:`repro.dram.flat.FlatMemorySystem.enqueue_block_batch` at chunk
        boundaries.  FR-FCFS only ever inspects the oldest window of each
        channel's queue and the batch preserves per-channel arrival order,
        so serving at batch boundaries is cycle-identical to the object
        engine's per-request enqueue (see :mod:`repro.dram.flat`).  No-op
        for the object engine (the staging lists stay empty).
        """
        blocks = self._dram_blocks
        if blocks:
            self.memory.enqueue_block_batch(blocks, self._dram_kinds,
                                            self._dram_arrivals)
            self._dram_blocks = []
            self._dram_kinds = []
            self._dram_arrivals = []

    def _run_chunk_flat(self, chunk: TraceBuffer) -> None:
        """Fused row loop over the flat-array caches.

        Block addresses and L1 set indices are decoded for the whole chunk in
        two vector ops; the L1-hit case -- the common one for server
        workloads -- is then fully inlined: one dict probe, one stamp write
        and (for stores) one flag write, with no method call and no
        allocation.  ``accesses``/``l1_hits`` live in loop locals, the
        per-access cycle accumulation runs on a local float (same add
        sequence as the scalar path, so results stay bit-identical), and
        everything is flushed into the StatGroups once per chunk.  The
        architectural state the slow path reads (``_core_cycle``) is synced
        before every L1 miss, so DRAM arrival timestamps are unchanged.

        The inlined probe mirrors ``FlatSetAssociativeCache.demand_access``
        under two L1 invariants: replacement is LRU (touch always promotes)
        and resident lines always have the used bit set (the L1 never fills
        prefetched blocks), so the prefetch-hit branch cannot fire.
        """
        shifted = (chunk.address >> np.uint64(BLOCK_BITS)).astype(np.int64)
        blocks = (shifted << BLOCK_BITS).tolist()
        l1_sets = (shifted & self._l1_set_mask).tolist()
        cores = chunk.core.tolist()
        pcs = chunk.pc.tolist()
        stores = chunk.is_store.tolist()
        instructions = chunk.instructions.tolist()
        n = len(cores)
        config = self.config
        # Per-access cycle increments are memoized by instruction count; each
        # entry is computed as (instructions * cpi) / cores -- the exact
        # operation order of _step_fields -- because folding it into one
        # precomputed factor rounds differently for non-power-of-two core
        # counts and would break bit-identity with the dict engine.
        arrival_cpi = config.arrival_cpi
        num_cores_divisor = config.system.num_cores
        cycle_of = self._cycle_increment_cache
        dirty_flag = FLAG_DIRTY
        l1_arrays = self._l1_arrays
        slot_get = self._l1_slot_get
        ticks = self._l1_ticks
        stamps = self._l1_stamps
        flags = self._l1_flags
        demand = self._llc_demand_fast
        num_cores = len(l1_arrays)
        hits_by_core = [0] * num_cores
        misses_by_core = [0] * num_cores
        core_cycle = self._core_cycle
        bus_ratio = self._bus_ratio
        # Integer column sum: exact regardless of order, so summing it
        # vectorized matches the scalar path's per-access accumulation.
        instruction_total = int(chunk.instructions.sum(dtype=np.int64))
        for core, pc, block, set_index, is_store, instructions_i in zip(
                cores, pcs, blocks, l1_sets, stores, instructions):
            delta = cycle_of.get(instructions_i)
            if delta is None:
                delta = cycle_of[instructions_i] = (
                    instructions_i * arrival_cpi / num_cores_divisor)
                if len(cycle_of) > _CYCLE_CACHE_LIMIT:
                    del cycle_of[next(iter(cycle_of))]
            core_cycle += delta
            slot = slot_get[core](block)
            if slot is not None:
                # L1 hit: promote to MRU, set the dirty bit on stores.
                tick_list = ticks[core]
                tick = tick_list[set_index] + 1
                tick_list[set_index] = tick
                stamps[core][slot] = tick
                if is_store:
                    flags_mv = flags[core]
                    line_flags = flags_mv[slot]
                    if not line_flags & dirty_flag:
                        flags_mv[slot] = line_flags | dirty_flag
                hits_by_core[core] += 1
                continue
            # L1 miss: allocate (write-allocate), forward a dirty victim,
            # then take the LLC demand path.
            misses_by_core[core] += 1
            self._core_cycle = core_cycle
            # One divide per miss: every DRAM transfer generated while this
            # access is processed arrives at the same bus timestamp (the
            # object engine divides per transfer with an unchanged
            # numerator, so the values are identical).
            self._arrival_bus = core_cycle / bus_ratio
            victim = l1_arrays[core].fill_l1(block, is_store, pc, core)
            if victim is not None:
                self._l1_writeback_fast(victim)
            demand(core, pc, block, is_store)
        self._core_cycle = core_cycle
        self._instructions += instruction_total
        l1_hits = 0
        for core in range(num_cores):
            hits = hits_by_core[core]
            if hits:
                l1_hits += hits
                l1_arrays[core]._p_hits += hits
            if misses_by_core[core]:
                l1_arrays[core]._p_misses += misses_by_core[core]
        counters = self.counters
        counters.inc("accesses", n)
        if l1_hits:
            counters.inc("l1_hits", l1_hits)
        self._flush_hot_counters()

    def _run_chunk_vector(self, chunk: TraceBuffer) -> None:
        """Two-pass vectorized interpreter over the flat-array caches.

        The chunk's per-row cycle increments are accumulated once up front
        (``np.cumsum`` folds strictly left to right, so ``cycles[i + 1]`` is
        bit-identical to the scalar loop's running ``core_cycle += delta``
        after row i; the element-wise ``(instructions * cpi) / cores`` keeps
        the scalar path's operation order -- see :meth:`_run_chunk_flat` on
        why it must not be folded into one factor).  The rows then run in
        sub-batches of :data:`_VECTOR_SUBBATCH` through
        :meth:`_run_subbatch_vector`, each classifying against the cache
        state its predecessors left behind.

        **Pass 1 (classify).**  A sub-batch's L1 probes run as single NumPy
        operations across *all* cores at once (the per-core L1 arrays are
        rows of one pooled ``[core, set, way]`` allocation -- see
        ``FlatSetAssociativeCache.share_storage``): gather each row's set
        from its core's tag plane, compare across ways, reduce to a hit
        mask.  Each access is either a *pure L1 hit* -- it touches no state
        outside its core's stamp/flag arrays and no agent can observe it --
        or an *escape*: an L1 miss and everything a miss can trigger
        (evictions, writebacks, LLC/DRAM traffic, agent hooks).

        **Pass 2 (apply).**  Hit side effects are applied in bulk
        (:meth:`_apply_l1_hits_bulk` reproduces the exact LRU tick
        arithmetic of the scalar loop) and only the escape rows replay
        through the scalar path, with ``_core_cycle`` / ``_arrival_bus``
        synced at each escape from the precomputed cycle array, so DRAM
        arrival timestamps are bit-identical to the scalar loop's running
        float.

        **Segmentation at escapes.**  Each sub-batch is split at its escape
        rows and every vector segment is applied *before* the escape that
        follows it, so the tick/stamp interleaving of vector hits and
        scalar escapes follows row order exactly.  Classification stays
        valid inside a segment because only escapes mutate L1 residency;
        after an escape *evicts* a line, later classified hits are
        re-verified against the tag state and any stale row -- its block
        was the victim -- is re-routed through the scalar path, which
        re-probes true state and is therefore always correct.

        Batch boundaries (chunk or sub-batch) are architecturally
        invisible: no interconnect, cache or DRAM decision ever depends on
        where a batch starts, so any partition of the trace replays to the
        same state -- the same argument that made the DRAM engine's batched
        intake exact.
        """
        n = len(chunk)
        if not n:
            return
        shifted = (chunk.address >> np.uint64(BLOCK_BITS)).astype(np.int64)
        blocks_arr = shifted << BLOCK_BITS
        sets_arr = shifted & self._l1_set_mask
        cores_arr = chunk.core.astype(np.int64)
        config = self.config
        deltas = chunk.instructions.astype(np.float64)
        deltas *= config.arrival_cpi
        deltas /= config.system.num_cores
        cycles = np.empty(n + 1, dtype=np.float64)
        cycles[0] = self._core_cycle
        cycles[1:] = deltas
        np.cumsum(cycles, out=cycles)
        pos = 0
        while pos < n:
            end = min(pos + _VECTOR_SUBBATCH, n)
            self._run_subbatch_vector(chunk, pos, end, blocks_arr, sets_arr,
                                      cores_arr, cycles)
            pos = end

    def _run_subbatch_vector(self, chunk: TraceBuffer, start: int, end: int,
                             blocks_arr: np.ndarray, sets_arr: np.ndarray,
                             cores_arr: np.ndarray,
                             cycles: np.ndarray) -> None:
        """Classify and apply rows [start, end) of ``chunk`` (vector pass).

        Escape-dense sub-batches (more than one row in
        ``_VECTOR_ESCAPE_FALLBACK_DENOMINATOR`` classifying as an escape --
        cold caches, capacity-thrashing phases) replay through
        :meth:`_run_chunk_flat` on a zero-copy slice: nearly every row
        would take the scalar path anyway.  Both interpreters are
        bit-identical, so the threshold only decides which loop runs.

        Accounting mirrors the scalar loop's chunk tail exactly, folded
        once per sub-batch: the per-core hit/miss tallies land in the same
        pending cache counters, ``accesses``/``l1_hits`` take the same
        ``inc`` calls (integer-valued, so the finer-grained folding is
        exact), and ``_core_cycle`` picks up the precomputed post-row value
        it would have reached row by row.
        """
        n = end - start
        blocks = blocks_arr[start:end]
        sets = sets_arr[start:end]
        cores = cores_arr[start:end]
        num_sets = self._l1_num_sets
        ways = self._l1_ways
        gsets = cores * num_sets + sets
        # Pass 1: probe all cores at once against the pooled tag planes.
        # The way loop runs backwards over flat 1D gathers so the first
        # matching way wins, exactly like a scalar left-to-right scan
        # (ways is tiny; per-way 1D gathers beat a 2D fancy index by ~3x).
        tags_gflat = self._l1_tags_gflat
        base = gsets * ways
        hit_way = np.zeros(n, dtype=np.int64)
        hit_mask = np.zeros(n, dtype=bool)
        for way in range(ways - 1, -1, -1):
            way_match = tags_gflat[base + way] == blocks
            hit_way[way_match] = way
            hit_mask |= way_match
        escape_rows = np.flatnonzero(~hit_mask)
        num_escapes = len(escape_rows)
        if num_escapes * _VECTOR_ESCAPE_FALLBACK_DENOMINATOR > n:
            self._run_chunk_flat(chunk[start:end])
            return

        gslots = base + hit_way
        if self._l1_small_keys:
            gsets = gsets.astype(np.uint16)
            gslots = gslots.astype(np.uint16)
        stores = chunk.is_store[start:end]

        num_cores = len(self._l1_arrays)
        hits_by_core = [0] * num_cores
        misses_by_core = [0] * num_cores
        if not num_escapes:
            # Fast path: the whole sub-batch is one escape-free segment.
            self._apply_l1_hits_bulk(gsets, gslots, stores)
            per_core = np.bincount(cores)
            for core in np.flatnonzero(per_core).tolist():
                hits_by_core[core] += int(per_core[core])
        else:
            # Escape-row columns decoded to Python scalars in one bulk pass
            # each (the scalar path needs native ints for the dict probes
            # and block arithmetic; per-row NumPy unboxing would dominate).
            esc_list = escape_rows.tolist()
            esc_cores = cores[escape_rows].tolist()
            esc_pcs = chunk.pc[start:end][escape_rows].tolist()
            esc_blocks = blocks[escape_rows].tolist()
            esc_sets = sets[escape_rows].tolist()
            esc_stores = stores[escape_rows].tolist()
            esc_cycles = cycles[escape_rows + (start + 1)].tolist()

            state = (gsets, gslots, blocks, sets, cores, stores,
                     chunk.pc[start:end], cycles, start,
                     hits_by_core, misses_by_core)
            # Pass 2: bulk-apply each escape-free segment, replay each
            # escape.  ``stale`` records whether any escape evicted an L1
            # line since classification; segments after that point
            # re-verify their rows.
            stale = False
            pos = 0
            for k in range(num_escapes):
                row = esc_list[k]
                if row > pos:
                    stale = self._apply_hit_segment(pos, row, stale, state)
                stale |= self._interpret_escape_row(
                    esc_cores[k], esc_pcs[k], esc_blocks[k], esc_sets[k],
                    esc_stores[k], esc_cycles[k], hits_by_core,
                    misses_by_core)
                pos = row + 1
            if pos < n:
                self._apply_hit_segment(pos, n, stale, state)

        self._core_cycle = float(cycles[end])
        self._instructions += int(
            chunk.instructions[start:end].sum(dtype=np.int64))
        l1_arrays = self._l1_arrays
        l1_hits = 0
        for core in range(num_cores):
            hits = hits_by_core[core]
            if hits:
                l1_hits += hits
                l1_arrays[core]._p_hits += hits
            if misses_by_core[core]:
                l1_arrays[core]._p_misses += misses_by_core[core]
        counters = self.counters
        counters.inc("accesses", n)
        if l1_hits:
            counters.inc("l1_hits", l1_hits)
        self._flush_hot_counters()

    def _apply_hit_segment(self, start: int, end: int, stale: bool,
                           state: tuple) -> bool:
        """Bulk-apply one escape-free run of classified hits (rows [start, end)).

        While no escape has evicted an L1 line since classification
        (``stale`` false) the whole segment is provably valid and applies
        in one bulk call.  Afterwards the segment's rows are re-verified
        first (one gather-compare against the pooled tags; rows of
        untouched cores trivially pass): the segment is split at the first
        stale row, everything before it applies in bulk, the stale row
        replays through the scalar path (which may itself evict), and the
        remainder re-verifies -- preserving exact row order.  Returns the
        updated staleness.
        """
        (gsets, gslots, blocks, sets, cores, stores, pcs, cycles, offset,
         hits_by_core, misses_by_core) = state
        tags_gflat = self._l1_tags_gflat
        while True:
            split = -1
            if stale:
                bad = np.flatnonzero(
                    tags_gflat[gslots[start:end]] != blocks[start:end])
                if len(bad):
                    split = start + int(bad[0])
            stop = end if split < 0 else split
            if stop > start:
                # Slices, not index arrays: the common (non-stale, whole
                # segment) case must not pay for fancy-index copies.
                self._apply_l1_hits_bulk(gsets[start:stop],
                                         gslots[start:stop],
                                         stores[start:stop])
                per_core = np.bincount(cores[start:stop])
                for core in np.flatnonzero(per_core).tolist():
                    hits_by_core[core] += int(per_core[core])
            if split < 0:
                return stale
            row = split
            stale |= self._interpret_escape_row(
                int(cores[row]), int(pcs[row]), int(blocks[row]),
                int(sets[row]), bool(stores[row]),
                float(cycles[offset + row + 1]),
                hits_by_core, misses_by_core)
            start = row + 1
            if start >= end:
                return stale

    def _apply_l1_hits_bulk(self, gsets: np.ndarray, gslots: np.ndarray,
                            stores: np.ndarray) -> None:
        """Apply the hit side effects of one chronological segment in bulk.

        Mirrors the inlined scalar hit path across all cores at once on the
        pooled arrays (global set/slot index space): every hit bumps its
        set's tick and stamps the hit slot with it; store hits OR the dirty
        flag in.  Tick arithmetic is exact -- the j-th hit of a set
        receives ``tick0 + j`` and a slot's final stamp is the tick of its
        last chronological touch -- so the post-segment stamp state is
        bit-identical to replaying the segment row by row.  Promotion is
        unconditional, exactly like the scalar loop (the L1 is always LRU).
        """
        order = np.argsort(gsets, kind="stable")
        sorted_gsets = gsets[order]
        sorted_slots = gslots[order]
        # Group boundaries of the sorted keys via adjacent-difference (the
        # generic np.unique would sort again).
        m = len(sorted_gsets)
        change = np.empty(m, dtype=bool)
        change[0] = True
        np.not_equal(sorted_gsets[1:], sorted_gsets[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        uniq = sorted_gsets[starts]
        counts = np.diff(starts, append=m)
        ticks_gflat = self._l1_ticks_gflat
        tick0 = ticks_gflat[uniq]
        # Stamp of the j-th touch (0-based) of group g: tick0[g] + j + 1.
        values = np.repeat(tick0 - starts + 1, counts)
        values += np.arange(m, dtype=np.int64)
        ticks_gflat[uniq] = tick0 + counts
        # A slot's final stamp is its *last* chronological touch.  The
        # stable set sort preserves chronology inside each set (hence
        # inside each slot); a second stable sort by slot then makes the
        # last row of every slot group the last touch.
        slot_order = np.argsort(sorted_slots, kind="stable")
        final_slots = sorted_slots[slot_order]
        last = np.empty(m, dtype=bool)
        last[:-1] = final_slots[1:] != final_slots[:-1]
        last[-1] = True
        # Select-then-gather: only the winning rows' values are fetched.
        sel = slot_order[last]
        self._l1_stamps_gflat[final_slots[last]] = values[sel]
        if stores.any():
            # Duplicate slots are harmless: every occurrence ORs in the
            # same bit, so the gather/or/scatter of fancy |= is exact.
            self._l1_flags_gflat[gslots[stores]] |= FLAG_DIRTY

    def _interpret_escape_row(self, core: int, pc: int, block: int,
                              set_index: int, is_store: bool, cycle: float,
                              hits_by_core: list,
                              misses_by_core: list) -> bool:
        """Replay one escape row through the scalar path (vector interpreter).

        Identical, statement for statement, to one iteration of the fused
        scalar loop: the probe reads *true* current state, so a classified
        escape that an earlier fill turned into a hit resolves correctly
        (and, like any scalar-loop hit, does not sync ``_core_cycle``).  On
        a miss the precomputed post-row cycle is synced before any DRAM
        transfer can be generated.  Returns True when the fill evicted an
        L1 line (later classified hits must then be re-verified).
        """
        slot = self._l1_slot_get[core](block)
        if slot is not None:
            tick_list = self._l1_ticks[core]
            tick = tick_list[set_index] + 1
            tick_list[set_index] = tick
            self._l1_stamps[core][slot] = tick
            if is_store:
                flags_mv = self._l1_flags[core]
                line_flags = flags_mv[slot]
                if not line_flags & FLAG_DIRTY:
                    flags_mv[slot] = line_flags | FLAG_DIRTY
            hits_by_core[core] += 1
            return False
        misses_by_core[core] += 1
        self._core_cycle = cycle
        # One divide per miss: every DRAM transfer generated while this
        # access is processed arrives at the same bus timestamp (see the
        # scalar loop).
        self._arrival_bus = cycle / self._bus_ratio
        cache = self._l1_arrays[core]
        evictions_before = cache._p_evictions
        victim = cache.fill_l1(block, is_store, pc, core)
        evicted = cache._p_evictions != evictions_before
        if victim is not None:
            self._l1_writeback_fast(victim)
        self._llc_demand_fast(core, pc, block, is_store)
        return evicted

    def _flush_hot_counters(self) -> None:
        """Fold the hoisted per-chunk counter ints into the StatGroup."""
        counters = self.counters
        for attr, key in _HOT_COUNTERS:
            value = getattr(self, attr)
            if value:
                counters.inc(key, value)
                setattr(self, attr, 0)

    def begin_measurement(self) -> None:
        """Discard warmup statistics while keeping all architectural state."""
        self._flush_dram()
        self.memory.drain()
        self._flush_hot_counters()
        self.counters.reset()
        self.noc.reset()
        self.llc.stats.reset()
        self.llc.array_stats.reset()
        for controller in self.memory.controllers:
            controller.reset_counters()
        for agent in self.agents:
            stats = getattr(agent, "stats", None)
            if stats is not None:
                stats.reset()
        self._instructions = 0.0
        self._measurement_start_core_cycle = self._core_cycle
        self._measurement_start_bus_cycle = self._core_cycle / self._bus_ratio

    def _step(self, access: Access) -> None:
        """Interpret one boxed access (compatibility shim over the row path)."""
        self._step_fields(access.core, access.pc, access.address,
                          access.is_store, access.instructions)

    def _step_fields(self, core: int, pc: int, address: int, is_store: bool,
                     instructions: int) -> None:
        counters = self.counters
        counters.inc("accesses")
        self._instructions += instructions
        self._core_cycle += (
            instructions * self.config.arrival_cpi / self.config.system.num_cores
        )

        l1 = self.l1s[core]
        result = l1.access(address, is_store, pc)
        for victim in result.writebacks:
            self._l1_writeback(victim)
        if result.hit:
            counters.inc("l1_hits")
            return

        self._llc_demand_access(core, pc, address, is_store)

    # ------------------------------------------------------------------ #
    # LLC demand path
    # ------------------------------------------------------------------ #
    def _llc_demand_access(self, core: int, pc: int, address: int,
                           is_store: bool) -> None:
        config = self.config
        counters = self.counters
        block = block_address(address)

        self.noc.send(
            MessageType.REQUEST_WITH_PC if config.carries_pc else MessageType.REQUEST
        )

        resident = self.llc.probe(block, count_traffic=False)
        covered = resident is not None and resident.prefetched and not resident.used

        line = self.llc.access(block, is_write=is_store)
        hit = line is not None

        kind = LLCRequestKind.DEMAND_WRITE if is_store else LLCRequestKind.DEMAND_READ
        request = LLCRequest(core=core, pc=pc, block_address=block,
                             kind=kind, is_store=is_store)

        if self.agents:
            self.noc.send(MessageType.PREDICTOR_NOTIFY)
        actions = AgentActions()
        for agent in self.agents:
            actions.merge(agent.on_access(request, hit))

        if hit:
            counters.inc("llc_hits")
            if not is_store:
                counters.inc("llc_load_hits")
            if covered:
                counters.inc("covered_reads")
                if not is_store:
                    counters.inc("covered_loads")
            self.noc.send(MessageType.DATA)
        else:
            counters.inc("llc_misses")
            for agent in self.agents:
                actions.merge(agent.on_miss(request))
            self._issue_dram(block, DRAMRequestKind.DEMAND_READ, core, pc)
            counters.inc("demand_reads")
            if is_store:
                counters.inc("store_triggered_reads")
            else:
                counters.inc("load_triggered_reads")
                counters.inc("load_demand_misses")
            victim = self.llc.fill(block, dirty=is_store, pc=pc, core=core)
            self.noc.send(MessageType.DATA)
            if victim is not None:
                self._handle_llc_eviction(victim)

        self._apply_actions(actions, core, pc)

    def _llc_demand_fast(self, core: int, pc: int, block: int,
                         is_store: bool) -> None:
        """LLC demand path for the fused flat-engine loop.

        Same event sequence as :meth:`_llc_demand_access`, with the probe and
        access fused into one call, NOC counters bumped as plain attributes,
        system counters hoisted to instance ints, and agent action bundles
        merged only when an agent actually requested traffic.
        """
        noc = self.noc
        if self._carries_pc:
            noc.n_request_with_pc += 1
        else:
            noc.n_request += 1

        # Fused LLC probe + access, wrapper inlined (one call into the flat
        # array; the wrapper's hot counters are plain attribute bumps).
        llc = self.llc
        llc._p_traffic_ops += 1
        prior = self._llc_array.demand_access(block, is_store)
        hit = prior >= 0

        actions = None
        request = None
        if self.agents:
            noc.n_predictor_notify += 1
            kind = LLCRequestKind.DEMAND_WRITE if is_store else LLCRequestKind.DEMAND_READ
            request = LLCRequest(core, pc, block, kind, is_store)
            for agent in self._access_agents:
                bundle = agent.on_access(request, hit)
                if bundle.fetch_blocks or bundle.writeback_blocks:
                    if actions is None:
                        actions = bundle
                    else:
                        actions.merge(bundle)

        if hit:
            llc._p_demand_hits += 1
            self._h_llc_hits += 1
            if not is_store:
                self._h_llc_load_hits += 1
            if prior & (FLAG_PREFETCHED | FLAG_USED) == FLAG_PREFETCHED:
                self._h_covered_reads += 1
                if not is_store:
                    self._h_covered_loads += 1
            noc.n_data += 1
        else:
            llc._p_demand_misses += 1
            self._h_llc_misses += 1
            for agent in self._miss_agents:
                bundle = agent.on_miss(request)
                if bundle.fetch_blocks or bundle.writeback_blocks:
                    if actions is None:
                        actions = bundle
                    else:
                        actions.merge(bundle)
            if self._flat_dram:
                # Inlined _issue_dram: stage the demand read for the batched
                # flush without a call frame or a DRAMRequest allocation.
                self._dram_blocks.append(block)
                self._dram_kinds.append(_DEMAND_READ_CODE)
                self._dram_arrivals.append(self._arrival_bus)
            else:
                self._issue_dram(block, DRAMRequestKind.DEMAND_READ, core, pc)
            self._h_demand_reads += 1
            if is_store:
                self._h_store_triggered_reads += 1
            else:
                self._h_load_triggered_reads += 1
                self._h_load_demand_misses += 1
            victim = llc.fill(block, dirty=is_store, pc=pc, core=core)
            noc.n_data += 1
            if victim is not None:
                self._handle_llc_eviction_fast(victim)

        if actions is not None:
            self._apply_actions_fast(actions, core, pc)

    def _l1_writeback(self, victim) -> None:
        """Forward a dirty L1 victim to the LLC."""
        self.counters.inc("l1_writebacks")
        self.noc.send(MessageType.DATA)
        evicted = self.llc.write_from_l1(victim.block_address, victim.pc, victim.core)
        if evicted is not None:
            self._handle_llc_eviction(evicted)

    def _l1_writeback_fast(self, victim) -> None:
        """Forward a dirty L1 victim to the LLC (flat-engine fast path)."""
        self._h_l1_writebacks += 1
        self.noc.n_data += 1
        evicted = self.llc.write_from_l1(victim.block_address, victim.pc, victim.core)
        if evicted is not None:
            self._handle_llc_eviction_fast(evicted)

    # ------------------------------------------------------------------ #
    # Eviction handling and agent-generated traffic
    # ------------------------------------------------------------------ #
    def _handle_llc_eviction(self, victim: EvictedLine) -> None:
        counters = self.counters
        counters.inc("llc_evictions")

        actions = AgentActions()
        for agent in self.agents:
            actions.merge(agent.on_eviction(victim))

        if victim.dirty:
            counters.inc("demand_writebacks")
            self._issue_dram(victim.block_address, DRAMRequestKind.DEMAND_WRITEBACK,
                             victim.core, victim.pc)
            self.noc.send(MessageType.DATA)
        if victim.prefetched and not victim.used:
            counters.inc("overfetch_evictions")

        self._apply_actions(actions, victim.core, victim.pc)

    def _handle_llc_eviction_fast(self, victim: EvictedLine) -> None:
        """Eviction handling with hoisted counters (flat-engine fast path)."""
        self._h_llc_evictions += 1

        actions = None
        for agent in self._eviction_agents:
            bundle = agent.on_eviction(victim)
            if bundle.fetch_blocks or bundle.writeback_blocks:
                if actions is None:
                    actions = bundle
                else:
                    actions.merge(bundle)

        if victim.dirty:
            self._h_demand_writebacks += 1
            if self._flat_dram:
                self._dram_blocks.append(victim.block_address)
                self._dram_kinds.append(_DEMAND_WRITEBACK_CODE)
                self._dram_arrivals.append(self._arrival_bus)
            else:
                self._issue_dram(victim.block_address,
                                 DRAMRequestKind.DEMAND_WRITEBACK,
                                 victim.core, victim.pc)
            self.noc.n_data += 1
        if victim.prefetched and not victim.used:
            self._h_overfetch_evictions += 1

        if actions is not None:
            self._apply_actions_fast(actions, victim.core, victim.pc)

    def _apply_actions(self, actions: AgentActions, core: int, pc: int) -> None:
        if actions.empty:
            return
        config = self.config
        counters = self.counters

        if actions.fetch_blocks:
            bulk = config.uses_bulk_streaming
            kind = DRAMRequestKind.BULK_READ if bulk else DRAMRequestKind.PREFETCH_READ
            counter = "bulk_reads" if bulk else "prefetch_reads"
            for block in actions.fetch_blocks:
                if block < 0 or self.llc.contains(block):
                    continue
                self.noc.send(MessageType.GENERATED_REQUEST)
                self._issue_dram(block, kind, core, pc)
                counters.inc(counter)
                victim = self.llc.fill(block, prefetched=True, pc=pc, core=core)
                self.noc.send(MessageType.DATA)
                if victim is not None:
                    self._handle_llc_eviction(victim)

        if actions.writeback_blocks:
            bulk = config.uses_bulk_streaming
            kind = DRAMRequestKind.BULK_WRITEBACK if bulk else DRAMRequestKind.EAGER_WRITEBACK
            counter = "bulk_writebacks" if bulk else "eager_writebacks"
            for block in actions.writeback_blocks:
                if block < 0:
                    continue
                self.noc.send(MessageType.GENERATED_REQUEST)
                if self.llc.clean(block):
                    self._issue_dram(block, kind, core, pc)
                    counters.inc(counter)
                    self.noc.send(MessageType.DATA)

    def _apply_actions_fast(self, actions: AgentActions, core: int, pc: int) -> None:
        """Agent-generated traffic for the fused flat-engine loop.

        Same event sequence as :meth:`_apply_actions` -- this is the bulk
        datapath the paper's mechanisms live on (one iteration per streamed
        block, several per miss under BuMP/Full-region) -- with the per-block
        overhead between the layers stripped: NOC counters bumped as plain
        attributes, traffic counters hoisted to instance ints, the LLC
        residence probe bound once per bundle, and DRAM transfers staged as
        scalars for the batched flush instead of one ``_issue_dram`` call
        (frame + request object) per block.
        """
        if actions.empty:
            return
        noc = self.noc
        llc = self.llc
        array = self._llc_array
        flat_dram = self._flat_dram
        bulk = self.config.uses_bulk_streaming
        if flat_dram:
            dram_blocks = self._dram_blocks
            dram_kinds = self._dram_kinds
            dram_arrivals = self._dram_arrivals
            arrival = self._arrival_bus

        if actions.fetch_blocks:
            contains = array.contains
            array_fill = array.fill
            if bulk:
                kind = DRAMRequestKind.BULK_READ
            else:
                kind = DRAMRequestKind.PREFETCH_READ
            kind_code = kind.code
            fetched = 0
            for block in actions.fetch_blocks:
                if block < 0 or contains(block):
                    continue
                noc.n_generated_request += 1
                if flat_dram:
                    dram_blocks.append(block)
                    dram_kinds.append(kind_code)
                    dram_arrivals.append(arrival)
                else:
                    self._issue_dram(block, kind, core, pc)
                fetched += 1
                # LastLevelCache.fill inlined (one call into the flat array;
                # the wrapper's hot counters are accumulated below / here).
                victim = array_fill(block, prefetched=True, pc=pc, core=core)
                noc.n_data += 1
                if victim is not None:
                    llc._p_evictions += 1
                    if victim.dirty:
                        llc._p_dirty_evictions += 1
                    if victim.prefetched and not victim.used:
                        llc._p_overfetched_blocks += 1
                    self._handle_llc_eviction_fast(victim)
            if fetched:
                llc._p_traffic_ops += fetched
                llc._p_prefetch_fills += fetched
                if bulk:
                    self._h_bulk_reads += fetched
                else:
                    self._h_prefetch_reads += fetched

        if actions.writeback_blocks:
            array_clean = array.clean
            if bulk:
                kind = DRAMRequestKind.BULK_WRITEBACK
            else:
                kind = DRAMRequestKind.EAGER_WRITEBACK
            kind_code = kind.code
            cleaned = 0
            probed = 0
            for block in actions.writeback_blocks:
                if block < 0:
                    continue
                noc.n_generated_request += 1
                probed += 1
                # LastLevelCache.clean inlined (counters accumulated below).
                if array_clean(block):
                    if flat_dram:
                        dram_blocks.append(block)
                        dram_kinds.append(kind_code)
                        dram_arrivals.append(arrival)
                    else:
                        self._issue_dram(block, kind, core, pc)
                    cleaned += 1
                    noc.n_data += 1
            if probed:
                llc._p_traffic_ops += probed
            if cleaned:
                llc._p_eager_cleaned_blocks += cleaned
                if bulk:
                    self._h_bulk_writebacks += cleaned
                else:
                    self._h_eager_writebacks += cleaned

    def _issue_dram(self, block: int, kind: DRAMRequestKind, core: int, pc: int) -> None:
        arrival_bus_cycles = self._core_cycle / self._bus_ratio
        if self._flat_dram:
            # Stage the transfer for the next batched flush; the flat engine
            # needs no request object (core/pc only matter to consumers of
            # recorded completions, which the simulator never enables).
            self._dram_blocks.append(block)
            self._dram_kinds.append(kind.code)
            self._dram_arrivals.append(arrival_bus_cycles)
            return
        request = DRAMRequest(block_address=block, kind=kind, core=core, pc=pc,
                              arrival_cycle=arrival_bus_cycles)
        self.memory.enqueue(request)

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def _collect_results(self) -> SimulationResult:
        # Flush without draining, deliberately: the object engine enqueues at
        # issue time (serving only eager threshold bursts), so a direct
        # caller that skipped run()'s final drain observes partially-served
        # queues there.  Flushing the staged batch reproduces exactly that
        # state on the flat engine; draining here would *diverge* from it.
        self._flush_dram()
        self._flush_hot_counters()
        config = self.config
        counters = self.counters
        dram_stats = self.memory.aggregate_stats()
        result = SimulationResult(workload=self.workload_name, config_name=config.name)
        result.counters = counters
        result.dram = dram_stats
        result.llc = self._merged_llc_stats()
        result.noc = self.noc.stats
        result.predictor = self._predictor_stats()
        result.instructions = self._instructions

        density_report = self.profiler.report() if self.profiler is not None else None
        result.density = density_report

        accesses = dram_stats["accesses"]
        measured_hit_ratio = dram_stats["row_hits"] / accesses if accesses else 0.0
        if config.ideal_row_locality and density_report is not None:
            result.row_buffer_hit_ratio = density_report.ideal_row_hit_ratio
            result.effective_activations = accesses * (1.0 - result.row_buffer_hit_ratio)
        else:
            result.row_buffer_hit_ratio = measured_hit_ratio
            result.effective_activations = dram_stats["activations"]

        dram_elapsed = max(
            self.memory.elapsed_cycles - self._measurement_start_bus_cycle, 0.0
        )
        timing = self.timing.summarize(
            instructions=self._instructions,
            load_demand_misses=counters["load_demand_misses"],
            covered_loads=counters["covered_loads"],
            llc_load_hits=counters["llc_load_hits"],
            average_dram_latency_bus_cycles=self.memory.average_demand_read_service,
            dram_elapsed_bus_cycles=self.memory.bandwidth_bound_cycles,
        )
        result.cycles = timing.cycles
        result.throughput_ipc = timing.throughput_ipc
        result.elapsed_seconds = timing.elapsed_seconds

        dram_reads = dram_stats["reads"]
        dram_writes = dram_stats["writes"]
        useful = result.useful_accesses
        result.memory_energy = self.energy_model.memory_energy_per_access(
            activations=result.effective_activations,
            dram_reads=dram_reads,
            dram_writes=dram_writes,
            useful_accesses=useful,
        )

        elapsed_bus_cycles = max(dram_elapsed, 1.0)
        channel_utilization = self.memory.channel_utilization(elapsed_bus_cycles)
        result.energy = self.energy_model.breakdown(
            instructions=self._instructions,
            elapsed_seconds=timing.elapsed_seconds,
            aggregate_ipc=timing.throughput_ipc,
            activations=result.effective_activations,
            dram_reads=dram_reads,
            dram_writes=dram_writes,
            llc_reads=self.llc.stats["demand_hits"] + self.llc.stats["demand_misses"]
                       + self.llc.stats["probe_ops"],
            llc_writes=self.llc.stats["demand_fills"] + self.llc.stats["prefetch_fills"],
            noc_utilization=self.noc.utilization(timing.cycles),
            channel_utilization=channel_utilization,
            useful_accesses=useful,
        )
        return result

    def _merged_llc_stats(self) -> StatGroup:
        merged = StatGroup("llc")
        merged.merge(self.llc.stats)
        merged.merge(self.llc.array_stats)
        return merged

    def _predictor_stats(self) -> StatGroup:
        merged = StatGroup("predictor")
        for agent in self.agents:
            stats = getattr(agent, "stats", None)
            if stats is not None:
                merged.merge(stats)
        if self.bump is not None:
            merged.set("bump_storage_bits", self.bump.storage_bits())
        return merged
