"""The full simulated server: cores' L1s, shared LLC, agents, NOC and DRAM.

:class:`ServerSystem` is the trace interpreter.  For every processor access
it walks the hierarchy the same way hardware would:

1. the access probes the issuing core's L1; hits stop there, dirty L1 victims
   are forwarded to the LLC;
2. an L1 miss becomes a demand LLC request (carrying the PC when the
   configuration requires it); every attached agent (stride, SMS, VWQ, BuMP,
   Full-region, density profiler) observes the access;
3. an LLC miss becomes a demand DRAM read and the block is filled; every
   agent observes the miss and may request additional fetches (prefetches /
   bulk reads), which are filled into the LLC as *prefetched* blocks;
4. LLC evictions are observed by the agents (BuMP terminates region tracking
   here and may stream bulk writebacks); dirty victims become demand DRAM
   writes; eager/bulk writebacks clean resident dirty blocks and become DRAM
   writes attributed to the mechanism that generated them;
5. every DRAM transfer is timestamped with the core-time at which it was
   generated and handed to the FR-FCFS memory controllers.

At the end of a run the system assembles a :class:`SimulationResult` with the
traffic decomposition, row-buffer statistics, timing summary and energy
breakdown the experiments consume.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.l1 import L1DataCache
from repro.cache.llc import LastLevelCache
from repro.cache.set_assoc import EvictedLine
from repro.common.addressing import block_address
from repro.common.request import (
    Access,
    DRAMRequest,
    DRAMRequestKind,
    LLCRequest,
    LLCRequestKind,
)
from repro.common.stats import StatGroup
from repro.core.bump import BuMPPredictor
from repro.core.fullregion import FullRegionStreamer
from repro.dram.address_mapping import make_block_interleaving, make_region_interleaving
from repro.dram.system import MemorySystem
from repro.energy.accounting import ServerEnergyModel
from repro.noc.crossbar import Crossbar, MessageType
from repro.prefetch.sms import SpatialMemoryStreaming
from repro.prefetch.stride import StridePrefetcher
from repro.sim.config import SystemConfig
from repro.sim.results import SimulationResult
from repro.sim.timing import TimingModel
from repro.trace.buffer import TraceBuffer, as_chunk_iterator
from repro.workloads.density import RegionDensityProfiler


class ServerSystem:
    """One configured instance of the simulated 16-core server."""

    def __init__(self, config: SystemConfig, workload_name: str = "workload") -> None:
        self.config = config
        self.workload_name = workload_name
        params = config.system

        self.l1s = [L1DataCache(params.l1d, core) for core in range(params.num_cores)]
        self.llc = LastLevelCache(params.llc)
        self.noc = Crossbar(num_cores=params.num_cores)

        if config.interleaving == "block":
            mapping = make_block_interleaving(params.dram_org,
                                              params.dram_org.row_buffer_bytes)
        elif config.interleaving == "region":
            mapping = make_region_interleaving(params.dram_org,
                                               params.dram_org.row_buffer_bytes)
        else:
            raise ValueError(f"unknown interleaving scheme {config.interleaving!r}")
        self.memory = MemorySystem(
            params.dram_timing, params.dram_org, mapping, config.page_policy,
            window=params.dram_org.transaction_queue_entries,
            scheduler=config.scheduler,
        )

        self.agents: List[LLCAgent] = []
        self.bump: Optional[BuMPPredictor] = None
        self.profiler: Optional[RegionDensityProfiler] = None
        self._build_agents()

        self.counters = StatGroup("system")
        if config.timing_model == "analytic":
            self.timing = TimingModel(params)
        elif config.timing_model == "interval":
            from repro.cpu.interval import IntervalTimingModel

            self.timing = IntervalTimingModel(params)
        else:
            raise ValueError(f"unknown timing model {config.timing_model!r}")
        self.energy_model = ServerEnergyModel(params)
        self._core_cycle = 0.0
        self._instructions = 0.0
        self._bus_ratio = params.core_cycles_per_dram_cycle
        self._measurement_start_core_cycle = 0.0
        self._measurement_start_bus_cycle = 0.0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build_agents(self) -> None:
        config = self.config
        if config.use_stride:
            self.agents.append(StridePrefetcher())
        if config.use_nextline:
            from repro.prefetch.nextline import NextLinePrefetcher

            self.agents.append(NextLinePrefetcher())
        if config.use_stealth:
            from repro.prefetch.stealth import StealthPrefetcher

            self.agents.append(StealthPrefetcher())
        if config.use_sms:
            self.agents.append(SpatialMemoryStreaming())
        if config.use_vwq:
            from repro.writeback.vwq import VirtualWriteQueue

            self.agents.append(VirtualWriteQueue())
        if config.use_eager_writeback:
            from repro.writeback.eager import EagerWriteback

            self.agents.append(EagerWriteback())
        if config.use_bump:
            self.bump = BuMPPredictor(config.bump)
            self.agents.append(self.bump)
        if config.use_full_region:
            self.agents.append(FullRegionStreamer(config.bump))
        if config.attach_profiler or config.ideal_row_locality:
            self.profiler = RegionDensityProfiler(config.bump.region_size_bytes)
            self.agents.append(self.profiler)

    # ------------------------------------------------------------------ #
    # Trace interpretation
    # ------------------------------------------------------------------ #
    def run(self, trace, warmup_accesses: int = 0) -> SimulationResult:
        """Run a trace to completion and return the collected measurements.

        ``trace`` may be a :class:`repro.trace.buffer.TraceBuffer`, an
        iterable of :class:`TraceBuffer` chunks (the streaming pipeline), or
        a sequence/iterator of boxed :class:`Access` records (the legacy
        shape).  Every shape is interpreted through the same columnar row
        loop, so the result is identical regardless of how the trace arrives.

        ``warmup_accesses`` accesses are simulated first to warm the caches,
        the predictor tables and the DRAM row buffers (mirroring the paper's
        SMARTS-style warmed-checkpoint methodology); their events are then
        discarded and only the remainder of the trace is measured.
        """
        processed = 0
        measuring = False
        for chunk in as_chunk_iterator(trace):
            if not len(chunk):
                continue
            if warmup_accesses and not measuring:
                if processed + len(chunk) > warmup_accesses:
                    # The measurement boundary falls inside this chunk: warm
                    # up on the head window, then measure the tail.
                    split = warmup_accesses - processed
                    self._run_chunk(chunk[:split])
                    processed += split
                    self.begin_measurement()
                    measuring = True
                    chunk = chunk[split:]
                elif processed + len(chunk) == warmup_accesses:
                    self._run_chunk(chunk)
                    processed += len(chunk)
                    self.begin_measurement()
                    measuring = True
                    continue
            self._run_chunk(chunk)
            processed += len(chunk)
        if warmup_accesses and processed <= warmup_accesses:
            raise ValueError("trace shorter than the requested warmup interval")
        self.memory.drain()
        return self._collect_results()

    def _run_chunk(self, chunk: TraceBuffer) -> None:
        """Interpret one columnar chunk row by row.

        The columns are bulk-decoded to native Python scalars once per chunk,
        so the per-access work is exactly the arithmetic of the boxed-object
        path with no per-access allocation or NumPy scalar unboxing.
        """
        cores, pcs, addresses, stores, instructions = chunk.columns_as_lists()
        step = self._step_fields
        for i in range(len(cores)):
            step(cores[i], pcs[i], addresses[i], stores[i], instructions[i])

    def begin_measurement(self) -> None:
        """Discard warmup statistics while keeping all architectural state."""
        self.memory.drain()
        self.counters.reset()
        self.noc.reset()
        self.llc.stats.reset()
        self.llc.array_stats.reset()
        for controller in self.memory.controllers:
            controller.reset_counters()
        for agent in self.agents:
            stats = getattr(agent, "stats", None)
            if stats is not None:
                stats.reset()
        self._instructions = 0.0
        self._measurement_start_core_cycle = self._core_cycle
        self._measurement_start_bus_cycle = self._core_cycle / self._bus_ratio

    def _step(self, access: Access) -> None:
        """Interpret one boxed access (compatibility shim over the row path)."""
        self._step_fields(access.core, access.pc, access.address,
                          access.is_store, access.instructions)

    def _step_fields(self, core: int, pc: int, address: int, is_store: bool,
                     instructions: int) -> None:
        counters = self.counters
        counters.inc("accesses")
        self._instructions += instructions
        self._core_cycle += (
            instructions * self.config.arrival_cpi / self.config.system.num_cores
        )

        l1 = self.l1s[core]
        result = l1.access(address, is_store, pc)
        for victim in result.writebacks:
            self._l1_writeback(victim)
        if result.hit:
            counters.inc("l1_hits")
            return

        self._llc_demand_access(core, pc, address, is_store)

    # ------------------------------------------------------------------ #
    # LLC demand path
    # ------------------------------------------------------------------ #
    def _llc_demand_access(self, core: int, pc: int, address: int,
                           is_store: bool) -> None:
        config = self.config
        counters = self.counters
        block = block_address(address)

        self.noc.send(
            MessageType.REQUEST_WITH_PC if config.carries_pc else MessageType.REQUEST
        )

        resident = self.llc.probe(block, count_traffic=False)
        covered = resident is not None and resident.prefetched and not resident.used

        line = self.llc.access(block, is_write=is_store)
        hit = line is not None

        kind = LLCRequestKind.DEMAND_WRITE if is_store else LLCRequestKind.DEMAND_READ
        request = LLCRequest(core=core, pc=pc, block_address=block,
                             kind=kind, is_store=is_store)

        if self.agents:
            self.noc.send(MessageType.PREDICTOR_NOTIFY)
        actions = AgentActions()
        for agent in self.agents:
            actions.merge(agent.on_access(request, hit))

        if hit:
            counters.inc("llc_hits")
            if not is_store:
                counters.inc("llc_load_hits")
            if covered:
                counters.inc("covered_reads")
                if not is_store:
                    counters.inc("covered_loads")
            self.noc.send(MessageType.DATA)
        else:
            counters.inc("llc_misses")
            for agent in self.agents:
                actions.merge(agent.on_miss(request))
            self._issue_dram(block, DRAMRequestKind.DEMAND_READ, core, pc)
            counters.inc("demand_reads")
            if is_store:
                counters.inc("store_triggered_reads")
            else:
                counters.inc("load_triggered_reads")
                counters.inc("load_demand_misses")
            victim = self.llc.fill(block, dirty=is_store, pc=pc, core=core)
            self.noc.send(MessageType.DATA)
            if victim is not None:
                self._handle_llc_eviction(victim)

        self._apply_actions(actions, core, pc)

    def _l1_writeback(self, victim) -> None:
        """Forward a dirty L1 victim to the LLC."""
        self.counters.inc("l1_writebacks")
        self.noc.send(MessageType.DATA)
        evicted = self.llc.write_from_l1(victim.block_address, victim.pc, victim.core)
        if evicted is not None:
            self._handle_llc_eviction(evicted)

    # ------------------------------------------------------------------ #
    # Eviction handling and agent-generated traffic
    # ------------------------------------------------------------------ #
    def _handle_llc_eviction(self, victim: EvictedLine) -> None:
        counters = self.counters
        counters.inc("llc_evictions")

        actions = AgentActions()
        for agent in self.agents:
            actions.merge(agent.on_eviction(victim))

        if victim.dirty:
            counters.inc("demand_writebacks")
            self._issue_dram(victim.block_address, DRAMRequestKind.DEMAND_WRITEBACK,
                             victim.core, victim.pc)
            self.noc.send(MessageType.DATA)
        if victim.prefetched and not victim.used:
            counters.inc("overfetch_evictions")

        self._apply_actions(actions, victim.core, victim.pc)

    def _apply_actions(self, actions: AgentActions, core: int, pc: int) -> None:
        if actions.empty:
            return
        config = self.config
        counters = self.counters

        if actions.fetch_blocks:
            bulk = config.uses_bulk_streaming
            kind = DRAMRequestKind.BULK_READ if bulk else DRAMRequestKind.PREFETCH_READ
            counter = "bulk_reads" if bulk else "prefetch_reads"
            for block in actions.fetch_blocks:
                if block < 0 or self.llc.contains(block):
                    continue
                self.noc.send(MessageType.GENERATED_REQUEST)
                self._issue_dram(block, kind, core, pc)
                counters.inc(counter)
                victim = self.llc.fill(block, prefetched=True, pc=pc, core=core)
                self.noc.send(MessageType.DATA)
                if victim is not None:
                    self._handle_llc_eviction(victim)

        if actions.writeback_blocks:
            bulk = config.uses_bulk_streaming
            kind = DRAMRequestKind.BULK_WRITEBACK if bulk else DRAMRequestKind.EAGER_WRITEBACK
            counter = "bulk_writebacks" if bulk else "eager_writebacks"
            for block in actions.writeback_blocks:
                if block < 0:
                    continue
                self.noc.send(MessageType.GENERATED_REQUEST)
                if self.llc.clean(block):
                    self._issue_dram(block, kind, core, pc)
                    counters.inc(counter)
                    self.noc.send(MessageType.DATA)

    def _issue_dram(self, block: int, kind: DRAMRequestKind, core: int, pc: int) -> None:
        arrival_bus_cycles = self._core_cycle / self._bus_ratio
        request = DRAMRequest(block_address=block, kind=kind, core=core, pc=pc,
                              arrival_cycle=arrival_bus_cycles)
        self.memory.enqueue(request)

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def _collect_results(self) -> SimulationResult:
        config = self.config
        counters = self.counters
        dram_stats = self.memory.aggregate_stats()
        result = SimulationResult(workload=self.workload_name, config_name=config.name)
        result.counters = counters
        result.dram = dram_stats
        result.llc = self._merged_llc_stats()
        result.noc = self.noc.stats
        result.predictor = self._predictor_stats()
        result.instructions = self._instructions

        density_report = self.profiler.report() if self.profiler is not None else None
        result.density = density_report

        accesses = dram_stats["accesses"]
        measured_hit_ratio = dram_stats["row_hits"] / accesses if accesses else 0.0
        if config.ideal_row_locality and density_report is not None:
            result.row_buffer_hit_ratio = density_report.ideal_row_hit_ratio
            result.effective_activations = accesses * (1.0 - result.row_buffer_hit_ratio)
        else:
            result.row_buffer_hit_ratio = measured_hit_ratio
            result.effective_activations = dram_stats["activations"]

        dram_elapsed = max(
            self.memory.elapsed_cycles - self._measurement_start_bus_cycle, 0.0
        )
        timing = self.timing.summarize(
            instructions=self._instructions,
            load_demand_misses=counters["load_demand_misses"],
            covered_loads=counters["covered_loads"],
            llc_load_hits=counters["llc_load_hits"],
            average_dram_latency_bus_cycles=self.memory.average_demand_read_service,
            dram_elapsed_bus_cycles=self.memory.bandwidth_bound_cycles,
        )
        result.cycles = timing.cycles
        result.throughput_ipc = timing.throughput_ipc
        result.elapsed_seconds = timing.elapsed_seconds

        dram_reads = dram_stats["reads"]
        dram_writes = dram_stats["writes"]
        useful = result.useful_accesses
        result.memory_energy = self.energy_model.memory_energy_per_access(
            activations=result.effective_activations,
            dram_reads=dram_reads,
            dram_writes=dram_writes,
            useful_accesses=useful,
        )

        elapsed_bus_cycles = max(dram_elapsed, 1.0)
        channel_utilization = self.memory.channel_utilization(elapsed_bus_cycles)
        result.energy = self.energy_model.breakdown(
            instructions=self._instructions,
            elapsed_seconds=timing.elapsed_seconds,
            aggregate_ipc=timing.throughput_ipc,
            activations=result.effective_activations,
            dram_reads=dram_reads,
            dram_writes=dram_writes,
            llc_reads=self.llc.stats["demand_hits"] + self.llc.stats["demand_misses"]
                       + self.llc.stats["probe_ops"],
            llc_writes=self.llc.stats["demand_fills"] + self.llc.stats["prefetch_fills"],
            noc_utilization=self.noc.utilization(timing.cycles),
            channel_utilization=channel_utilization,
            useful_accesses=useful,
        )
        return result

    def _merged_llc_stats(self) -> StatGroup:
        merged = StatGroup("llc")
        merged.merge(self.llc.stats)
        merged.merge(self.llc.array_stats)
        return merged

    def _predictor_stats(self) -> StatGroup:
        merged = StatGroup("predictor")
        for agent in self.agents:
            stats = getattr(agent, "stats", None)
            if stats is not None:
                merged.merge(stats)
        if self.bump is not None:
            merged.set("bump_storage_bits", self.bump.storage_bits())
        return merged
