"""The full simulated server: cores' L1s, shared LLC, agents, NOC and DRAM.

:class:`ServerSystem` is the trace interpreter.  For every processor access
it walks the hierarchy the same way hardware would:

1. the access probes the issuing core's L1; hits stop there, dirty L1 victims
   are forwarded to the LLC;
2. an L1 miss becomes a demand LLC request (carrying the PC when the
   configuration requires it); every attached agent (stride, SMS, VWQ, BuMP,
   Full-region, density profiler) observes the access;
3. an LLC miss becomes a demand DRAM read and the block is filled; every
   agent observes the miss and may request additional fetches (prefetches /
   bulk reads), which are filled into the LLC as *prefetched* blocks;
4. LLC evictions are observed by the agents (BuMP terminates region tracking
   here and may stream bulk writebacks); dirty victims become demand DRAM
   writes; eager/bulk writebacks clean resident dirty blocks and become DRAM
   writes attributed to the mechanism that generated them;
5. every DRAM transfer is timestamped with the core-time at which it was
   generated and handed to the FR-FCFS memory controllers.

At the end of a run the system assembles a :class:`SimulationResult` with the
traffic decomposition, row-buffer statistics, timing summary and energy
breakdown the experiments consume.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.engine import cache_engine_name
from repro.cache.flat import FLAG_DIRTY, FLAG_PREFETCHED, FLAG_USED
from repro.cache.l1 import L1DataCache
from repro.cache.llc import LastLevelCache
from repro.cache.set_assoc import EvictedLine
from repro.common.addressing import BLOCK_BITS, block_address
from repro.common.request import (
    Access,
    DRAMRequest,
    DRAMRequestKind,
    LLCRequest,
    LLCRequestKind,
)
from repro.common.stats import StatGroup
from repro.core.bump import BuMPPredictor
from repro.core.fullregion import FullRegionStreamer
from repro.dram.address_mapping import make_block_interleaving, make_region_interleaving
from repro.dram.engine import resolve_dram_engine
from repro.dram.flat import FlatMemorySystem
from repro.dram.system import MemorySystem
from repro.energy.accounting import ServerEnergyModel
from repro.noc.crossbar import Crossbar, MessageType
from repro.prefetch.sms import SpatialMemoryStreaming
from repro.prefetch.stride import StridePrefetcher
from repro.sim.config import SystemConfig
from repro.sim.results import SimulationResult
from repro.sim.timing import TimingModel
from repro.telemetry.recorder import resolve_telemetry
from repro.trace.buffer import TraceBuffer, as_chunk_iterator
from repro.workloads.density import RegionDensityProfiler


#: System counters hoisted to plain instance ints on the flat-engine hot path
#: and folded into the ``counters`` StatGroup once per chunk.
_HOT_COUNTERS = (
    ("_h_l1_writebacks", "l1_writebacks"),
    ("_h_llc_hits", "llc_hits"),
    ("_h_llc_load_hits", "llc_load_hits"),
    ("_h_covered_reads", "covered_reads"),
    ("_h_covered_loads", "covered_loads"),
    ("_h_llc_misses", "llc_misses"),
    ("_h_demand_reads", "demand_reads"),
    ("_h_store_triggered_reads", "store_triggered_reads"),
    ("_h_load_triggered_reads", "load_triggered_reads"),
    ("_h_load_demand_misses", "load_demand_misses"),
    ("_h_llc_evictions", "llc_evictions"),
    ("_h_demand_writebacks", "demand_writebacks"),
    ("_h_overfetch_evictions", "overfetch_evictions"),
    ("_h_bulk_reads", "bulk_reads"),
    ("_h_prefetch_reads", "prefetch_reads"),
    ("_h_bulk_writebacks", "bulk_writebacks"),
    ("_h_eager_writebacks", "eager_writebacks"),
)

#: DRAM request-kind codes, hoisted for the buffered flat-engine issue path.
_DEMAND_READ_CODE = DRAMRequestKind.DEMAND_READ.code
_DEMAND_WRITEBACK_CODE = DRAMRequestKind.DEMAND_WRITEBACK.code


class ServerSystem:
    """One configured instance of the simulated 16-core server."""

    def __init__(self, config: SystemConfig, workload_name: str = "workload",
                 cache_engine: Optional[str] = None,
                 dram_engine: Optional[str] = None,
                 telemetry=None) -> None:
        self.config = config
        self.workload_name = workload_name
        #: Observability recorder (``None`` when telemetry is off -- the
        #: run loop tests this once per chunk and otherwise executes the
        #: exact pre-telemetry code path).  Resolution: explicit argument >
        #: ``REPRO_TELEMETRY`` environment variable > off.
        self.telemetry = resolve_telemetry(telemetry)
        params = config.system

        self.cache_engine = cache_engine_name(cache_engine)
        self._flat_engine = self.cache_engine == "flat"
        self.l1s = [L1DataCache(params.l1d, core, engine=self.cache_engine)
                    for core in range(params.num_cores)]
        self.llc = LastLevelCache(params.llc, engine=self.cache_engine)
        #: Raw flat cache arrays, indexed by core (fused-loop fast path).
        self._l1_arrays = [l1._cache for l1 in self.l1s] if self._flat_engine else None
        self._llc_array = self.llc._cache if self._flat_engine else None
        if self._flat_engine:
            # Per-core L1 state unbundled for the fused row loop: bound dict
            # probes and the raw stamp/flag buffers, indexed by core.  The
            # underlying objects live for the system's lifetime, so the bound
            # references never go stale.  L1s are always LRU (L1DataCache
            # never takes a policy), which the inlined promote relies on.
            arrays = self._l1_arrays
            self._l1_slot_get = [cache._slot_of.get for cache in arrays]
            self._l1_ticks = [cache._tick for cache in arrays]
            self._l1_stamps = [cache._stamps_mv for cache in arrays]
            self._l1_flags = [cache._flags_mv for cache in arrays]
            self._l1_set_mask = arrays[0]._set_mask
        self._carries_pc = config.carries_pc
        self.noc = Crossbar(num_cores=params.num_cores)
        #: instruction count -> core-cycle increment (config-fixed arithmetic).
        self._cycle_increment_cache = {}
        for attr, _key in _HOT_COUNTERS:
            setattr(self, attr, 0)

        if config.interleaving == "block":
            mapping = make_block_interleaving(params.dram_org,
                                              params.dram_org.row_buffer_bytes)
        elif config.interleaving == "region":
            mapping = make_region_interleaving(params.dram_org,
                                               params.dram_org.row_buffer_bytes)
        else:
            raise ValueError(f"unknown interleaving scheme {config.interleaving!r}")
        # Effective DRAM engine: the flat engine covers the paper's space
        # (FR-FCFS, packable organisations) and transparently falls back to
        # the object engine outside it; results are bit-identical either way.
        self.dram_engine = resolve_dram_engine(
            dram_engine, scheduler=config.scheduler, org=params.dram_org)
        self._flat_dram = self.dram_engine == "flat"
        if self._flat_dram:
            self.memory = FlatMemorySystem(
                params.dram_timing, params.dram_org, mapping,
                config.page_policy,
                window=params.dram_org.transaction_queue_entries,
            )
        else:
            self.memory = MemorySystem(
                params.dram_timing, params.dram_org, mapping, config.page_policy,
                window=params.dram_org.transaction_queue_entries,
                scheduler=config.scheduler,
                fast_scheduler=self._flat_engine,
                # Every measurement folds into scalar counters at serve time;
                # retaining one request object per transfer would grow memory
                # linearly with trace length and break the streaming paths'
                # bounded-footprint promise.
                record_completed=False,
            )
        # Staged per-chunk DRAM transfers (flat engine): the fast paths
        # append (block, kind code, arrival) scalars here and ``_flush_dram``
        # hands the memory system the whole batch at chunk boundaries --
        # no DRAMRequest object is ever built on the hot path.
        self._dram_blocks: list = []
        self._dram_kinds: list = []
        self._dram_arrivals: list = []

        self.agents: List[LLCAgent] = []
        self.bump: Optional[BuMPPredictor] = None
        self.profiler: Optional[RegionDensityProfiler] = None
        self._build_agents()
        self._refresh_agent_hooks()

        self.counters = StatGroup("system")
        if config.timing_model == "analytic":
            self.timing = TimingModel(params)
        elif config.timing_model == "interval":
            from repro.cpu.interval import IntervalTimingModel

            self.timing = IntervalTimingModel(params)
        else:
            raise ValueError(f"unknown timing model {config.timing_model!r}")
        self.energy_model = ServerEnergyModel(params)
        self._core_cycle = 0.0
        #: Bus-cycle arrival timestamp of the access being processed
        #: (maintained by the fused loop for the staged DRAM issue sites).
        self._arrival_bus = 0.0
        self._instructions = 0.0
        self._bus_ratio = params.core_cycles_per_dram_cycle
        self._measurement_start_core_cycle = 0.0
        self._measurement_start_bus_cycle = 0.0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def _build_agents(self) -> None:
        config = self.config
        if config.use_stride:
            self.agents.append(StridePrefetcher())
        if config.use_nextline:
            from repro.prefetch.nextline import NextLinePrefetcher

            self.agents.append(NextLinePrefetcher())
        if config.use_stealth:
            from repro.prefetch.stealth import StealthPrefetcher

            self.agents.append(StealthPrefetcher())
        if config.use_sms:
            self.agents.append(SpatialMemoryStreaming())
        if config.use_vwq:
            from repro.writeback.vwq import VirtualWriteQueue

            self.agents.append(VirtualWriteQueue())
        if config.use_eager_writeback:
            from repro.writeback.eager import EagerWriteback

            self.agents.append(EagerWriteback())
        if config.use_bump:
            self.bump = BuMPPredictor(config.bump)
            self.agents.append(self.bump)
        if config.use_full_region:
            self.agents.append(FullRegionStreamer(config.bump))
        if config.attach_profiler or config.ideal_row_locality:
            self.profiler = RegionDensityProfiler(config.bump.region_size_bytes)
            self.agents.append(self.profiler)

    def _refresh_agent_hooks(self) -> None:
        """Partition agents by which notification hooks they actually override.

        The fast path then skips agents whose hook is the base-class no-op
        (e.g. the stride prefetcher neither observes misses nor evictions),
        avoiding a call and an empty-:class:`AgentActions` allocation per
        event.  Recomputed at the start of every run so agents attached after
        construction (``run_trace``'s ``extra_agents``) are picked up.
        """
        agents = self.agents
        self._access_agents = [
            agent for agent in agents
            if type(agent).on_access is not LLCAgent.on_access
        ]
        self._miss_agents = [
            agent for agent in agents
            if type(agent).on_miss is not LLCAgent.on_miss
        ]
        self._eviction_agents = [
            agent for agent in agents
            if type(agent).on_eviction is not LLCAgent.on_eviction
        ]

    # ------------------------------------------------------------------ #
    # Trace interpretation
    # ------------------------------------------------------------------ #
    def run(self, trace, warmup_accesses: int = 0) -> SimulationResult:
        """Run a trace to completion and return the collected measurements.

        ``trace`` may be a :class:`repro.trace.buffer.TraceBuffer`, an
        iterable of :class:`TraceBuffer` chunks (the streaming pipeline), a
        sequence/iterator of boxed :class:`Access` records (the legacy
        shape), or a :class:`repro.scenario.spec.Scenario` (compiled to a
        chunk stream on the fly, at the compiler's default seed).  Every
        shape is interpreted through the same columnar row loop, so the
        result is identical regardless of how the trace arrives.

        ``warmup_accesses`` accesses are simulated first to warm the caches,
        the predictor tables and the DRAM row buffers (mirroring the paper's
        SMARTS-style warmed-checkpoint methodology); their events are then
        discarded and only the remainder of the trace is measured.
        """
        # Imported lazily: repro.scenario sits above repro.sim in the layer
        # order, so a module-level import would be circular.  By the time a
        # Scenario instance reaches us its package is necessarily loaded.
        from repro.scenario.compiler import iter_scenario_chunks
        from repro.scenario.spec import Scenario

        if isinstance(trace, Scenario):
            trace = iter_scenario_chunks(trace)
        recorder = self.telemetry
        if recorder is not None:
            recorder.on_run_start(self, self.workload_name)
            return self._run_recorded(trace, warmup_accesses, recorder)
        self._refresh_agent_hooks()
        processed = 0
        measuring = False
        for chunk in as_chunk_iterator(trace):
            if not len(chunk):
                continue
            if warmup_accesses and not measuring:
                if processed + len(chunk) > warmup_accesses:
                    # The measurement boundary falls inside this chunk: warm
                    # up on the head window, then measure the tail.
                    split = warmup_accesses - processed
                    self._run_chunk(chunk[:split])
                    processed += split
                    self.begin_measurement()
                    measuring = True
                    chunk = chunk[split:]
                elif processed + len(chunk) == warmup_accesses:
                    self._run_chunk(chunk)
                    processed += len(chunk)
                    self.begin_measurement()
                    measuring = True
                    continue
            self._run_chunk(chunk)
            processed += len(chunk)
        if warmup_accesses and processed < warmup_accesses:
            raise ValueError("trace shorter than the requested warmup interval")
        self._flush_dram()
        self.memory.drain()
        return self._collect_results()

    def _run_recorded(self, trace, warmup_accesses: int, recorder) -> SimulationResult:
        """The :meth:`run` loop with telemetry hooks at chunk boundaries.

        Mirrors :meth:`run` exactly -- same warmup split, same chunk calls,
        same drain order -- with one recorder sample per chunk boundary and
        wall-time stage accounting folded per stage (never per access).
        Bit-identity of the returned result with the unobserved loop is a
        tested invariant.
        """
        self._refresh_agent_hooks()
        processed = 0
        measuring = False
        timing = recorder.wants_spans
        clock = time.perf_counter
        source = iter(as_chunk_iterator(trace))
        while True:
            tick = clock()
            chunk = next(source, None)
            if timing:
                recorder.add_stage("chunk_generation", clock() - tick)
            if chunk is None:
                break
            if not len(chunk):
                continue
            if warmup_accesses and not measuring:
                if processed + len(chunk) > warmup_accesses:
                    split = warmup_accesses - processed
                    tick = clock()
                    self._run_chunk(chunk[:split])
                    if timing:
                        recorder.add_stage("chunk_service", clock() - tick)
                    processed += split
                    recorder.on_chunk(self)
                    self.begin_measurement()
                    recorder.on_measurement_start(self)
                    measuring = True
                    chunk = chunk[split:]
                elif processed + len(chunk) == warmup_accesses:
                    tick = clock()
                    self._run_chunk(chunk)
                    if timing:
                        recorder.add_stage("chunk_service", clock() - tick)
                    processed += len(chunk)
                    recorder.on_chunk(self)
                    self.begin_measurement()
                    recorder.on_measurement_start(self)
                    measuring = True
                    continue
            tick = clock()
            self._run_chunk(chunk)
            if timing:
                recorder.add_stage("chunk_service", clock() - tick)
            processed += len(chunk)
            recorder.on_chunk(self)
        if warmup_accesses and processed < warmup_accesses:
            raise ValueError("trace shorter than the requested warmup interval")
        with recorder.span("dram_drain"):
            self._flush_dram()
            self.memory.drain()
        with recorder.span("result_assembly"):
            result = self._collect_results()
        recorder.on_run_end(self)
        return result

    def _run_chunk(self, chunk: TraceBuffer) -> None:
        """Interpret one columnar chunk row by row.

        The columns are bulk-decoded to native Python scalars once per chunk.
        Under the flat cache engine the L1 probe is fused straight into the
        row loop (no per-access result objects, counters in locals); under
        the dict engine every access walks the original per-access call
        chain, preserving it as the benchmark baseline.
        """
        if self._flat_engine:
            self._run_chunk_flat(chunk)
            self._flush_dram()
            return
        cores, pcs, addresses, stores, instructions = chunk.columns_as_lists()
        step = self._step_fields
        for i in range(len(cores)):
            step(cores[i], pcs[i], addresses[i], stores[i], instructions[i])
        self._flush_dram()

    def _flush_dram(self) -> None:
        """Hand the staged per-chunk DRAM transfers to the memory system.

        Under the flat DRAM engine every ``_issue_dram`` site appends plain
        (block, kind code, arrival cycle) scalars to the staging lists; this
        flush routes the whole batch through
        :meth:`repro.dram.flat.FlatMemorySystem.enqueue_block_batch` at chunk
        boundaries.  FR-FCFS only ever inspects the oldest window of each
        channel's queue and the batch preserves per-channel arrival order,
        so serving at batch boundaries is cycle-identical to the object
        engine's per-request enqueue (see :mod:`repro.dram.flat`).  No-op
        for the object engine (the staging lists stay empty).
        """
        blocks = self._dram_blocks
        if blocks:
            self.memory.enqueue_block_batch(blocks, self._dram_kinds,
                                            self._dram_arrivals)
            self._dram_blocks = []
            self._dram_kinds = []
            self._dram_arrivals = []

    def _run_chunk_flat(self, chunk: TraceBuffer) -> None:
        """Fused row loop over the flat-array caches.

        Block addresses and L1 set indices are decoded for the whole chunk in
        two vector ops; the L1-hit case -- the common one for server
        workloads -- is then fully inlined: one dict probe, one stamp write
        and (for stores) one flag write, with no method call and no
        allocation.  ``accesses``/``l1_hits`` live in loop locals, the
        per-access cycle accumulation runs on a local float (same add
        sequence as the scalar path, so results stay bit-identical), and
        everything is flushed into the StatGroups once per chunk.  The
        architectural state the slow path reads (``_core_cycle``) is synced
        before every L1 miss, so DRAM arrival timestamps are unchanged.

        The inlined probe mirrors ``FlatSetAssociativeCache.demand_access``
        under two L1 invariants: replacement is LRU (touch always promotes)
        and resident lines always have the used bit set (the L1 never fills
        prefetched blocks), so the prefetch-hit branch cannot fire.
        """
        shifted = (chunk.address >> np.uint64(BLOCK_BITS)).astype(np.int64)
        blocks = (shifted << BLOCK_BITS).tolist()
        l1_sets = (shifted & self._l1_set_mask).tolist()
        cores = chunk.core.tolist()
        pcs = chunk.pc.tolist()
        stores = chunk.is_store.tolist()
        instructions = chunk.instructions.tolist()
        n = len(cores)
        config = self.config
        # Per-access cycle increments are memoized by instruction count; each
        # entry is computed as (instructions * cpi) / cores -- the exact
        # operation order of _step_fields -- because folding it into one
        # precomputed factor rounds differently for non-power-of-two core
        # counts and would break bit-identity with the dict engine.
        arrival_cpi = config.arrival_cpi
        num_cores_divisor = config.system.num_cores
        cycle_of = self._cycle_increment_cache
        dirty_flag = FLAG_DIRTY
        l1_arrays = self._l1_arrays
        slot_get = self._l1_slot_get
        ticks = self._l1_ticks
        stamps = self._l1_stamps
        flags = self._l1_flags
        demand = self._llc_demand_fast
        num_cores = len(l1_arrays)
        hits_by_core = [0] * num_cores
        misses_by_core = [0] * num_cores
        core_cycle = self._core_cycle
        bus_ratio = self._bus_ratio
        # Integer column sum: exact regardless of order, so summing it
        # vectorized matches the scalar path's per-access accumulation.
        instruction_total = int(chunk.instructions.sum(dtype=np.int64))
        for core, pc, block, set_index, is_store, instructions_i in zip(
                cores, pcs, blocks, l1_sets, stores, instructions):
            delta = cycle_of.get(instructions_i)
            if delta is None:
                delta = cycle_of[instructions_i] = (
                    instructions_i * arrival_cpi / num_cores_divisor)
            core_cycle += delta
            slot = slot_get[core](block)
            if slot is not None:
                # L1 hit: promote to MRU, set the dirty bit on stores.
                tick_list = ticks[core]
                tick = tick_list[set_index] + 1
                tick_list[set_index] = tick
                stamps[core][slot] = tick
                if is_store:
                    flags_mv = flags[core]
                    line_flags = flags_mv[slot]
                    if not line_flags & dirty_flag:
                        flags_mv[slot] = line_flags | dirty_flag
                hits_by_core[core] += 1
                continue
            # L1 miss: allocate (write-allocate), forward a dirty victim,
            # then take the LLC demand path.
            misses_by_core[core] += 1
            self._core_cycle = core_cycle
            # One divide per miss: every DRAM transfer generated while this
            # access is processed arrives at the same bus timestamp (the
            # object engine divides per transfer with an unchanged
            # numerator, so the values are identical).
            self._arrival_bus = core_cycle / bus_ratio
            victim = l1_arrays[core].fill_l1(block, is_store, pc, core)
            if victim is not None:
                self._l1_writeback_fast(victim)
            demand(core, pc, block, is_store)
        self._core_cycle = core_cycle
        self._instructions += instruction_total
        l1_hits = 0
        for core in range(num_cores):
            hits = hits_by_core[core]
            if hits:
                l1_hits += hits
                l1_arrays[core]._p_hits += hits
            if misses_by_core[core]:
                l1_arrays[core]._p_misses += misses_by_core[core]
        counters = self.counters
        counters.inc("accesses", n)
        if l1_hits:
            counters.inc("l1_hits", l1_hits)
        self._flush_hot_counters()

    def _flush_hot_counters(self) -> None:
        """Fold the hoisted per-chunk counter ints into the StatGroup."""
        counters = self.counters
        for attr, key in _HOT_COUNTERS:
            value = getattr(self, attr)
            if value:
                counters.inc(key, value)
                setattr(self, attr, 0)

    def begin_measurement(self) -> None:
        """Discard warmup statistics while keeping all architectural state."""
        self._flush_dram()
        self.memory.drain()
        self._flush_hot_counters()
        self.counters.reset()
        self.noc.reset()
        self.llc.stats.reset()
        self.llc.array_stats.reset()
        for controller in self.memory.controllers:
            controller.reset_counters()
        for agent in self.agents:
            stats = getattr(agent, "stats", None)
            if stats is not None:
                stats.reset()
        self._instructions = 0.0
        self._measurement_start_core_cycle = self._core_cycle
        self._measurement_start_bus_cycle = self._core_cycle / self._bus_ratio

    def _step(self, access: Access) -> None:
        """Interpret one boxed access (compatibility shim over the row path)."""
        self._step_fields(access.core, access.pc, access.address,
                          access.is_store, access.instructions)

    def _step_fields(self, core: int, pc: int, address: int, is_store: bool,
                     instructions: int) -> None:
        counters = self.counters
        counters.inc("accesses")
        self._instructions += instructions
        self._core_cycle += (
            instructions * self.config.arrival_cpi / self.config.system.num_cores
        )

        l1 = self.l1s[core]
        result = l1.access(address, is_store, pc)
        for victim in result.writebacks:
            self._l1_writeback(victim)
        if result.hit:
            counters.inc("l1_hits")
            return

        self._llc_demand_access(core, pc, address, is_store)

    # ------------------------------------------------------------------ #
    # LLC demand path
    # ------------------------------------------------------------------ #
    def _llc_demand_access(self, core: int, pc: int, address: int,
                           is_store: bool) -> None:
        config = self.config
        counters = self.counters
        block = block_address(address)

        self.noc.send(
            MessageType.REQUEST_WITH_PC if config.carries_pc else MessageType.REQUEST
        )

        resident = self.llc.probe(block, count_traffic=False)
        covered = resident is not None and resident.prefetched and not resident.used

        line = self.llc.access(block, is_write=is_store)
        hit = line is not None

        kind = LLCRequestKind.DEMAND_WRITE if is_store else LLCRequestKind.DEMAND_READ
        request = LLCRequest(core=core, pc=pc, block_address=block,
                             kind=kind, is_store=is_store)

        if self.agents:
            self.noc.send(MessageType.PREDICTOR_NOTIFY)
        actions = AgentActions()
        for agent in self.agents:
            actions.merge(agent.on_access(request, hit))

        if hit:
            counters.inc("llc_hits")
            if not is_store:
                counters.inc("llc_load_hits")
            if covered:
                counters.inc("covered_reads")
                if not is_store:
                    counters.inc("covered_loads")
            self.noc.send(MessageType.DATA)
        else:
            counters.inc("llc_misses")
            for agent in self.agents:
                actions.merge(agent.on_miss(request))
            self._issue_dram(block, DRAMRequestKind.DEMAND_READ, core, pc)
            counters.inc("demand_reads")
            if is_store:
                counters.inc("store_triggered_reads")
            else:
                counters.inc("load_triggered_reads")
                counters.inc("load_demand_misses")
            victim = self.llc.fill(block, dirty=is_store, pc=pc, core=core)
            self.noc.send(MessageType.DATA)
            if victim is not None:
                self._handle_llc_eviction(victim)

        self._apply_actions(actions, core, pc)

    def _llc_demand_fast(self, core: int, pc: int, block: int,
                         is_store: bool) -> None:
        """LLC demand path for the fused flat-engine loop.

        Same event sequence as :meth:`_llc_demand_access`, with the probe and
        access fused into one call, NOC counters bumped as plain attributes,
        system counters hoisted to instance ints, and agent action bundles
        merged only when an agent actually requested traffic.
        """
        noc = self.noc
        if self._carries_pc:
            noc.n_request_with_pc += 1
        else:
            noc.n_request += 1

        # Fused LLC probe + access, wrapper inlined (one call into the flat
        # array; the wrapper's hot counters are plain attribute bumps).
        llc = self.llc
        llc._p_traffic_ops += 1
        prior = self._llc_array.demand_access(block, is_store)
        hit = prior >= 0

        actions = None
        request = None
        if self.agents:
            noc.n_predictor_notify += 1
            kind = LLCRequestKind.DEMAND_WRITE if is_store else LLCRequestKind.DEMAND_READ
            request = LLCRequest(core, pc, block, kind, is_store)
            for agent in self._access_agents:
                bundle = agent.on_access(request, hit)
                if bundle.fetch_blocks or bundle.writeback_blocks:
                    if actions is None:
                        actions = bundle
                    else:
                        actions.merge(bundle)

        if hit:
            llc._p_demand_hits += 1
            self._h_llc_hits += 1
            if not is_store:
                self._h_llc_load_hits += 1
            if prior & (FLAG_PREFETCHED | FLAG_USED) == FLAG_PREFETCHED:
                self._h_covered_reads += 1
                if not is_store:
                    self._h_covered_loads += 1
            noc.n_data += 1
        else:
            llc._p_demand_misses += 1
            self._h_llc_misses += 1
            for agent in self._miss_agents:
                bundle = agent.on_miss(request)
                if bundle.fetch_blocks or bundle.writeback_blocks:
                    if actions is None:
                        actions = bundle
                    else:
                        actions.merge(bundle)
            if self._flat_dram:
                # Inlined _issue_dram: stage the demand read for the batched
                # flush without a call frame or a DRAMRequest allocation.
                self._dram_blocks.append(block)
                self._dram_kinds.append(_DEMAND_READ_CODE)
                self._dram_arrivals.append(self._arrival_bus)
            else:
                self._issue_dram(block, DRAMRequestKind.DEMAND_READ, core, pc)
            self._h_demand_reads += 1
            if is_store:
                self._h_store_triggered_reads += 1
            else:
                self._h_load_triggered_reads += 1
                self._h_load_demand_misses += 1
            victim = llc.fill(block, dirty=is_store, pc=pc, core=core)
            noc.n_data += 1
            if victim is not None:
                self._handle_llc_eviction_fast(victim)

        if actions is not None:
            self._apply_actions_fast(actions, core, pc)

    def _l1_writeback(self, victim) -> None:
        """Forward a dirty L1 victim to the LLC."""
        self.counters.inc("l1_writebacks")
        self.noc.send(MessageType.DATA)
        evicted = self.llc.write_from_l1(victim.block_address, victim.pc, victim.core)
        if evicted is not None:
            self._handle_llc_eviction(evicted)

    def _l1_writeback_fast(self, victim) -> None:
        """Forward a dirty L1 victim to the LLC (flat-engine fast path)."""
        self._h_l1_writebacks += 1
        self.noc.n_data += 1
        evicted = self.llc.write_from_l1(victim.block_address, victim.pc, victim.core)
        if evicted is not None:
            self._handle_llc_eviction_fast(evicted)

    # ------------------------------------------------------------------ #
    # Eviction handling and agent-generated traffic
    # ------------------------------------------------------------------ #
    def _handle_llc_eviction(self, victim: EvictedLine) -> None:
        counters = self.counters
        counters.inc("llc_evictions")

        actions = AgentActions()
        for agent in self.agents:
            actions.merge(agent.on_eviction(victim))

        if victim.dirty:
            counters.inc("demand_writebacks")
            self._issue_dram(victim.block_address, DRAMRequestKind.DEMAND_WRITEBACK,
                             victim.core, victim.pc)
            self.noc.send(MessageType.DATA)
        if victim.prefetched and not victim.used:
            counters.inc("overfetch_evictions")

        self._apply_actions(actions, victim.core, victim.pc)

    def _handle_llc_eviction_fast(self, victim: EvictedLine) -> None:
        """Eviction handling with hoisted counters (flat-engine fast path)."""
        self._h_llc_evictions += 1

        actions = None
        for agent in self._eviction_agents:
            bundle = agent.on_eviction(victim)
            if bundle.fetch_blocks or bundle.writeback_blocks:
                if actions is None:
                    actions = bundle
                else:
                    actions.merge(bundle)

        if victim.dirty:
            self._h_demand_writebacks += 1
            if self._flat_dram:
                self._dram_blocks.append(victim.block_address)
                self._dram_kinds.append(_DEMAND_WRITEBACK_CODE)
                self._dram_arrivals.append(self._arrival_bus)
            else:
                self._issue_dram(victim.block_address,
                                 DRAMRequestKind.DEMAND_WRITEBACK,
                                 victim.core, victim.pc)
            self.noc.n_data += 1
        if victim.prefetched and not victim.used:
            self._h_overfetch_evictions += 1

        if actions is not None:
            self._apply_actions_fast(actions, victim.core, victim.pc)

    def _apply_actions(self, actions: AgentActions, core: int, pc: int) -> None:
        if actions.empty:
            return
        config = self.config
        counters = self.counters

        if actions.fetch_blocks:
            bulk = config.uses_bulk_streaming
            kind = DRAMRequestKind.BULK_READ if bulk else DRAMRequestKind.PREFETCH_READ
            counter = "bulk_reads" if bulk else "prefetch_reads"
            for block in actions.fetch_blocks:
                if block < 0 or self.llc.contains(block):
                    continue
                self.noc.send(MessageType.GENERATED_REQUEST)
                self._issue_dram(block, kind, core, pc)
                counters.inc(counter)
                victim = self.llc.fill(block, prefetched=True, pc=pc, core=core)
                self.noc.send(MessageType.DATA)
                if victim is not None:
                    self._handle_llc_eviction(victim)

        if actions.writeback_blocks:
            bulk = config.uses_bulk_streaming
            kind = DRAMRequestKind.BULK_WRITEBACK if bulk else DRAMRequestKind.EAGER_WRITEBACK
            counter = "bulk_writebacks" if bulk else "eager_writebacks"
            for block in actions.writeback_blocks:
                if block < 0:
                    continue
                self.noc.send(MessageType.GENERATED_REQUEST)
                if self.llc.clean(block):
                    self._issue_dram(block, kind, core, pc)
                    counters.inc(counter)
                    self.noc.send(MessageType.DATA)

    def _apply_actions_fast(self, actions: AgentActions, core: int, pc: int) -> None:
        """Agent-generated traffic for the fused flat-engine loop.

        Same event sequence as :meth:`_apply_actions` -- this is the bulk
        datapath the paper's mechanisms live on (one iteration per streamed
        block, several per miss under BuMP/Full-region) -- with the per-block
        overhead between the layers stripped: NOC counters bumped as plain
        attributes, traffic counters hoisted to instance ints, the LLC
        residence probe bound once per bundle, and DRAM transfers staged as
        scalars for the batched flush instead of one ``_issue_dram`` call
        (frame + request object) per block.
        """
        if actions.empty:
            return
        noc = self.noc
        llc = self.llc
        array = self._llc_array
        flat_dram = self._flat_dram
        bulk = self.config.uses_bulk_streaming
        if flat_dram:
            dram_blocks = self._dram_blocks
            dram_kinds = self._dram_kinds
            dram_arrivals = self._dram_arrivals
            arrival = self._arrival_bus

        if actions.fetch_blocks:
            contains = array.contains
            array_fill = array.fill
            if bulk:
                kind = DRAMRequestKind.BULK_READ
            else:
                kind = DRAMRequestKind.PREFETCH_READ
            kind_code = kind.code
            fetched = 0
            for block in actions.fetch_blocks:
                if block < 0 or contains(block):
                    continue
                noc.n_generated_request += 1
                if flat_dram:
                    dram_blocks.append(block)
                    dram_kinds.append(kind_code)
                    dram_arrivals.append(arrival)
                else:
                    self._issue_dram(block, kind, core, pc)
                fetched += 1
                # LastLevelCache.fill inlined (one call into the flat array;
                # the wrapper's hot counters are accumulated below / here).
                victim = array_fill(block, prefetched=True, pc=pc, core=core)
                noc.n_data += 1
                if victim is not None:
                    llc._p_evictions += 1
                    if victim.dirty:
                        llc._p_dirty_evictions += 1
                    if victim.prefetched and not victim.used:
                        llc._p_overfetched_blocks += 1
                    self._handle_llc_eviction_fast(victim)
            if fetched:
                llc._p_traffic_ops += fetched
                llc._p_prefetch_fills += fetched
                if bulk:
                    self._h_bulk_reads += fetched
                else:
                    self._h_prefetch_reads += fetched

        if actions.writeback_blocks:
            array_clean = array.clean
            if bulk:
                kind = DRAMRequestKind.BULK_WRITEBACK
            else:
                kind = DRAMRequestKind.EAGER_WRITEBACK
            kind_code = kind.code
            cleaned = 0
            probed = 0
            for block in actions.writeback_blocks:
                if block < 0:
                    continue
                noc.n_generated_request += 1
                probed += 1
                # LastLevelCache.clean inlined (counters accumulated below).
                if array_clean(block):
                    if flat_dram:
                        dram_blocks.append(block)
                        dram_kinds.append(kind_code)
                        dram_arrivals.append(arrival)
                    else:
                        self._issue_dram(block, kind, core, pc)
                    cleaned += 1
                    noc.n_data += 1
            if probed:
                llc._p_traffic_ops += probed
            if cleaned:
                llc._p_eager_cleaned_blocks += cleaned
                if bulk:
                    self._h_bulk_writebacks += cleaned
                else:
                    self._h_eager_writebacks += cleaned

    def _issue_dram(self, block: int, kind: DRAMRequestKind, core: int, pc: int) -> None:
        arrival_bus_cycles = self._core_cycle / self._bus_ratio
        if self._flat_dram:
            # Stage the transfer for the next batched flush; the flat engine
            # needs no request object (core/pc only matter to consumers of
            # recorded completions, which the simulator never enables).
            self._dram_blocks.append(block)
            self._dram_kinds.append(kind.code)
            self._dram_arrivals.append(arrival_bus_cycles)
            return
        request = DRAMRequest(block_address=block, kind=kind, core=core, pc=pc,
                              arrival_cycle=arrival_bus_cycles)
        self.memory.enqueue(request)

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def _collect_results(self) -> SimulationResult:
        # Flush without draining, deliberately: the object engine enqueues at
        # issue time (serving only eager threshold bursts), so a direct
        # caller that skipped run()'s final drain observes partially-served
        # queues there.  Flushing the staged batch reproduces exactly that
        # state on the flat engine; draining here would *diverge* from it.
        self._flush_dram()
        self._flush_hot_counters()
        config = self.config
        counters = self.counters
        dram_stats = self.memory.aggregate_stats()
        result = SimulationResult(workload=self.workload_name, config_name=config.name)
        result.counters = counters
        result.dram = dram_stats
        result.llc = self._merged_llc_stats()
        result.noc = self.noc.stats
        result.predictor = self._predictor_stats()
        result.instructions = self._instructions

        density_report = self.profiler.report() if self.profiler is not None else None
        result.density = density_report

        accesses = dram_stats["accesses"]
        measured_hit_ratio = dram_stats["row_hits"] / accesses if accesses else 0.0
        if config.ideal_row_locality and density_report is not None:
            result.row_buffer_hit_ratio = density_report.ideal_row_hit_ratio
            result.effective_activations = accesses * (1.0 - result.row_buffer_hit_ratio)
        else:
            result.row_buffer_hit_ratio = measured_hit_ratio
            result.effective_activations = dram_stats["activations"]

        dram_elapsed = max(
            self.memory.elapsed_cycles - self._measurement_start_bus_cycle, 0.0
        )
        timing = self.timing.summarize(
            instructions=self._instructions,
            load_demand_misses=counters["load_demand_misses"],
            covered_loads=counters["covered_loads"],
            llc_load_hits=counters["llc_load_hits"],
            average_dram_latency_bus_cycles=self.memory.average_demand_read_service,
            dram_elapsed_bus_cycles=self.memory.bandwidth_bound_cycles,
        )
        result.cycles = timing.cycles
        result.throughput_ipc = timing.throughput_ipc
        result.elapsed_seconds = timing.elapsed_seconds

        dram_reads = dram_stats["reads"]
        dram_writes = dram_stats["writes"]
        useful = result.useful_accesses
        result.memory_energy = self.energy_model.memory_energy_per_access(
            activations=result.effective_activations,
            dram_reads=dram_reads,
            dram_writes=dram_writes,
            useful_accesses=useful,
        )

        elapsed_bus_cycles = max(dram_elapsed, 1.0)
        channel_utilization = self.memory.channel_utilization(elapsed_bus_cycles)
        result.energy = self.energy_model.breakdown(
            instructions=self._instructions,
            elapsed_seconds=timing.elapsed_seconds,
            aggregate_ipc=timing.throughput_ipc,
            activations=result.effective_activations,
            dram_reads=dram_reads,
            dram_writes=dram_writes,
            llc_reads=self.llc.stats["demand_hits"] + self.llc.stats["demand_misses"]
                       + self.llc.stats["probe_ops"],
            llc_writes=self.llc.stats["demand_fills"] + self.llc.stats["prefetch_fills"],
            noc_utilization=self.noc.utilization(timing.cycles),
            channel_utilization=channel_utilization,
            useful_accesses=useful,
        )
        return result

    def _merged_llc_stats(self) -> StatGroup:
        merged = StatGroup("llc")
        merged.merge(self.llc.stats)
        merged.merge(self.llc.array_stats)
        return merged

    def _predictor_stats(self) -> StatGroup:
        merged = StatGroup("predictor")
        for agent in self.agents:
            stats = getattr(agent, "stats", None)
            if stats is not None:
                merged.merge(stats)
        if self.bump is not None:
            merged.set("bump_storage_bits", self.bump.storage_bits())
        return merged
