"""System configurations evaluated in the paper.

Every bar group of Figures 2, 9, 10 and 13 corresponds to one
:class:`SystemConfig`:

=============  =============================================================
Name           Description (Section V.A)
=============  =============================================================
``base_close`` Stride prefetcher, FR-FCFS close-row policy, block-level
               address interleaving (maximises bank/channel parallelism).
``base_open``  Stride prefetcher, FR-FCFS open-row policy, region-level
               address interleaving (same memory controller as BuMP).
``sms``        Spatial Memory Streaming next to the LLC, open-row,
               region-level interleaving; requests carry the PC.
``vwq``        Stride prefetcher plus Virtual Write Queue eager writeback,
               open-row, region-level interleaving.
``sms_vwq``    SMS and VWQ combined.
``full_region`` Indiscriminate full-region streaming on every miss and every
               dirty eviction (the paper's foil).
``bump``       BuMP: RDTT + BHT + DRT generating bulk reads and writebacks,
               open-row, region-level interleaving; requests carry the PC.
``ideal``      Baseline traffic with oracle row-buffer locality: every DRAM
               access a region generates during one LLC lifetime is served
               from a single activation.
=============  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.common.params import SystemParams
from repro.core.config import BuMPConfig
from repro.dram.controller import PagePolicy


@dataclass
class SystemConfig:
    """Everything needed to build one evaluated system variant."""

    name: str
    description: str = ""
    page_policy: PagePolicy = PagePolicy.OPEN
    #: ``"block"`` (Base-close) or ``"region"`` (everything else).
    interleaving: str = "region"
    #: Transaction scheduling policy (see :mod:`repro.dram.policies`); every
    #: system of the paper uses FR-FCFS, the alternatives exist for the
    #: Section VI fairness discussion and the ablation benchmarks.
    scheduler: str = "frfcfs"
    #: Core timing model: ``"analytic"`` (fixed-MLP, the default used by every
    #: headline figure) or ``"interval"`` (ROB/MSHR-derived overlap, used by
    #: the timing-sensitivity ablation).
    timing_model: str = "analytic"
    use_stride: bool = True
    use_sms: bool = False
    use_vwq: bool = False
    use_bump: bool = False
    use_full_region: bool = False
    #: Related-work mechanisms used only by the ablation studies (Section VII):
    #: stateless next-line prefetching, address-correlated Stealth-style region
    #: prefetching, and age-based eager writeback.
    use_nextline: bool = False
    use_stealth: bool = False
    use_eager_writeback: bool = False
    #: L1-to-LLC requests carry the triggering PC (needed by SMS and BuMP).
    carries_pc: bool = False
    #: Report oracle row-buffer locality instead of the simulated controller's.
    ideal_row_locality: bool = False
    #: Attach the region-density profiler (needed for the Ideal system and for
    #: the characterisation experiments of Section III).
    attach_profiler: bool = False
    bump: BuMPConfig = field(default_factory=BuMPConfig)
    system: SystemParams = field(default_factory=SystemParams)
    #: CPI used to space request arrivals at the memory controller (kept close
    #: to the effective CPI the timing model produces so queue occupancy and
    #: row-buffer coincidence in the FR-FCFS window are realistic).
    arrival_cpi: float = 2.0

    def __post_init__(self) -> None:
        # Fail at construction, not three layers deep in ServerSystem: these
        # three fields select code paths, and a typo would otherwise surface
        # as an obscure error (or not at all) only once a simulation starts.
        if self.interleaving not in ("block", "region"):
            raise ValueError(
                f"unknown interleaving scheme {self.interleaving!r}; "
                "known schemes: block, region")
        if self.timing_model not in ("analytic", "interval"):
            raise ValueError(
                f"unknown timing model {self.timing_model!r}; "
                "known models: analytic, interval")
        if self.arrival_cpi <= 0:
            raise ValueError(
                f"arrival_cpi must be positive, got {self.arrival_cpi!r}")

    def with_overrides(self, **overrides) -> "SystemConfig":
        """Return a copy of this configuration with selected fields replaced."""
        return replace(self, **overrides)

    @property
    def uses_bulk_streaming(self) -> bool:
        """True when the configuration generates region-granular bulk transfers."""
        return self.use_bump or self.use_full_region


def base_close(**overrides) -> SystemConfig:
    """Base-close: stride prefetcher, close-row policy, block interleaving."""
    config = SystemConfig(
        name="base_close",
        description="Stride prefetcher, FR-FCFS close-row, block-level interleaving",
        page_policy=PagePolicy.CLOSE,
        interleaving="block",
    )
    return config.with_overrides(**overrides) if overrides else config


def base_open(**overrides) -> SystemConfig:
    """Base-open: stride prefetcher, open-row policy, region interleaving."""
    config = SystemConfig(
        name="base_open",
        description="Stride prefetcher, FR-FCFS open-row, region-level interleaving",
        page_policy=PagePolicy.OPEN,
        interleaving="region",
    )
    return config.with_overrides(**overrides) if overrides else config


def sms_system(**overrides) -> SystemConfig:
    """SMS: spatial footprint prefetching next to the LLC."""
    config = SystemConfig(
        name="sms",
        description="Spatial Memory Streaming at the LLC, open-row, region interleaving",
        use_stride=False,
        use_sms=True,
        carries_pc=True,
    )
    return config.with_overrides(**overrides) if overrides else config


def vwq_system(**overrides) -> SystemConfig:
    """VWQ: stride prefetcher plus eager writeback of adjacent dirty blocks."""
    config = SystemConfig(
        name="vwq",
        description="Stride prefetcher plus Virtual Write Queue eager writeback",
        use_vwq=True,
    )
    return config.with_overrides(**overrides) if overrides else config


def sms_vwq_system(**overrides) -> SystemConfig:
    """SMS and VWQ combined (Figure 13)."""
    config = SystemConfig(
        name="sms_vwq",
        description="SMS prefetching combined with VWQ eager writeback",
        use_stride=False,
        use_sms=True,
        use_vwq=True,
        carries_pc=True,
    )
    return config.with_overrides(**overrides) if overrides else config


def full_region_system(**overrides) -> SystemConfig:
    """Full-region: bulk-transfer every region without density prediction."""
    config = SystemConfig(
        name="full_region",
        description="Indiscriminate full-region streaming (no density prediction)",
        use_stride=False,
        use_full_region=True,
    )
    return config.with_overrides(**overrides) if overrides else config


def bump_system(bump: Optional[BuMPConfig] = None, **overrides) -> SystemConfig:
    """BuMP: bulk memory access prediction and streaming."""
    config = SystemConfig(
        name="bump",
        description="BuMP: RDTT + BHT + DRT bulk read and writeback streaming",
        use_stride=False,
        use_bump=True,
        carries_pc=True,
        bump=bump if bump is not None else BuMPConfig(),
    )
    return config.with_overrides(**overrides) if overrides else config


def ideal_system(**overrides) -> SystemConfig:
    """Ideal: baseline traffic served with oracle row-buffer locality."""
    config = SystemConfig(
        name="ideal",
        description="Oracle row-buffer locality over the baseline's traffic",
        ideal_row_locality=True,
        attach_profiler=True,
    )
    return config.with_overrides(**overrides) if overrides else config


def bump_vwq_system(bump: Optional[BuMPConfig] = None, **overrides) -> SystemConfig:
    """BuMP combined with VWQ (footnote 1 of Section V.G).

    BuMP streams high-density regions; VWQ picks up writeback locality for the
    dirty evictions that fall outside them.
    """
    config = SystemConfig(
        name="bump_vwq",
        description="BuMP bulk streaming plus VWQ eager writeback for other regions",
        use_stride=False,
        use_bump=True,
        use_vwq=True,
        carries_pc=True,
        bump=bump if bump is not None else BuMPConfig(),
    )
    return config.with_overrides(**overrides) if overrides else config


def nextline_system(**overrides) -> SystemConfig:
    """Next-line prefetching in place of the stride prefetcher (ablation)."""
    config = SystemConfig(
        name="nextline",
        description="Stateless next-line prefetching, open-row, region interleaving",
        use_stride=False,
        use_nextline=True,
    )
    return config.with_overrides(**overrides) if overrides else config


def stealth_system(**overrides) -> SystemConfig:
    """Stealth-style address-correlated region prefetching (Section VII foil)."""
    config = SystemConfig(
        name="stealth",
        description="Address-correlated region prefetching with an access-count trigger",
        use_stride=False,
        use_stealth=True,
    )
    return config.with_overrides(**overrides) if overrides else config


def eager_writeback_system(**overrides) -> SystemConfig:
    """Age-based eager writeback (Lee et al.) next to the stride baseline."""
    config = SystemConfig(
        name="eager_writeback",
        description="Stride prefetcher plus age-based eager writeback",
        use_eager_writeback=True,
    )
    return config.with_overrides(**overrides) if overrides else config


_PAPER_FACTORIES = {
    "base_close": base_close,
    "base_open": base_open,
    "sms": sms_system,
    "vwq": vwq_system,
    "sms_vwq": sms_vwq_system,
    "full_region": full_region_system,
    "bump": bump_system,
    "ideal": ideal_system,
}

_EXTENDED_FACTORIES = {
    "bump_vwq": bump_vwq_system,
    "nextline": nextline_system,
    "stealth": stealth_system,
    "eager_writeback": eager_writeback_system,
}


def named_configs(names: Optional[List[str]] = None) -> Dict[str, SystemConfig]:
    """Build the paper's named configurations (all of them, or a subset).

    Names from the extended (ablation) set are also accepted when listed
    explicitly; the default set stays exactly the eight systems of the
    paper's evaluation.
    """
    factories = dict(_PAPER_FACTORIES)
    factories.update(_EXTENDED_FACTORIES)
    selected = names if names is not None else list(_PAPER_FACTORIES)
    unknown = [name for name in selected if name not in factories]
    if unknown:
        raise KeyError(f"unknown system configurations: {unknown}")
    return {name: factories[name]() for name in selected}


def extended_configs(names: Optional[List[str]] = None) -> Dict[str, SystemConfig]:
    """Build the extended (related-work / ablation) configurations."""
    selected = names if names is not None else list(_EXTENDED_FACTORIES)
    unknown = [name for name in selected if name not in _EXTENDED_FACTORIES]
    if unknown:
        raise KeyError(f"unknown extended configurations: {unknown}")
    return {name: _EXTENDED_FACTORIES[name]() for name in selected}
