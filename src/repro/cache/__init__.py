"""Cache hierarchy substrate.

The trace-driven system models two cache levels, matching Table II of the
paper:

* per-core 32KB 2-way L1 data caches (:class:`repro.cache.l1.L1DataCache`)
  that filter the processor reference stream before it reaches the shared
  LLC;
* a shared 4MB 16-way last-level cache (:class:`repro.cache.llc.LastLevelCache`)
  whose access, miss, fill and eviction streams feed the prefetchers, the
  eager-writeback engine and BuMP.

Both levels are built on one of two interchangeable, result-identical cache
array engines (see :mod:`repro.cache.engine`): the flat-array engine
(:class:`repro.cache.flat.FlatSetAssociativeCache`, the default -- state in
preallocated NumPy parallel arrays, allocation-free hot path) and the
original dict-of-lines model
(:class:`repro.cache.set_assoc.SetAssociativeCache`, selectable with
``REPRO_CACHE_ENGINE=dict`` as the benchmark baseline).  Components that
want to observe or inject LLC traffic implement the
:class:`repro.cache.agent.LLCAgent` interface.
"""

from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.engine import cache_engine_name, make_cache_array
from repro.cache.flat import FlatLineView, FlatSetAssociativeCache
from repro.cache.l1 import L1DataCache
from repro.cache.llc import LastLevelCache
from repro.cache.replacement import LRUPolicy, RandomPolicy, ReplacementPolicy
from repro.cache.set_assoc import CacheLine, EvictedLine, SetAssociativeCache

__all__ = [
    "AgentActions",
    "LLCAgent",
    "L1DataCache",
    "LastLevelCache",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "CacheLine",
    "EvictedLine",
    "SetAssociativeCache",
    "FlatLineView",
    "FlatSetAssociativeCache",
    "cache_engine_name",
    "make_cache_array",
]
