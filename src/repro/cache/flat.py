"""Flat-array set-associative cache engine.

:class:`FlatSetAssociativeCache` is a drop-in replacement for the dict-backed
:class:`repro.cache.set_assoc.SetAssociativeCache` that keeps all cache state
in preallocated NumPy parallel arrays instead of per-line Python objects.

**State-array layout.**  Five dense ``[num_sets, ways]`` arrays hold the
whole cache; a line is the slot ``(set_index, way)`` across all five, and
scalar code addresses it through the flattened index
``slot = set_index * ways + way``:

* ``tags`` (``int64``) -- resident block address of each slot, ``-1`` when
  the slot is empty;
* ``flags`` (``uint8``) -- packed per-line status bits: ``FLAG_DIRTY`` (bit
  0), ``FLAG_PREFETCHED`` (bit 1), ``FLAG_USED`` (bit 2);
* ``pcs`` (``int64``) / ``cores`` (``int32``) -- the prediction metadata
  (requesting PC and core) the dict engine kept on each
  :class:`~repro.cache.set_assoc.CacheLine`;
* ``stamps`` (``int64``) -- a per-set monotonic recency stamp (the set's
  insertion/touch tick at the time the slot was last written).

The stamp array reproduces the dict engine's insertion-ordered-dict LRU
*exactly*: every insertion (and, for promoting policies, every touch) writes
the set's next tick, so "oldest stamp" is identical to "first dict key".
Under a non-promoting policy (random replacement) stamps are written only at
insertion, which is exactly the order a never-reordered dict would have; on
an eviction the stamp-ordered tag dict is rebuilt and handed to the policy's
``victim``, so even seeded-RNG victim choices match the dict engine.

Scalar state access goes through zero-copy :class:`memoryview`\\ s over the
arrays (a memoryview read/write is ~3x cheaper than NumPy scalar indexing),
and an auxiliary ``block -> slot`` index dict provides O(1) associative
lookup; the dict maps plain ints to plain ints -- no per-line objects are
ever allocated, which is where the dict engine spends its time.  Bulk
operations (:meth:`resident_blocks_in_region`) use vectorized NumPy gathers
over the 2-D arrays.

Engine selection lives in :mod:`repro.cache.engine`; the simulator hot loop
additionally calls :meth:`demand_access` directly, which fuses the dict
engine's probe + access + flag update into one allocation-free call.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.common.addressing import BLOCK_BITS
from repro.common.params import CacheParams
from repro.common.stats import StatGroup
from repro.cache.replacement import LRUPolicy, ReplacementPolicy
from repro.cache.set_assoc import CacheLine, EvictedLine

__all__ = [
    "FLAG_DIRTY",
    "FLAG_PREFETCHED",
    "FLAG_USED",
    "FlatLineView",
    "FlatSetAssociativeCache",
]

#: Packed per-line flag bits (``flags`` array).
FLAG_DIRTY = 1
FLAG_PREFETCHED = 2
FLAG_USED = 4

#: Candidate counts up to this bound are probed through the slot index --
#: scalar probes beat the fixed overhead of the NumPy gathers until region
#: scans reach thousands of candidate blocks (measured crossover ~2k).
_SCALAR_SCAN_LIMIT = 2048


class FlatLineView:
    """A :class:`CacheLine`-shaped window onto one occupied array slot.

    Attribute reads and writes go straight to the backing arrays, so mutating
    ``view.dirty`` behaves exactly like mutating a dict-engine line.  Views
    are only materialized on the compatibility surface (``lookup``,
    ``iter_lines``, region scans); the simulator hot path never creates one.
    """

    __slots__ = ("_cache", "_slot")

    def __init__(self, cache: "FlatSetAssociativeCache", slot: int) -> None:
        self._cache = cache
        self._slot = slot

    @property
    def block_address(self) -> int:
        return self._cache._tags_mv[self._slot]

    @property
    def dirty(self) -> bool:
        return bool(self._cache._flags_mv[self._slot] & FLAG_DIRTY)

    @dirty.setter
    def dirty(self, value: bool) -> None:
        mv = self._cache._flags_mv
        if value:
            mv[self._slot] |= FLAG_DIRTY
        else:
            mv[self._slot] &= ~FLAG_DIRTY & 0xFF

    @property
    def prefetched(self) -> bool:
        return bool(self._cache._flags_mv[self._slot] & FLAG_PREFETCHED)

    @property
    def used(self) -> bool:
        return bool(self._cache._flags_mv[self._slot] & FLAG_USED)

    @used.setter
    def used(self, value: bool) -> None:
        mv = self._cache._flags_mv
        if value:
            mv[self._slot] |= FLAG_USED
        else:
            mv[self._slot] &= ~FLAG_USED & 0xFF

    @property
    def pc(self) -> int:
        return self._cache._pcs_mv[self._slot]

    @property
    def core(self) -> int:
        return self._cache._cores_mv[self._slot]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag
            for flag, present in (("D", self.dirty), ("P", self.prefetched), ("U", self.used))
            if present
        )
        return f"FlatLineView(0x{self.block_address:x}, {flags})"


class FlatSetAssociativeCache:
    """Array-backed cache with the :class:`SetAssociativeCache` interface."""

    def __init__(self, params: CacheParams, name: str = "cache",
                 policy: Optional[ReplacementPolicy] = None) -> None:
        self.params = params
        self.name = name
        self.policy = policy if policy is not None else LRUPolicy()
        self.num_sets = params.num_sets
        self._set_mask = self.num_sets - 1
        if self.num_sets & self._set_mask:
            raise ValueError("number of sets must be a power of two")
        ways = params.associativity
        self.ways = ways
        total = self.num_sets * ways

        self.tags = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self.flags = np.zeros((self.num_sets, ways), dtype=np.uint8)
        self.pcs = np.zeros((self.num_sets, ways), dtype=np.int64)
        self.cores = np.zeros((self.num_sets, ways), dtype=np.int32)
        self.stamps = np.zeros((self.num_sets, ways), dtype=np.int64)
        #: Per-set monotonic stamp counter; never reset, so stamps are unique
        #: and strictly increasing across the whole run (evictions included).
        #: An ndarray (bulk gather/scatter by the batched stamp paths) with a
        #: ``_tick`` memoryview alias for the scalar hit paths.
        self.ticks = np.zeros(self.num_sets, dtype=np.int64)
        self._rebuild_views()

        #: Associative index: resident block address -> flat slot.
        self._slot_of: Dict[int, int] = {}
        #: Occupied ways per set (the dict engine's ``len(cache_set)``).
        self._count = [0] * self.num_sets

        self._lru = self.policy.__class__ is LRUPolicy
        # The stamp model needs to know whether an access reorders recency.
        # LRU promotes by definition; any other policy must say so explicitly
        # -- silently assuming would break the engine-parity guarantee for a
        # policy with a no-op on_access (insertion order != recency order).
        if self._lru:
            self._promote = True
        else:
            declared = any(
                "touch_promotes" in klass.__dict__
                for klass in type(self.policy).__mro__
                if klass is not ReplacementPolicy
            )
            if not declared:
                raise TypeError(
                    f"{type(self.policy).__name__} must declare "
                    "'touch_promotes' (does on_access move a line to MRU?) "
                    "to run under the flat-array engine")
            self._promote = self.policy.touch_promotes

        # Hot-path statistics are accumulated as plain ints (attribute bumps
        # on the increment sites) and folded into the StatGroup lazily; every
        # external read goes through ``stats``.
        self._stats = StatGroup(name)
        for attr, _key in self._PENDING_COUNTERS:
            setattr(self, attr, 0)

    def _rebuild_views(self) -> None:
        """(Re)derive the flat zero-copy views over the 2-D state arrays.

        Slot = ``set * ways + way``: ndarray views for the batched
        primitives, memoryviews for scalar access (a memoryview read/write
        beats NumPy scalar indexing ~3x).  Called at construction and again
        by :meth:`share_storage` after the backing arrays are swapped.
        """
        total = self.num_sets * self.ways
        self._tags_flat = self.tags.reshape(total)
        self._flags_flat = self.flags.reshape(total)
        self._stamps_flat = self.stamps.reshape(total)
        self._tags_mv = memoryview(self._tags_flat)
        self._flags_mv = memoryview(self._flags_flat)
        self._pcs_mv = memoryview(self.pcs.reshape(total))
        self._cores_mv = memoryview(self.cores.reshape(total))
        self._stamps_mv = memoryview(self._stamps_flat)
        self._tick = memoryview(self.ticks)

    def share_storage(self, tags: np.ndarray, flags: np.ndarray,
                      pcs: np.ndarray, cores: np.ndarray,
                      stamps: np.ndarray, ticks: np.ndarray) -> None:
        """Re-home this cache's state into caller-provided array views.

        The vector interpreter probes and stamps *all* per-core L1s in
        single NumPy operations, which needs every core's arrays to be rows
        of one pooled ``[core, set, way]`` allocation
        (:class:`repro.sim.system.ServerSystem` builds the pool and adopts
        each L1 into its row).  Current contents are copied over, so
        adoption is state-preserving at any point; each view must be
        C-contiguous with this cache's ``[num_sets, ways]`` geometry and
        dtype.  Scalar paths are untouched -- they run on the rebuilt
        flat/memoryview aliases of the same storage.
        """
        for mine, pooled in ((self.tags, tags), (self.flags, flags),
                             (self.pcs, pcs), (self.cores, cores),
                             (self.stamps, stamps), (self.ticks, ticks)):
            if pooled.shape != mine.shape or pooled.dtype != mine.dtype:
                raise ValueError(
                    f"storage view mismatch: got {pooled.shape}/{pooled.dtype}, "
                    f"need {mine.shape}/{mine.dtype}")
            if not pooled.flags["C_CONTIGUOUS"]:
                raise ValueError("storage views must be C-contiguous")
            pooled[...] = mine
        self.tags = tags
        self.flags = flags
        self.pcs = pcs
        self.cores = cores
        self.stamps = stamps
        self.ticks = ticks
        self._rebuild_views()

    #: (pending attribute, StatGroup key) pairs flushed by ``stats``.
    _PENDING_COUNTERS = (
        ("_p_hits", "hits"),
        ("_p_misses", "misses"),
        ("_p_fills", "fills"),
        ("_p_evictions", "evictions"),
        ("_p_dirty_evictions", "dirty_evictions"),
        ("_p_unused_prefetch_evictions", "unused_prefetch_evictions"),
        ("_p_prefetch_hits", "prefetch_hits"),
    )

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> StatGroup:
        """Counters as a :class:`StatGroup` (pending increments flushed)."""
        group = self._stats
        for attr, key in self._PENDING_COUNTERS:
            value = getattr(self, attr)
            if value:
                group.inc(key, value)
                setattr(self, attr, 0)
        return group

    # ------------------------------------------------------------------ #
    # Probing
    # ------------------------------------------------------------------ #
    def lookup(self, block_address: int, touch: bool = False) -> Optional[FlatLineView]:
        """Return a view of the resident line for ``block_address`` or ``None``."""
        slot = self._slot_of.get(block_address)
        if slot is None:
            return None
        if touch and self._promote:
            set_index = (block_address >> BLOCK_BITS) & self._set_mask
            tick = self._tick[set_index] + 1
            self._tick[set_index] = tick
            self._stamps_mv[slot] = tick
        return FlatLineView(self, slot)

    def contains(self, block_address: int) -> bool:
        """True when ``block_address`` is resident."""
        return block_address in self._slot_of

    # ------------------------------------------------------------------ #
    # Demand accesses and fills
    # ------------------------------------------------------------------ #
    def demand_access(self, block_address: int, is_write: bool) -> int:
        """Fused probe + access: return the line's *prior* flags, or -1 on a miss.

        This is the simulator's hot-loop entry point: one dict probe, one
        stamp write and one flag update -- no object allocation.  The prior
        flag byte lets the caller derive what the dict engine's separate
        ``probe`` observed (e.g. prefetched-but-unused coverage) for free.
        """
        slot = self._slot_of.get(block_address)
        if slot is None:
            self._p_misses += 1
            return -1
        self._p_hits += 1
        if self._promote:
            set_index = (block_address >> BLOCK_BITS) & self._set_mask
            tick = self._tick[set_index] + 1
            self._tick[set_index] = tick
            self._stamps_mv[slot] = tick
        flags_mv = self._flags_mv
        prior = flags_mv[slot]
        flags = prior
        if is_write:
            flags |= FLAG_DIRTY
        if not flags & FLAG_USED:
            flags |= FLAG_USED
            self._p_prefetch_hits += 1
        if flags != prior:
            flags_mv[slot] = flags
        return prior

    def access(self, block_address: int, is_write: bool = False) -> Optional[FlatLineView]:
        """Demand access; return a view of the line on a hit, ``None`` on a miss."""
        if self.demand_access(block_address, is_write) < 0:
            return None
        return FlatLineView(self, self._slot_of[block_address])

    # ------------------------------------------------------------------ #
    # Batched primitives (vector interpreter)
    # ------------------------------------------------------------------ #
    def batch_probe(self, blocks: np.ndarray, set_indices: np.ndarray):
        """Vectorized residency probe for a whole batch of accesses.

        ``blocks`` (``int64`` block addresses) and ``set_indices`` (their
        precomputed set indices) describe one batch of probes against the
        *current* tag state.  Returns ``(hit_mask, slots)``: a boolean hit
        mask and, for hit rows, the flat slot each block occupies (the slot
        value of miss rows is meaningless).  Purely observational: no stamp,
        flag or statistic is touched -- classification is not an access.
        """
        rows = self.tags[set_indices]                  # (batch, ways) gather
        matches = rows == blocks[:, None]
        hit_mask = matches.any(axis=1)
        slots = set_indices * self.ways + matches.argmax(axis=1)
        return hit_mask, slots

    def batch_verify(self, blocks: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Re-check a prior classification: does ``slots[i]`` still hold ``blocks[i]``?

        Used by the vector interpreter after an escape evicted L1 lines: a
        stale classified hit (its block was the victim) fails this check and
        is re-routed through the scalar path.
        """
        return self._tags_flat[slots] == blocks

    def batch_apply_hits(self, set_indices: np.ndarray, slots: np.ndarray,
                         store_mask: np.ndarray) -> None:
        """Apply the hit side effects of one chronological batch in bulk.

        Mirrors the fused scalar hit path under the L1 invariants (LRU
        replacement, resident lines always have the used bit set): every hit
        bumps its set's tick and stamps the hit slot with it; store hits OR
        the dirty flag in.  Tick arithmetic is exact -- the j-th hit of a set
        receives ``tick0 + j`` and a slot's final stamp is the tick of its
        last touch -- so the post-batch stamp state is bit-identical to
        replaying the batch through :meth:`demand_access` row by row.

        Promotion is unconditional, exactly like the inlined scalar hit path
        (the L1 is always LRU; see :meth:`ServerSystem._run_chunk_flat`).
        """
        if len(set_indices):
            order = np.argsort(set_indices, kind="stable")
            sorted_sets = set_indices[order]
            sorted_slots = slots[order]
            uniq, starts, counts = np.unique(sorted_sets, return_index=True,
                                             return_counts=True)
            tick0 = self.ticks[uniq]
            # Stamp of the j-th touch (0-based) in set g: tick0[g] + j + 1.
            values = np.repeat(tick0 - starts + 1, counts)
            values += np.arange(len(sorted_sets), dtype=np.int64)
            self.ticks[uniq] = tick0 + counts
            # A slot's final stamp is its *last* chronological touch.  The
            # stable set sort preserves chronology inside each set (hence
            # inside each slot); a second stable sort by slot then makes the
            # last row of every slot group the last touch.
            slot_order = np.argsort(sorted_slots, kind="stable")
            final_slots = sorted_slots[slot_order]
            final_values = values[slot_order]
            last = np.empty(len(final_slots), dtype=bool)
            last[:-1] = final_slots[1:] != final_slots[:-1]
            last[-1] = True
            self._stamps_flat[final_slots[last]] = final_values[last]
        if store_mask.any():
            # Duplicate slots are harmless: every occurrence ORs in the same
            # bit, so the gather/or/scatter of fancy in-place |= is exact.
            self._flags_flat[slots[store_mask]] |= FLAG_DIRTY

    def fill(self, block_address: int, dirty: bool = False, prefetched: bool = False,
             pc: int = 0, core: int = 0) -> Optional[EvictedLine]:
        """Allocate ``block_address``; return the evicted victim, if any."""
        slot_of = self._slot_of
        slot = slot_of.get(block_address)
        set_index = (block_address >> BLOCK_BITS) & self._set_mask
        if slot is not None:
            # Refill of a resident block: merge the dirty bit, promote.
            if dirty:
                self._flags_mv[slot] |= FLAG_DIRTY
            if self._promote:
                tick = self._tick[set_index] + 1
                self._tick[set_index] = tick
                self._stamps_mv[slot] = tick
            return None

        victim: Optional[EvictedLine] = None
        base = set_index * self.ways
        count = self._count[set_index]
        tags_mv = self._tags_mv
        flags_mv = self._flags_mv
        if count >= self.ways:
            slot = self._victim_slot(set_index, base)
            victim_tag = tags_mv[slot]
            victim_flags = flags_mv[slot]
            victim = EvictedLine(
                victim_tag,
                bool(victim_flags & FLAG_DIRTY),
                bool(victim_flags & FLAG_PREFETCHED),
                bool(victim_flags & FLAG_USED),
                self._pcs_mv[slot],
                self._cores_mv[slot],
            )
            del slot_of[victim_tag]
            self._p_evictions += 1
            if victim_flags & FLAG_DIRTY:
                self._p_dirty_evictions += 1
            if victim_flags & (FLAG_PREFETCHED | FLAG_USED) == FLAG_PREFETCHED:
                self._p_unused_prefetch_evictions += 1
        else:
            slot = base
            while tags_mv[slot] != -1:
                slot += 1
            self._count[set_index] = count + 1

        slot_of[block_address] = slot
        tags_mv[slot] = block_address
        flags = FLAG_DIRTY if dirty else 0
        # ``used`` starts true for demand fills, false for prefetched ones,
        # mirroring CacheLine.__init__.
        flags |= FLAG_PREFETCHED if prefetched else FLAG_USED
        flags_mv[slot] = flags
        self._pcs_mv[slot] = pc
        self._cores_mv[slot] = core
        tick = self._tick[set_index] + 1
        self._tick[set_index] = tick
        self._stamps_mv[slot] = tick
        self._p_fills += 1
        return victim

    def fill_l1(self, block_address: int, dirty: bool, pc: int,
                core: int) -> Optional[EvictedLine]:
        """Write-allocate L1 fill: return the victim only when it was dirty.

        The L1 never fills prefetched blocks and its caller forwards only
        dirty victims to the LLC, so clean evictions skip the victim-record
        allocation entirely.  Statistics match :meth:`fill` exactly.
        """
        slot_of = self._slot_of
        set_index = (block_address >> BLOCK_BITS) & self._set_mask
        # The caller just observed a miss, so the block cannot be resident.
        victim = None
        base = set_index * self.ways
        count = self._count[set_index]
        tags_mv = self._tags_mv
        flags_mv = self._flags_mv
        if count >= self.ways:
            slot = self._victim_slot(set_index, base)
            victim_tag = tags_mv[slot]
            victim_flags = flags_mv[slot]
            del slot_of[victim_tag]
            self._p_evictions += 1
            if victim_flags & FLAG_DIRTY:
                self._p_dirty_evictions += 1
                victim = EvictedLine(
                    victim_tag,
                    True,
                    bool(victim_flags & FLAG_PREFETCHED),
                    bool(victim_flags & FLAG_USED),
                    self._pcs_mv[slot],
                    self._cores_mv[slot],
                )
            if victim_flags & (FLAG_PREFETCHED | FLAG_USED) == FLAG_PREFETCHED:
                self._p_unused_prefetch_evictions += 1
        else:
            slot = base
            while tags_mv[slot] != -1:
                slot += 1
            self._count[set_index] = count + 1

        slot_of[block_address] = slot
        tags_mv[slot] = block_address
        flags_mv[slot] = (FLAG_DIRTY | FLAG_USED) if dirty else FLAG_USED
        self._pcs_mv[slot] = pc
        self._cores_mv[slot] = core
        tick = self._tick[set_index] + 1
        self._tick[set_index] = tick
        self._stamps_mv[slot] = tick
        self._p_fills += 1
        return victim

    def _victim_slot(self, set_index: int, base: int) -> int:
        """Pick the slot to evict from the full set starting at ``base``."""
        stamps_mv = self._stamps_mv
        if self._lru:
            best = base
            best_stamp = stamps_mv[base]
            for slot in range(base + 1, base + self.ways):
                stamp = stamps_mv[slot]
                if stamp < best_stamp:
                    best_stamp = stamp
                    best = slot
            return best
        # Generic policy: rebuild the set as the stamp-ordered dict the
        # dict engine would hold and let the policy pick, so any internal
        # policy state (e.g. a seeded RNG) advances identically.
        slots = sorted(range(base, base + self.ways), key=stamps_mv.__getitem__)
        tags_mv = self._tags_mv
        ordered = {tags_mv[slot]: None for slot in slots}
        victim_tag = self.policy.victim(ordered)
        return self._slot_of[victim_tag]

    # ------------------------------------------------------------------ #
    # Maintenance operations used by eager writeback / bulk streaming
    # ------------------------------------------------------------------ #
    def invalidate(self, block_address: int) -> Optional[CacheLine]:
        """Remove ``block_address``, returning a detached copy of its line."""
        slot = self._slot_of.pop(block_address, None)
        if slot is None:
            return None
        flags = self._flags_mv[slot]
        line = CacheLine(
            block_address,
            dirty=bool(flags & FLAG_DIRTY),
            prefetched=bool(flags & FLAG_PREFETCHED),
            pc=self._pcs_mv[slot],
            core=self._cores_mv[slot],
        )
        line.used = bool(flags & FLAG_USED)
        self._tags_mv[slot] = -1
        self._flags_mv[slot] = 0
        set_index = (block_address >> BLOCK_BITS) & self._set_mask
        self._count[set_index] -= 1
        return line

    def clean(self, block_address: int) -> bool:
        """Clear the dirty bit of a resident block; True when it was dirty."""
        slot = self._slot_of.get(block_address)
        if slot is None:
            return False
        flags = self._flags_mv[slot]
        if flags & FLAG_DIRTY:
            self._flags_mv[slot] = flags & ~FLAG_DIRTY & 0xFF
            return True
        return False

    def touch_set_dirty(self, block_address: int) -> bool:
        """Promote a resident block and mark it dirty (L1 writeback fast path).

        Equivalent to ``lookup(block, touch=True)`` followed by
        ``line.dirty = True``, without materializing a view.  Returns False
        when the block is not resident (the caller then allocates via
        :meth:`fill`).
        """
        slot = self._slot_of.get(block_address)
        if slot is None:
            return False
        if self._promote:
            set_index = (block_address >> BLOCK_BITS) & self._set_mask
            tick = self._tick[set_index] + 1
            self._tick[set_index] = tick
            self._stamps_mv[slot] = tick
        self._flags_mv[slot] |= FLAG_DIRTY
        return True

    def resident_blocks_in_region(self, region_base: int, region_size: int,
                                  block_size: int = 1 << BLOCK_BITS) -> List[FlatLineView]:
        """Return views of the resident lines inside a region, address-ascending.

        Small regions are probed through the slot index; large ones gather
        the candidate set rows from the tag array in one vectorized compare
        instead of issuing one lookup per block offset.
        """
        candidates = range(region_base, region_base + region_size, block_size)
        if len(candidates) <= _SCALAR_SCAN_LIMIT:
            slot_of = self._slot_of
            lines = []
            for block in candidates:
                slot = slot_of.get(block)
                if slot is not None:
                    lines.append(FlatLineView(self, slot))
            return lines

        blocks = np.arange(region_base, region_base + region_size, block_size,
                           dtype=np.int64)
        set_indices = (blocks >> BLOCK_BITS) & self._set_mask
        rows = self.tags[set_indices]                    # (candidates, ways) gather
        candidate_idx, way_idx = np.nonzero(rows == blocks[:, None])
        ways = self.ways
        set_list = set_indices.tolist()
        return [FlatLineView(self, set_list[i] * ways + w)
                for i, w in zip(candidate_idx.tolist(), way_idx.tolist())]

    def dirty_blocks_in_region(self, region_base: int, region_size: int,
                               block_size: int = 1 << BLOCK_BITS) -> List[int]:
        """Addresses of resident *dirty* blocks in a region, address-ascending.

        This is the BuMP bulk-writeback scan.  Unlike
        :meth:`resident_blocks_in_region` it never materializes line views:
        large regions reduce to two vectorized gathers (tags and flags) and a
        mask, small ones to slot-index probes plus a flag-byte read each.
        """
        candidates = range(region_base, region_base + region_size, block_size)
        if len(candidates) <= _SCALAR_SCAN_LIMIT:
            slot_of = self._slot_of
            flags_mv = self._flags_mv
            blocks = []
            for block in candidates:
                slot = slot_of.get(block)
                if slot is not None and flags_mv[slot] & FLAG_DIRTY:
                    blocks.append(block)
            return blocks

        blocks = np.arange(region_base, region_base + region_size, block_size,
                           dtype=np.int64)
        set_indices = (blocks >> BLOCK_BITS) & self._set_mask
        resident = self.tags[set_indices] == blocks[:, None]    # (n, ways)
        dirty = (self.flags[set_indices] & FLAG_DIRTY).astype(bool)
        hit_rows = (resident & dirty).any(axis=1)
        return blocks[hit_rows].tolist()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def resident_count(self) -> int:
        """Total number of blocks currently resident."""
        return sum(self._count)

    def iter_lines(self) -> Iterable[FlatLineView]:
        """Iterate over every resident line (test/debug helper)."""
        for slot, tag in enumerate(self._tags_mv):
            if tag != -1:
                yield FlatLineView(self, slot)

    def recency_ordered_tags(self, set_index: int) -> List[int]:
        """Tags of one set ordered oldest-first (parity/test helper).

        For a promoting policy this is the dict engine's key order (LRU
        first); for a non-promoting policy it is insertion order.
        """
        base = set_index * self.ways
        stamps_mv = self._stamps_mv
        tags_mv = self._tags_mv
        slots = [slot for slot in range(base, base + self.ways) if tags_mv[slot] != -1]
        slots.sort(key=stamps_mv.__getitem__)
        return [tags_mv[slot] for slot in slots]

    @property
    def hit_ratio(self) -> float:
        """Demand hit ratio observed so far."""
        stats = self.stats
        accesses = stats["hits"] + stats["misses"]
        if accesses == 0:
            return 0.0
        return stats["hits"] / accesses
