"""Generic set-associative, write-back, write-allocate cache model.

The model is block-granular and state-only: it tracks which blocks are
resident, their dirty bits and a handful of prediction-related flags
(prefetched-but-unused, triggering PC).  It does not move data.  Both the
per-core L1 data caches and the shared LLC are instances of this class.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.common.addressing import BLOCK_BITS
from repro.common.params import CacheParams
from repro.common.stats import StatGroup
from repro.cache.replacement import LRUPolicy, ReplacementPolicy


class CacheLine:
    """State of one resident cache block."""

    __slots__ = ("block_address", "dirty", "prefetched", "used", "pc", "core")

    def __init__(self, block_address: int, dirty: bool = False,
                 prefetched: bool = False, pc: int = 0, core: int = 0) -> None:
        self.block_address = block_address
        self.dirty = dirty
        self.prefetched = prefetched
        #: True once a demand access touched the line after it was filled.
        self.used = not prefetched
        self.pc = pc
        self.core = core

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            flag
            for flag, present in (("D", self.dirty), ("P", self.prefetched), ("U", self.used))
            if present
        )
        return f"CacheLine(0x{self.block_address:x}, {flags})"


class EvictedLine:
    """Summary of a line pushed out of the cache by a fill.

    A plain ``__slots__`` class: once the LLC is warm nearly every fill
    evicts, so victim records are built on the simulator hot path.
    """

    __slots__ = ("block_address", "dirty", "prefetched", "used", "pc", "core")

    def __init__(self, block_address: int, dirty: bool, prefetched: bool,
                 used: bool, pc: int = 0, core: int = 0) -> None:
        self.block_address = block_address
        self.dirty = dirty
        self.prefetched = prefetched
        self.used = used
        self.pc = pc
        self.core = core

    def __eq__(self, other) -> bool:
        if not isinstance(other, EvictedLine):
            return NotImplemented
        return (self.block_address == other.block_address
                and self.dirty == other.dirty
                and self.prefetched == other.prefetched
                and self.used == other.used
                and self.pc == other.pc
                and self.core == other.core)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EvictedLine(block_address=0x{self.block_address:x}, "
                f"dirty={self.dirty}, prefetched={self.prefetched}, "
                f"used={self.used}, pc={self.pc}, core={self.core})")


class SetAssociativeCache:
    """A set-associative cache holding :class:`CacheLine` entries.

    The cache exposes the minimum surface the simulator needs:

    * :meth:`lookup` / :meth:`contains` -- probe without allocating;
    * :meth:`access` -- demand reference (read or write) that updates LRU and
      dirty state but never allocates;
    * :meth:`fill` -- allocate a block, returning the victim if one had to be
      evicted;
    * :meth:`invalidate` and :meth:`clean` -- used by eager-writeback engines
      that push dirty data to memory ahead of eviction;
    * :meth:`resident_blocks_in_region` -- used by the bulk-writeback logic to
      find a region's cache-resident blocks.
    """

    def __init__(self, params: CacheParams, name: str = "cache",
                 policy: Optional[ReplacementPolicy] = None) -> None:
        self.params = params
        self.name = name
        self.policy = policy if policy is not None else LRUPolicy()
        self.num_sets = params.num_sets
        self._set_mask = self.num_sets - 1
        if self.num_sets & self._set_mask:
            raise ValueError("number of sets must be a power of two")
        self._sets: List[Dict[int, CacheLine]] = [dict() for _ in range(self.num_sets)]
        self.stats = StatGroup(name)

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def _set_index(self, block_address: int) -> int:
        return (block_address >> BLOCK_BITS) & self._set_mask

    # ------------------------------------------------------------------ #
    # Probing
    # ------------------------------------------------------------------ #
    def lookup(self, block_address: int, touch: bool = False) -> Optional[CacheLine]:
        """Return the resident line for ``block_address`` or ``None``.

        When ``touch`` is true the line is promoted to most-recently-used.
        """
        cache_set = self._sets[self._set_index(block_address)]
        line = cache_set.get(block_address)
        if line is not None and touch:
            self.policy.on_access(cache_set, block_address)
        return line

    def contains(self, block_address: int) -> bool:
        """True when ``block_address`` is resident."""
        return block_address in self._sets[self._set_index(block_address)]

    # ------------------------------------------------------------------ #
    # Demand accesses and fills
    # ------------------------------------------------------------------ #
    def access(self, block_address: int, is_write: bool = False) -> Optional[CacheLine]:
        """Perform a demand access; return the line on a hit, ``None`` on a miss.

        A write hit sets the dirty bit.  The access never allocates -- callers
        issue a :meth:`fill` after fetching the block from the next level.
        """
        cache_set = self._sets[self._set_index(block_address)]
        line = cache_set.get(block_address)
        if line is None:
            self.stats.inc("misses")
            return None
        self.policy.on_access(cache_set, block_address)
        self.stats.inc("hits")
        if is_write:
            line.dirty = True
        if not line.used:
            line.used = True
            self.stats.inc("prefetch_hits")
        return line

    def fill(self, block_address: int, dirty: bool = False, prefetched: bool = False,
             pc: int = 0, core: int = 0) -> Optional[EvictedLine]:
        """Allocate ``block_address``; return the evicted victim, if any.

        Filling a block that is already resident merges the dirty bit and
        returns ``None`` (no eviction).
        """
        set_index = self._set_index(block_address)
        cache_set = self._sets[set_index]
        existing = cache_set.get(block_address)
        if existing is not None:
            existing.dirty = existing.dirty or dirty
            self.policy.on_access(cache_set, block_address)
            return None

        victim: Optional[EvictedLine] = None
        if len(cache_set) >= self.params.associativity:
            victim_tag = self.policy.victim(cache_set)
            victim_line = cache_set.pop(victim_tag)
            victim = EvictedLine(
                block_address=victim_line.block_address,
                dirty=victim_line.dirty,
                prefetched=victim_line.prefetched,
                used=victim_line.used,
                pc=victim_line.pc,
                core=victim_line.core,
            )
            self.stats.inc("evictions")
            if victim.dirty:
                self.stats.inc("dirty_evictions")
            if victim.prefetched and not victim.used:
                self.stats.inc("unused_prefetch_evictions")

        cache_set[block_address] = CacheLine(
            block_address, dirty=dirty, prefetched=prefetched, pc=pc, core=core
        )
        self.stats.inc("fills")
        return victim

    # ------------------------------------------------------------------ #
    # Maintenance operations used by eager writeback / bulk streaming
    # ------------------------------------------------------------------ #
    def invalidate(self, block_address: int) -> Optional[CacheLine]:
        """Remove ``block_address`` from the cache, returning its old line."""
        cache_set = self._sets[self._set_index(block_address)]
        return cache_set.pop(block_address, None)

    def clean(self, block_address: int) -> bool:
        """Clear the dirty bit of a resident block.

        Returns True when the block was resident and dirty (i.e. an eager
        writeback of the block is meaningful).
        """
        line = self.lookup(block_address)
        if line is not None and line.dirty:
            line.dirty = False
            return True
        return False

    def resident_blocks_in_region(self, region_base: int, region_size: int,
                                  block_size: int = 1 << BLOCK_BITS) -> List[CacheLine]:
        """Return the resident lines whose addresses fall inside a region.

        Probes the candidate sets' dicts directly rather than going through
        one ``lookup`` method call per block offset (this scan sits on the
        BuMP bulk-writeback path).
        """
        sets = self._sets
        mask = self._set_mask
        lines = []
        for offset in range(0, region_size, block_size):
            address = region_base + offset
            line = sets[(address >> BLOCK_BITS) & mask].get(address)
            if line is not None:
                lines.append(line)
        return lines

    def dirty_blocks_in_region(self, region_base: int, region_size: int,
                               block_size: int = 1 << BLOCK_BITS) -> List[int]:
        """Addresses of resident dirty blocks in a region, address-ascending."""
        sets = self._sets
        mask = self._set_mask
        blocks = []
        for offset in range(0, region_size, block_size):
            address = region_base + offset
            line = sets[(address >> BLOCK_BITS) & mask].get(address)
            if line is not None and line.dirty:
                blocks.append(address)
        return blocks

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def resident_count(self) -> int:
        """Total number of blocks currently resident."""
        return sum(len(s) for s in self._sets)

    def iter_lines(self) -> Iterable[CacheLine]:
        """Iterate over every resident line (test/debug helper)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    @property
    def hit_ratio(self) -> float:
        """Demand hit ratio observed so far."""
        accesses = self.stats["hits"] + self.stats["misses"]
        if accesses == 0:
            return 0.0
        return self.stats["hits"] / accesses
