"""Interface between the LLC and the engines that observe or inject traffic.

The paper places three kinds of engines next to the shared LLC: prefetchers
(the stride baseline and SMS), the eager-writeback engine (VWQ) and BuMP
itself.  All of them observe the LLC's access, miss, fill and eviction
streams and may ask the system to inject additional block reads (prefetches /
bulk reads) or additional writebacks (eager / bulk writebacks).

To keep control flow simple and acyclic, agents do not act on the LLC
directly.  Each notification returns an :class:`AgentActions` bundle listing
the block addresses the agent wants fetched or written back; the system model
(:mod:`repro.sim.system`) performs those actions and attributes the resulting
DRAM traffic.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.request import LLCRequest
from repro.cache.set_assoc import EvictedLine


class AgentActions:
    """Traffic an LLC agent asks the system to generate.

    A plain ``__slots__`` class rather than a dataclass: one bundle is built
    per notification on the simulator hot path, so construction cost matters.
    """

    __slots__ = ("fetch_blocks", "writeback_blocks")

    def __init__(self, fetch_blocks: Optional[List[int]] = None,
                 writeback_blocks: Optional[List[int]] = None) -> None:
        #: Block addresses to fetch from memory into the LLC if not resident.
        self.fetch_blocks: List[int] = fetch_blocks if fetch_blocks is not None else []
        #: Block addresses whose dirty copies should be eagerly written back.
        self.writeback_blocks: List[int] = (
            writeback_blocks if writeback_blocks is not None else []
        )

    def merge(self, other: "AgentActions") -> None:
        """Append the actions requested by another agent."""
        self.fetch_blocks.extend(other.fetch_blocks)
        self.writeback_blocks.extend(other.writeback_blocks)

    @property
    def empty(self) -> bool:
        """True when the agent requested no additional traffic."""
        return not self.fetch_blocks and not self.writeback_blocks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AgentActions(fetch_blocks={self.fetch_blocks!r}, "
                f"writeback_blocks={self.writeback_blocks!r})")


class LLCAgent:
    """Base class for engines attached to the LLC.

    Subclasses override only the notifications they care about; every default
    implementation returns an empty :class:`AgentActions`.
    """

    name = "agent"

    def on_access(self, request: LLCRequest, hit: bool) -> AgentActions:
        """A demand request (read or write) probed the LLC."""
        return AgentActions()

    def on_miss(self, request: LLCRequest) -> AgentActions:
        """A demand request missed in the LLC and will be sent to memory."""
        return AgentActions()

    def on_fill(self, block_address: int, prefetched: bool) -> AgentActions:
        """A block was installed in the LLC."""
        return AgentActions()

    def on_eviction(self, victim: EvictedLine) -> AgentActions:
        """A block was evicted from the LLC (clean or dirty)."""
        return AgentActions()

    def storage_bits(self) -> int:
        """Total storage the agent's hardware structures require, in bits.

        Used by the overhead analysis (Section V.F / VI of the paper).
        """
        return 0
