"""Replacement policies for the set-associative caches.

The paper's caches use LRU; the random policy exists for ablation studies and
as a sanity baseline in tests (it must never outperform LRU on a trace with
temporal locality by a large margin, which a property test checks).

A policy operates on one cache *set*.  The set itself stores its resident
lines in an insertion-ordered dict; the policy only decides which tag to evict
and how to reorder on an access.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Optional


class ReplacementPolicy(ABC):
    """Interface implemented by every replacement policy.

    Policies are written against the dict-backed engine: ``on_access`` may
    reorder a set's insertion-ordered dict and ``victim`` picks a tag from it.
    The flat-array engine (:mod:`repro.cache.flat`) models the same ordering
    with per-set monotonic stamps instead of dict reordering; it consults
    :attr:`touch_promotes` to know whether an access moves a line to the
    most-recently-used position (true for LRU, false for random replacement,
    whose ``on_access`` is a no-op).  When evicting under a non-LRU policy the
    flat engine rebuilds the stamp-ordered tag dict and calls ``victim`` on
    it, so a policy's victim choice -- including any internal RNG sequence --
    is identical under both engines.
    """

    #: Whether ``on_access`` promotes the touched line to most-recently-used.
    touch_promotes = True

    @abstractmethod
    def on_access(self, cache_set: Dict[int, object], tag: int) -> None:
        """Record that ``tag`` was referenced in ``cache_set``."""

    @abstractmethod
    def victim(self, cache_set: Dict[int, object]) -> int:
        """Return the tag of the line to evict from a full ``cache_set``."""


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used replacement.

    Sets are ordinary ``dict`` objects, which preserve insertion order; moving
    a line to the most-recently-used position is a delete + reinsert, and the
    victim is simply the first key.
    """

    def on_access(self, cache_set: Dict[int, object], tag: int) -> None:
        line = cache_set.pop(tag)
        cache_set[tag] = line

    def victim(self, cache_set: Dict[int, object]) -> int:
        return next(iter(cache_set))


class RandomPolicy(ReplacementPolicy):
    """Uniform-random replacement, for ablations and tests."""

    #: ``on_access`` keeps no recency state, so sets stay insertion-ordered.
    touch_promotes = False

    def __init__(self, seed: int = 1234) -> None:
        self._rng = random.Random(seed)

    def on_access(self, cache_set: Dict[int, object], tag: int) -> None:
        # Random replacement keeps no recency state.
        return None

    def victim(self, cache_set: Dict[int, object]) -> int:
        keys = list(cache_set)
        return keys[self._rng.randrange(len(keys))]


def make_policy(name: str, seed: Optional[int] = None) -> ReplacementPolicy:
    """Construct a replacement policy by name (``"lru"`` or ``"random"``)."""
    lowered = name.lower()
    if lowered == "lru":
        return LRUPolicy()
    if lowered == "random":
        return RandomPolicy(seed if seed is not None else 1234)
    raise ValueError(f"unknown replacement policy: {name!r}")
