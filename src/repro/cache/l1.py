"""Per-core L1 data cache used as a filter in front of the shared LLC.

The L1 model is intentionally simple: it captures the short-term temporal and
spatial reuse that never reaches the LLC, so that the LLC observes a
realistic, filtered reference stream.  Write misses allocate (write-allocate)
and writes mark the block dirty; a dirty L1 eviction is reported to the
caller so it can be forwarded to the LLC as a write (this is how store
traffic eventually becomes dirty LLC blocks and, later, DRAM writes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.addressing import block_address
from repro.common.params import CacheParams
from repro.cache.engine import make_cache_array
from repro.cache.set_assoc import EvictedLine


@dataclass
class L1Result:
    """Outcome of presenting one processor access to the L1."""

    hit: bool
    #: Dirty blocks evicted from the L1 by this access's fill (at most one).
    writebacks: List[EvictedLine]


class L1DataCache:
    """One core's private L1 data cache."""

    def __init__(self, params: CacheParams, core: int,
                 engine: Optional[str] = None) -> None:
        self.core = core
        self._cache = make_cache_array(params, name=f"l1d{core}", engine=engine)

    def access(self, address: int, is_store: bool, pc: int = 0) -> L1Result:
        """Present a load or store to the L1.

        On a miss the block is allocated immediately (the caller is expected
        to fetch it from the LLC / memory); the result reports any dirty
        victim that the allocation displaced so the caller can forward the
        writeback to the LLC.
        """
        block = block_address(address)
        line = self._cache.access(block, is_write=is_store)
        if line is not None:
            return L1Result(hit=True, writebacks=[])

        victim = self._cache.fill(block, dirty=is_store, pc=pc, core=self.core)
        writebacks = [victim] if victim is not None and victim.dirty else []
        return L1Result(hit=False, writebacks=writebacks)

    def invalidate(self, address: int) -> None:
        """Drop a block (used when the LLC evicts a block under inclusion)."""
        self._cache.invalidate(block_address(address))

    def contains(self, address: int) -> bool:
        """True when the block holding ``address`` is resident."""
        return self._cache.contains(block_address(address))

    def lookup_dirty(self, address: int) -> bool:
        """True when the block holding ``address`` is resident and dirty."""
        line = self._cache.lookup(block_address(address))
        return line is not None and line.dirty

    @property
    def stats(self):
        """Statistics group of the underlying cache array."""
        return self._cache.stats

    @property
    def hit_ratio(self) -> float:
        """Demand hit ratio of this L1."""
        return self._cache.hit_ratio
