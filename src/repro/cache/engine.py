"""Cache engine selection.

Two interchangeable cache-array engines implement the same interface and
produce bit-identical simulation results (the parity suite asserts this for
every workload and named configuration):

``flat`` (default)
    :class:`repro.cache.flat.FlatSetAssociativeCache` -- state in
    preallocated NumPy parallel arrays, no per-line object allocation, fused
    probe/access for the simulator hot loop.

``dict``
    :class:`repro.cache.set_assoc.SetAssociativeCache` -- the original
    dict-of-CacheLine model, kept as the benchmark baseline the same way the
    trace pipeline kept ``generate_trace_legacy``.

Select globally with the ``REPRO_CACHE_ENGINE`` environment variable or per
run via the ``cache_engine`` argument of :class:`repro.sim.system.ServerSystem`
/ :func:`repro.sim.runner.run_trace`.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.common.params import CacheParams
from repro.cache.flat import FlatSetAssociativeCache
from repro.cache.replacement import ReplacementPolicy
from repro.cache.set_assoc import SetAssociativeCache

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINES",
    "ENGINE_ENV_VAR",
    "cache_engine_name",
    "make_cache_array",
]

#: Environment variable consulted when no explicit engine is requested.
ENGINE_ENV_VAR = "REPRO_CACHE_ENGINE"

#: Engine used when neither the caller nor the environment picks one.
DEFAULT_ENGINE = "flat"

ENGINES = ("flat", "dict")


def cache_engine_name(override: Optional[str] = None) -> str:
    """Resolve the active cache engine name.

    Priority: explicit ``override`` argument, then the ``REPRO_CACHE_ENGINE``
    environment variable, then :data:`DEFAULT_ENGINE`.  Unknown names fail
    loudly so configuration typos cannot silently fall back.
    """
    name = override
    if name is None:
        name = os.environ.get(ENGINE_ENV_VAR, "").strip().lower() or DEFAULT_ENGINE
    name = name.lower()
    if name not in ENGINES:
        raise ValueError(
            f"unknown cache engine {name!r}; known engines: {', '.join(ENGINES)}")
    return name


def make_cache_array(params: CacheParams, name: str = "cache",
                     policy: Optional[ReplacementPolicy] = None,
                     engine: Optional[str] = None):
    """Construct a cache array under the selected engine."""
    if cache_engine_name(engine) == "dict":
        return SetAssociativeCache(params, name=name, policy=policy)
    return FlatSetAssociativeCache(params, name=name, policy=policy)
