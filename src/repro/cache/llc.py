"""Shared last-level cache.

The LLC is the vantage point of every mechanism the paper studies: the stride
and SMS prefetchers, the VWQ eager-writeback engine and BuMP all sit next to
it and observe its access, miss, fill and eviction streams.  The model
therefore exposes those streams explicitly and keeps the bookkeeping needed
by the evaluation:

* hit/miss counts and the dirty-eviction (writeback) stream;
* prefetched-but-never-used blocks, which become *overfetch* when evicted;
* an operation counter approximating LLC bandwidth consumption, used by the
  on-chip overhead analysis of Figure 12 (demand lookups, fills, prefetch
  fills, eager-writeback probes all consume an LLC port slot).

The backing cache array is engine-selectable (see :mod:`repro.cache.engine`):
under the flat-array engine the demand path runs through
:meth:`demand_access`, which fuses the probe and the access into one
allocation-free call and accumulates the hot counters as plain ints (folded
into the :class:`StatGroup` lazily on read); under the dict engine every
method keeps the original object-at-a-time behaviour, preserving it as an
honest benchmark baseline.  Both engines produce bit-identical statistics.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.params import CacheParams
from repro.common.stats import StatGroup
from repro.cache.engine import make_cache_array
from repro.cache.flat import (
    FLAG_PREFETCHED,
    FLAG_USED,
    FlatSetAssociativeCache,
)
from repro.cache.set_assoc import CacheLine, EvictedLine


class LastLevelCache:
    """The shared, unified LLC of the simulated CMP."""

    def __init__(self, params: CacheParams, engine: Optional[str] = None) -> None:
        self.params = params
        self._cache = make_cache_array(params, name="llc", engine=engine)
        self._flat = isinstance(self._cache, FlatSetAssociativeCache)
        self._stats = StatGroup("llc")
        # Hot counters pending aggregation into ``_stats`` (flat engine only;
        # the dict engine increments the StatGroup directly, as it always did).
        for attr, _key in self._PENDING_COUNTERS:
            setattr(self, attr, 0)

    #: (pending attribute, StatGroup key) pairs flushed by ``stats``.
    _PENDING_COUNTERS = (
        ("_p_traffic_ops", "traffic_ops"),
        ("_p_demand_hits", "demand_hits"),
        ("_p_demand_misses", "demand_misses"),
        ("_p_demand_fills", "demand_fills"),
        ("_p_prefetch_fills", "prefetch_fills"),
        ("_p_probe_ops", "probe_ops"),
        ("_p_evictions", "evictions"),
        ("_p_dirty_evictions", "dirty_evictions"),
        ("_p_overfetched_blocks", "overfetched_blocks"),
        ("_p_eager_cleaned_blocks", "eager_cleaned_blocks"),
    )

    @property
    def stats(self) -> StatGroup:
        """Wrapper-level counters (pending hot increments flushed)."""
        group = self._stats
        for attr, key in self._PENDING_COUNTERS:
            value = getattr(self, attr)
            if value:
                group.inc(key, value)
                setattr(self, attr, 0)
        return group

    # ------------------------------------------------------------------ #
    # Demand path
    # ------------------------------------------------------------------ #
    def access(self, block_address: int, is_write: bool) -> Optional[CacheLine]:
        """Demand access from a core (after the L1 filter).

        Returns the hit line or ``None`` on a miss.  The caller is responsible
        for fetching the block from memory and calling :meth:`fill`.
        """
        self._stats.inc("traffic_ops")
        line = self._cache.access(block_address, is_write=is_write)
        if line is None:
            self._stats.inc("demand_misses")
        else:
            self._stats.inc("demand_hits")
            if line.prefetched and not self._counted_as_used(line):
                # access() already flipped the used bit; nothing more to do.
                pass
        return line

    def demand_access(self, block_address: int, is_write: bool) -> Tuple[bool, bool]:
        """Fused probe + demand access: ``(hit, covered)``.

        ``covered`` is true when the block was resident as a
        prefetched-but-not-yet-used line before this access -- exactly what
        the split ``probe(...)`` + ``access(...)`` sequence observes, without
        materializing a line object on the flat engine.
        """
        if self._flat:
            self._p_traffic_ops += 1
            prior = self._cache.demand_access(block_address, is_write)
            if prior < 0:
                self._p_demand_misses += 1
                return False, False
            self._p_demand_hits += 1
            return True, prior & (FLAG_PREFETCHED | FLAG_USED) == FLAG_PREFETCHED
        resident = self._cache.lookup(block_address)
        covered = resident is not None and resident.prefetched and not resident.used
        line = self.access(block_address, is_write)
        return line is not None, covered

    @staticmethod
    def _counted_as_used(line: CacheLine) -> bool:
        return line.used

    def fill(self, block_address: int, dirty: bool = False, prefetched: bool = False,
             pc: int = 0, core: int = 0) -> Optional[EvictedLine]:
        """Install a block fetched from memory; return the victim, if any."""
        if self._flat:
            self._p_traffic_ops += 1
            if prefetched:
                self._p_prefetch_fills += 1
            else:
                self._p_demand_fills += 1
        else:
            self._stats.inc("traffic_ops")
            self._stats.inc("prefetch_fills" if prefetched else "demand_fills")
        victim = self._cache.fill(
            block_address, dirty=dirty, prefetched=prefetched, pc=pc, core=core
        )
        if victim is not None:
            if self._flat:
                self._p_evictions += 1
                if victim.dirty:
                    self._p_dirty_evictions += 1
                if victim.prefetched and not victim.used:
                    self._p_overfetched_blocks += 1
            else:
                stats = self._stats
                stats.inc("evictions")
                if victim.dirty:
                    stats.inc("dirty_evictions")
                if victim.prefetched and not victim.used:
                    stats.inc("overfetched_blocks")
        return victim

    def write_from_l1(self, block_address: int, pc: int = 0, core: int = 0) -> Optional[EvictedLine]:
        """Receive a dirty block written back from an L1 cache.

        If the block is resident it is simply marked dirty; otherwise it is
        allocated dirty (the L1 held the only copy).  Returns any LLC victim
        displaced by the allocation.
        """
        if self._flat:
            self._p_traffic_ops += 1
            if self._cache.touch_set_dirty(block_address):
                return None
            return self.fill(block_address, dirty=True, pc=pc, core=core)
        self._stats.inc("traffic_ops")
        line = self._cache.lookup(block_address, touch=True)
        if line is not None:
            line.dirty = True
            return None
        return self.fill(block_address, dirty=True, pc=pc, core=core)

    # ------------------------------------------------------------------ #
    # Probes used by prefetchers and eager-writeback engines
    # ------------------------------------------------------------------ #
    def contains(self, block_address: int) -> bool:
        """Non-allocating presence check (does not update LRU)."""
        return self._cache.contains(block_address)

    def probe(self, block_address: int, count_traffic: bool = True) -> Optional[CacheLine]:
        """Non-allocating lookup used by eager-writeback engines.

        VWQ and BuMP's writeback generation logic probe the LLC for a
        region's other blocks; each probe consumes LLC bandwidth, which the
        overhead analysis accounts for.
        """
        if count_traffic:
            if self._flat:
                self._p_traffic_ops += 1
                self._p_probe_ops += 1
            else:
                self._stats.inc("traffic_ops")
                self._stats.inc("probe_ops")
        return self._cache.lookup(block_address)

    def clean(self, block_address: int, count_traffic: bool = True) -> bool:
        """Clear the dirty bit of a resident block (eager writeback).

        Returns True when the block was resident and dirty, i.e. a writeback
        to DRAM was actually generated for it.
        """
        if self._flat:
            if count_traffic:
                self._p_traffic_ops += 1
            cleaned = self._cache.clean(block_address)
            if cleaned:
                self._p_eager_cleaned_blocks += 1
            return cleaned
        if count_traffic:
            self._stats.inc("traffic_ops")
        cleaned = self._cache.clean(block_address)
        if cleaned:
            self._stats.inc("eager_cleaned_blocks")
        return cleaned

    def invalidate(self, block_address: int) -> Optional[CacheLine]:
        """Remove a block from the LLC (test helper)."""
        return self._cache.invalidate(block_address)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def resident_count(self) -> int:
        """Number of blocks currently resident in the LLC."""
        return self._cache.resident_count()

    def dirty_blocks_in_region(self, region_base: int, region_size: int) -> List[int]:
        """Block addresses inside a region that are resident and dirty."""
        return self._cache.dirty_blocks_in_region(region_base, region_size)

    @property
    def demand_hit_ratio(self) -> float:
        """Fraction of demand accesses that hit in the LLC."""
        stats = self.stats
        total = stats["demand_hits"] + stats["demand_misses"]
        if total == 0:
            return 0.0
        return stats["demand_hits"] / total

    @property
    def array_stats(self) -> StatGroup:
        """Statistics of the underlying cache array (fills, evictions, ...)."""
        return self._cache.stats
