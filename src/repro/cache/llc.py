"""Shared last-level cache.

The LLC is the vantage point of every mechanism the paper studies: the stride
and SMS prefetchers, the VWQ eager-writeback engine and BuMP all sit next to
it and observe its access, miss, fill and eviction streams.  The model
therefore exposes those streams explicitly and keeps the bookkeeping needed
by the evaluation:

* hit/miss counts and the dirty-eviction (writeback) stream;
* prefetched-but-never-used blocks, which become *overfetch* when evicted;
* an operation counter approximating LLC bandwidth consumption, used by the
  on-chip overhead analysis of Figure 12 (demand lookups, fills, prefetch
  fills, eager-writeback probes all consume an LLC port slot).
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.params import CacheParams
from repro.common.stats import StatGroup
from repro.cache.set_assoc import CacheLine, EvictedLine, SetAssociativeCache


class LastLevelCache:
    """The shared, unified LLC of the simulated CMP."""

    def __init__(self, params: CacheParams) -> None:
        self.params = params
        self._cache = SetAssociativeCache(params, name="llc")
        self.stats = StatGroup("llc")

    # ------------------------------------------------------------------ #
    # Demand path
    # ------------------------------------------------------------------ #
    def access(self, block_address: int, is_write: bool) -> Optional[CacheLine]:
        """Demand access from a core (after the L1 filter).

        Returns the hit line or ``None`` on a miss.  The caller is responsible
        for fetching the block from memory and calling :meth:`fill`.
        """
        self.stats.inc("traffic_ops")
        line = self._cache.access(block_address, is_write=is_write)
        if line is None:
            self.stats.inc("demand_misses")
        else:
            self.stats.inc("demand_hits")
            if line.prefetched and not self._counted_as_used(line):
                # access() already flipped the used bit; nothing more to do.
                pass
        return line

    @staticmethod
    def _counted_as_used(line: CacheLine) -> bool:
        return line.used

    def fill(self, block_address: int, dirty: bool = False, prefetched: bool = False,
             pc: int = 0, core: int = 0) -> Optional[EvictedLine]:
        """Install a block fetched from memory; return the victim, if any."""
        self.stats.inc("traffic_ops")
        self.stats.inc("prefetch_fills" if prefetched else "demand_fills")
        victim = self._cache.fill(
            block_address, dirty=dirty, prefetched=prefetched, pc=pc, core=core
        )
        if victim is not None:
            self.stats.inc("evictions")
            if victim.dirty:
                self.stats.inc("dirty_evictions")
            if victim.prefetched and not victim.used:
                self.stats.inc("overfetched_blocks")
        return victim

    def write_from_l1(self, block_address: int, pc: int = 0, core: int = 0) -> Optional[EvictedLine]:
        """Receive a dirty block written back from an L1 cache.

        If the block is resident it is simply marked dirty; otherwise it is
        allocated dirty (the L1 held the only copy).  Returns any LLC victim
        displaced by the allocation.
        """
        self.stats.inc("traffic_ops")
        line = self._cache.lookup(block_address, touch=True)
        if line is not None:
            line.dirty = True
            return None
        return self.fill(block_address, dirty=True, pc=pc, core=core)

    # ------------------------------------------------------------------ #
    # Probes used by prefetchers and eager-writeback engines
    # ------------------------------------------------------------------ #
    def contains(self, block_address: int) -> bool:
        """Non-allocating presence check (does not update LRU)."""
        return self._cache.contains(block_address)

    def probe(self, block_address: int, count_traffic: bool = True) -> Optional[CacheLine]:
        """Non-allocating lookup used by eager-writeback engines.

        VWQ and BuMP's writeback generation logic probe the LLC for a
        region's other blocks; each probe consumes LLC bandwidth, which the
        overhead analysis accounts for.
        """
        if count_traffic:
            self.stats.inc("traffic_ops")
            self.stats.inc("probe_ops")
        return self._cache.lookup(block_address)

    def clean(self, block_address: int, count_traffic: bool = True) -> bool:
        """Clear the dirty bit of a resident block (eager writeback).

        Returns True when the block was resident and dirty, i.e. a writeback
        to DRAM was actually generated for it.
        """
        if count_traffic:
            self.stats.inc("traffic_ops")
        cleaned = self._cache.clean(block_address)
        if cleaned:
            self.stats.inc("eager_cleaned_blocks")
        return cleaned

    def invalidate(self, block_address: int) -> Optional[CacheLine]:
        """Remove a block from the LLC (test helper)."""
        return self._cache.invalidate(block_address)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def resident_count(self) -> int:
        """Number of blocks currently resident in the LLC."""
        return self._cache.resident_count()

    def dirty_blocks_in_region(self, region_base: int, region_size: int) -> List[int]:
        """Block addresses inside a region that are resident and dirty."""
        lines = self._cache.resident_blocks_in_region(region_base, region_size)
        return [line.block_address for line in lines if line.dirty]

    @property
    def demand_hit_ratio(self) -> float:
        """Fraction of demand accesses that hit in the LLC."""
        total = self.stats["demand_hits"] + self.stats["demand_misses"]
        if total == 0:
            return 0.0
        return self.stats["demand_hits"] / total

    @property
    def array_stats(self) -> StatGroup:
        """Statistics of the underlying cache array (fills, evictions, ...)."""
        return self._cache.stats
