"""Region Density Tracking Table (RDTT).

The RDTT monitors the LLC access and eviction streams to learn, for every
*active* region (the interval between the region's first access and the first
LLC eviction of one of its blocks), which of its cache blocks were accessed
and whether any were modified.

Internally it is split exactly as Section IV.B describes:

* the **trigger table** holds regions with a single accessed block, recording
  the (PC, offset) of that first (triggering) access and a dirty bit;
* the **density table** holds regions with more than one accessed block,
  adding a per-block access bit-vector ("pattern").

A region *terminates* when one of its blocks is evicted from the LLC, or when
its tracking entry is displaced by a table conflict.  Termination produces a
:class:`TerminatedRegion` describing the observed density, which the BuMP
engine uses to train the bulk history table and the dirty region table.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from repro.common.assoc_table import AssociativeTable
from repro.common.stats import StatGroup
from repro.core.config import BuMPConfig


class TerminationReason(Enum):
    """Why an active region stopped being tracked."""

    EVICTION = "eviction"
    CONFLICT = "conflict"


@dataclass
class RegionEntry:
    """Tracking state of one active region."""

    region: int
    trigger_pc: int
    trigger_offset: int
    pattern: int
    dirty: bool = False

    def accessed_blocks(self) -> int:
        """Number of distinct blocks accessed so far."""
        return bin(self.pattern).count("1")


@dataclass
class TerminatedRegion:
    """Summary handed to the BuMP engine when a region terminates."""

    entry: RegionEntry
    reason: TerminationReason
    #: For eviction-triggered terminations, whether the evicted block was dirty.
    evicted_dirty: bool = False

    def is_high_density(self, threshold_blocks: int) -> bool:
        """True when the region reached the high-density threshold."""
        return self.entry.accessed_blocks() >= threshold_blocks


class RegionDensityTracker:
    """The RDTT: trigger table + density table."""

    def __init__(self, config: BuMPConfig = None) -> None:
        self.config = config if config is not None else BuMPConfig()
        self.trigger = AssociativeTable(
            self.config.trigger_entries, self.config.associativity, name="trigger"
        )
        self.density = AssociativeTable(
            self.config.density_entries, self.config.associativity, name="density"
        )
        self.stats = StatGroup("rdtt")

    # ------------------------------------------------------------------ #
    # LLC access stream
    # ------------------------------------------------------------------ #
    def observe_access(self, block_address: int, pc: int,
                       is_write: bool) -> List[TerminatedRegion]:
        """Record a demand LLC access; return regions terminated by conflicts."""
        config = self.config
        region = config.region_of(block_address)
        offset = config.offset_of(block_address)
        terminated: List[TerminatedRegion] = []
        self.stats.inc("accesses")

        entry = self.density.lookup(region)
        if entry is not None:
            entry.pattern |= 1 << offset
            entry.dirty = entry.dirty or is_write
            return terminated

        entry = self.trigger.remove(region)
        if entry is not None:
            # Second distinct access: promote the region to the density table.
            entry.pattern |= 1 << offset
            entry.dirty = entry.dirty or is_write
            victim = self.density.insert(region, entry)
            self.stats.inc("promotions")
            if victim is not None:
                self.stats.inc("density_conflicts")
                terminated.append(
                    TerminatedRegion(entry=victim[1], reason=TerminationReason.CONFLICT)
                )
            return terminated

        # First access to the region: allocate in the trigger table.
        new_entry = RegionEntry(
            region=region,
            trigger_pc=pc,
            trigger_offset=offset,
            pattern=1 << offset,
            dirty=is_write,
        )
        victim = self.trigger.insert(region, new_entry)
        self.stats.inc("allocations")
        if victim is not None:
            # A displaced single-access region is by definition low density;
            # report it anyway so callers can count it.
            self.stats.inc("trigger_conflicts")
            terminated.append(
                TerminatedRegion(entry=victim[1], reason=TerminationReason.CONFLICT)
            )
        return terminated

    # ------------------------------------------------------------------ #
    # LLC eviction stream
    # ------------------------------------------------------------------ #
    def observe_eviction(self, block_address: int,
                         dirty: bool) -> Optional[TerminatedRegion]:
        """Record an LLC eviction; return the terminated region if it was active."""
        region = self.config.region_of(block_address)
        self.stats.inc("evictions_seen")

        entry = self.density.remove(region)
        if entry is None:
            entry = self.trigger.remove(region)
        if entry is None:
            return None
        self.stats.inc("eviction_terminations")
        return TerminatedRegion(
            entry=entry, reason=TerminationReason.EVICTION, evicted_dirty=dirty
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def lookup_active(self, block_address: int) -> Optional[RegionEntry]:
        """Return the active entry tracking ``block_address``'s region, if any."""
        region = self.config.region_of(block_address)
        entry = self.density.lookup(region, touch=False)
        if entry is not None:
            return entry
        return self.trigger.lookup(region, touch=False)

    @property
    def active_regions(self) -> int:
        """Number of regions currently tracked in either table."""
        return len(self.trigger) + len(self.density)

    def storage_bits(self) -> int:
        """Storage of both tables.

        Trigger entries hold a region tag, the PC/offset tuple and a dirty
        bit; density entries add the per-block pattern.  With the default
        geometry this lands at roughly 2.5KB + 3KB, matching Section IV.D.
        """
        tag_bits = 30
        pc_offset_bits = 32 + self.config.offset_bits
        trigger_bits = self.config.trigger_entries * (tag_bits + pc_offset_bits + 2)
        density_bits = self.config.density_entries * (
            tag_bits + pc_offset_bits + self.config.blocks_per_region + 2
        )
        return trigger_bits + density_bits
