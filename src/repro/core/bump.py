"""The BuMP engine: bulk memory access prediction and streaming.

This class wires the RDTT, BHT and DRT together exactly as Figure 6 of the
paper describes and exposes the result as an LLC agent:

* every demand LLC access (read or write) trains the RDTT;
* every LLC miss probes the BHT with the (PC, offset) of the missing access;
  a hit triggers a *bulk read* of the region's other blocks;
* every LLC eviction terminates the victim's active region (if any); a
  terminated high-density region trains the BHT, and a terminated
  high-density *modified* region either triggers *bulk writebacks* right away
  (when the termination was a dirty eviction) or is remembered in the DRT;
* every dirty LLC eviction that does not belong to an active region probes
  the DRT; a hit triggers bulk writebacks and consumes the entry.

The engine never touches the LLC or memory directly: it returns the block
addresses to fetch or write back in an :class:`AgentActions` bundle and the
system model performs (and attributes) the traffic.
"""

from __future__ import annotations

from typing import List

from repro.common.request import LLCRequest
from repro.common.stats import StatGroup
from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.set_assoc import EvictedLine
from repro.core.bht import BulkHistoryTable
from repro.core.config import BuMPConfig
from repro.core.drt import DirtyRegionTable
from repro.core.rdtt import RegionDensityTracker, TerminatedRegion, TerminationReason


class BuMPPredictor(LLCAgent):
    """Bulk Memory Access Prediction and Streaming."""

    name = "bump"

    def __init__(self, config: BuMPConfig = None) -> None:
        self.config = config if config is not None else BuMPConfig()
        self.rdtt = RegionDensityTracker(self.config)
        self.bht = BulkHistoryTable(self.config)
        self.drt = DirtyRegionTable(self.config)
        self.stats = StatGroup("bump")

    # ------------------------------------------------------------------ #
    # LLC access stream (read and write requests after the L1 filter)
    # ------------------------------------------------------------------ #
    def on_access(self, request: LLCRequest, hit: bool) -> AgentActions:
        """Train the RDTT with a demand access; handle conflict terminations."""
        actions = AgentActions()
        self.stats.inc("rdtt_accesses")
        terminated = self.rdtt.observe_access(
            request.block_address, request.pc, request.is_store
        )
        for region in terminated:
            self._handle_termination(region, actions)
        return actions

    # ------------------------------------------------------------------ #
    # LLC miss stream (bulk read prediction)
    # ------------------------------------------------------------------ #
    def on_miss(self, request: LLCRequest) -> AgentActions:
        """Probe the BHT; on a hit, bulk-read the region's other blocks."""
        actions = AgentActions()
        config = self.config
        offset = config.offset_of(request.block_address)
        self.stats.inc("bht_probes")
        if not self.bht.predict(request.pc, offset):
            return actions

        self.stats.inc("bulk_read_triggers")
        region = config.region_of(request.block_address)
        for block in config.region_blocks(region):
            if block != request.block_address:
                actions.fetch_blocks.append(block)
        self.stats.inc("bulk_read_blocks_requested", len(actions.fetch_blocks))
        return actions

    # ------------------------------------------------------------------ #
    # LLC eviction stream (region termination and bulk writebacks)
    # ------------------------------------------------------------------ #
    def on_eviction(self, victim: EvictedLine) -> AgentActions:
        """Terminate the victim's region and generate bulk writebacks."""
        actions = AgentActions()
        self.stats.inc("evictions_observed")
        terminated = self.rdtt.observe_eviction(victim.block_address, victim.dirty)

        if terminated is not None:
            self._handle_termination(terminated, actions,
                                     evicted_block=victim.block_address)
            return actions

        if victim.dirty:
            region = self.config.region_of(victim.block_address)
            self.stats.inc("drt_probes")
            if self.drt.probe_and_invalidate(region):
                self._generate_bulk_writebacks(region, victim.block_address, actions)
        return actions

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _handle_termination(self, terminated: TerminatedRegion, actions: AgentActions,
                            evicted_block: int = None) -> None:
        entry = terminated.entry
        high_density = terminated.is_high_density(self.config.density_threshold_blocks)
        self.stats.inc("regions_terminated")
        if not high_density:
            self.stats.inc("regions_low_density")
            return

        self.stats.inc("regions_high_density")
        self.bht.train(entry.trigger_pc, entry.trigger_offset)

        if not entry.dirty:
            return
        self.stats.inc("regions_high_density_modified")

        if terminated.reason is TerminationReason.EVICTION and terminated.evicted_dirty:
            # The first dirty eviction of a high-density modified region:
            # stream the rest of the region's writebacks right now.
            self._generate_bulk_writebacks(entry.region, evicted_block, actions)
        else:
            # Terminated by a conflict or by a clean eviction: remember the
            # region so a later dirty eviction can trigger the bulk writeback.
            self.drt.insert(entry.region)

    def _generate_bulk_writebacks(self, region: int, excluded_block: int,
                                  actions: AgentActions) -> None:
        self.stats.inc("bulk_writeback_triggers")
        blocks: List[int] = []
        for block in self.config.region_blocks(region):
            if block != excluded_block:
                blocks.append(block)
        actions.writeback_blocks.extend(blocks)
        self.stats.inc("bulk_writeback_blocks_requested", len(blocks))

    # ------------------------------------------------------------------ #
    # Overheads
    # ------------------------------------------------------------------ #
    def storage_bits(self) -> int:
        """Total storage of BuMP's structures (~14KB at the default geometry)."""
        return (self.rdtt.storage_bits() + self.bht.storage_bits()
                + self.drt.storage_bits())

    def structure_access_counts(self) -> dict:
        """Access counts used by the on-chip energy overhead analysis."""
        return {
            "rdtt": self.stats["rdtt_accesses"] + self.stats["evictions_observed"],
            "bht_drt": self.stats["bht_probes"] + self.stats["drt_probes"]
                        + self.bht.stats["trainings"] + self.drt.stats["insertions"],
        }
