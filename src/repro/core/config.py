"""Configuration of the BuMP engine (Section IV.D of the paper).

The defaults reproduce the paper's chosen design point; Figure 11's design
space exploration sweeps ``region_size_bytes`` over {512, 1024, 2048} and the
density threshold over {25%, 50%, 75%, 100%} of the region's blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.common.addressing import BLOCK_SIZE


@dataclass
class BuMPConfig:
    """Structural parameters of BuMP."""

    #: Size of the tracked memory region; also the bulk-transfer unit.
    region_size_bytes: int = 1024
    #: Number of accessed blocks at or above which a region counts as
    #: high-density.  The paper's default is eight blocks of a 1KB region (50%).
    density_threshold_blocks: int = 8
    #: Trigger-table entries (regions with exactly one accessed block so far).
    trigger_entries: int = 256
    #: Density-table entries (regions with more than one accessed block).
    density_entries: int = 256
    #: Bulk history table entries (one per learned (PC, offset) tuple).
    bht_entries: int = 1024
    #: Dirty region table entries (cache-resident high-density modified regions).
    drt_entries: int = 1024
    #: Associativity shared by all four structures.
    associativity: int = 16

    def __post_init__(self) -> None:
        if self.region_size_bytes % BLOCK_SIZE != 0:
            raise ValueError("region size must be a whole number of cache blocks")
        if self.blocks_per_region < 2:
            raise ValueError("a region must span at least two cache blocks")
        if not 1 <= self.density_threshold_blocks <= self.blocks_per_region:
            raise ValueError("density threshold must fall within the region")

    @property
    def blocks_per_region(self) -> int:
        """Number of cache blocks in one region."""
        return self.region_size_bytes // BLOCK_SIZE

    @property
    def offset_bits(self) -> int:
        """Bits needed to name a block within a region (4 for 1KB regions)."""
        return (self.blocks_per_region - 1).bit_length()

    @property
    def density_threshold_fraction(self) -> float:
        """The density threshold as a fraction of the region's blocks."""
        return self.density_threshold_blocks / self.blocks_per_region

    def with_threshold_fraction(self, fraction: float) -> "BuMPConfig":
        """Return a copy with the threshold set to ``fraction`` of the region."""
        blocks = max(1, round(fraction * self.blocks_per_region))
        return replace(self, density_threshold_blocks=blocks)

    def with_region_size(self, region_size_bytes: int,
                         threshold_fraction: float = None) -> "BuMPConfig":
        """Return a copy with a different region size.

        When ``threshold_fraction`` is omitted the current fractional
        threshold is preserved (the paper's sweep holds the fraction fixed
        while varying the region size).
        """
        if threshold_fraction is None:
            threshold_fraction = self.density_threshold_fraction
        blocks = max(1, round(threshold_fraction * (region_size_bytes // BLOCK_SIZE)))
        return replace(self, region_size_bytes=region_size_bytes,
                       density_threshold_blocks=blocks)

    def region_of(self, block_address: int) -> int:
        """Region number of a block address at this configuration's region size."""
        return block_address // self.region_size_bytes

    def offset_of(self, block_address: int) -> int:
        """Block offset of a block address within its region."""
        return (block_address % self.region_size_bytes) // BLOCK_SIZE

    def region_blocks(self, region: int) -> list:
        """Block addresses of every block in ``region``."""
        base = region * self.region_size_bytes
        return [base + i * BLOCK_SIZE for i in range(self.blocks_per_region)]


DEFAULT_BUMP_CONFIG = BuMPConfig()
