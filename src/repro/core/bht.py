"""Bulk History Table (BHT).

The BHT holds one entry per (PC, offset) tuple that has been observed to
trigger a high-density region.  It is trained by the RDTT when a high-density
region terminates, and probed on every LLC miss: a hit predicts that the miss
falls into a high-density region and causes the access generation logic to
issue a bulk read of the region's remaining blocks (Section IV.B).

Entries carry only a valid bit in the paper; here each entry also remembers
how many times it was trained and how many bulk transfers it triggered so the
experiment harness can report predictor behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.assoc_table import AssociativeTable
from repro.common.stats import StatGroup
from repro.core.config import BuMPConfig


@dataclass
class BHTEntry:
    """Metadata stored for one learned (PC, offset) tuple."""

    trainings: int = 1
    triggers: int = 0


class BulkHistoryTable:
    """Predicts whether an LLC miss falls into a high-density region."""

    def __init__(self, config: BuMPConfig = None) -> None:
        self.config = config if config is not None else BuMPConfig()
        self.table: AssociativeTable[Tuple[int, int], BHTEntry] = AssociativeTable(
            self.config.bht_entries, self.config.associativity, name="bht"
        )
        self.stats = StatGroup("bht")

    def train(self, pc: int, offset: int) -> None:
        """Record that (``pc``, ``offset``) triggered a high-density region."""
        key = (pc, offset)
        entry = self.table.lookup(key)
        self.stats.inc("trainings")
        if entry is not None:
            entry.trainings += 1
            return
        self.table.insert(key, BHTEntry())

    def predict(self, pc: int, offset: int) -> bool:
        """True when an LLC miss from (``pc``, ``offset``) should bulk-fetch."""
        entry = self.table.lookup((pc, offset))
        self.stats.inc("probes")
        if entry is None:
            return False
        entry.triggers += 1
        self.stats.inc("hits")
        return True

    def entry_for(self, pc: int, offset: int) -> Optional[BHTEntry]:
        """Inspect the entry for a tuple without touching statistics."""
        return self.table.lookup((pc, offset), touch=False)

    @property
    def hit_ratio(self) -> float:
        """Fraction of LLC-miss probes that predicted a bulk transfer."""
        return self.stats.ratio("hits", "probes")

    def storage_bits(self) -> int:
        """Storage: PC tag + offset + valid per entry (~4.5KB at the default size)."""
        bits_per_entry = 32 + self.config.offset_bits + 1
        return self.config.bht_entries * bits_per_entry
