"""BuMP: Bulk Memory Access Prediction and Streaming (the paper's contribution).

This package implements the three shared structures Figure 6 of the paper
places next to the LLC, plus the glue that turns their predictions into bulk
transfers:

* :class:`repro.core.rdtt.RegionDensityTracker` -- the *region density
  tracking table* (RDTT), internally split into a trigger table (regions with
  a single accessed block) and a density table (regions with more than one
  accessed block, tracking a per-block access pattern and a dirty bit).
* :class:`repro.core.bht.BulkHistoryTable` -- prediction metadata keyed by
  the (PC, offset) of the instruction that triggered a high-density region.
* :class:`repro.core.drt.DirtyRegionTable` -- cache-resident high-density
  *modified* regions whose tracking entry was displaced before their first
  dirty eviction.
* :class:`repro.core.bump.BuMPPredictor` -- the complete engine: it monitors
  LLC accesses, misses and evictions, trains the tables, and generates bulk
  read and bulk writeback requests.
* :class:`repro.core.fullregion.FullRegionStreamer` -- the indiscriminate
  "Full-region" design the paper uses as a foil (bulk-transfer every region,
  no density prediction).

The default geometry matches Section IV.D: 1KB regions, a density threshold
of eight blocks, 256-entry trigger and density tables, 1024-entry BHT and
DRT, all 16-way set-associative, for roughly 14KB of storage.
"""

from repro.core.bht import BulkHistoryTable
from repro.core.bump import BuMPPredictor
from repro.core.config import BuMPConfig
from repro.core.drt import DirtyRegionTable
from repro.core.fullregion import FullRegionStreamer
from repro.core.rdtt import RegionDensityTracker, RegionEntry, TerminationReason

__all__ = [
    "BulkHistoryTable",
    "BuMPPredictor",
    "BuMPConfig",
    "DirtyRegionTable",
    "FullRegionStreamer",
    "RegionDensityTracker",
    "RegionEntry",
    "TerminationReason",
]
