"""The indiscriminate "Full-region" streaming design (the paper's foil).

Full-region performs bulk transfers without any density prediction: every LLC
miss fetches the whole region, and every dirty LLC eviction writes back the
whole region.  Section V shows why this is a bad idea -- coverage rises a
little over BuMP, but overfetch explodes (4.3x extra reads on average), the
LLC thrashes, memory bandwidth saturates, and both energy and performance
collapse on bandwidth-hungry workloads.  Reproducing that collapse is part of
validating that the simulator punishes indiscriminate streaming the way real
memory systems do.
"""

from __future__ import annotations

from repro.common.request import LLCRequest
from repro.common.stats import StatGroup
from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.set_assoc import EvictedLine
from repro.core.config import BuMPConfig


class FullRegionStreamer(LLCAgent):
    """Bulk-transfer every region on every miss and every dirty eviction."""

    name = "full_region"

    def __init__(self, config: BuMPConfig = None) -> None:
        self.config = config if config is not None else BuMPConfig()
        self.stats = StatGroup("full_region")

    def on_miss(self, request: LLCRequest) -> AgentActions:
        """Fetch the whole region around every LLC miss."""
        actions = AgentActions()
        region = self.config.region_of(request.block_address)
        for block in self.config.region_blocks(region):
            if block != request.block_address:
                actions.fetch_blocks.append(block)
        self.stats.inc("bulk_read_triggers")
        self.stats.inc("bulk_read_blocks_requested", len(actions.fetch_blocks))
        return actions

    def on_eviction(self, victim: EvictedLine) -> AgentActions:
        """Write back the whole region around every dirty eviction."""
        actions = AgentActions()
        if not victim.dirty:
            return actions
        region = self.config.region_of(victim.block_address)
        for block in self.config.region_blocks(region):
            if block != victim.block_address:
                actions.writeback_blocks.append(block)
        self.stats.inc("bulk_writeback_triggers")
        self.stats.inc("bulk_writeback_blocks_requested", len(actions.writeback_blocks))
        return actions

    def storage_bits(self) -> int:
        """Full-region needs no prediction state at all."""
        return 0
