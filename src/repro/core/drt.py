"""Dirty Region Table (DRT).

Most density-table terminations happen because of table conflicts, *before*
the region's first dirty LLC eviction (Section IV.C).  To still be able to
stream such a region's writebacks in bulk later, BuMP records terminated
high-density *modified* regions in the DRT, indexed by region address.

On a dirty LLC eviction the DRT is probed; a hit means the evicted block
belongs to a known high-density modified region, so the writeback generation
logic issues bulk writebacks for the region's remaining dirty blocks and the
entry is invalidated.
"""

from __future__ import annotations

from repro.common.assoc_table import AssociativeTable
from repro.common.stats import StatGroup
from repro.core.config import BuMPConfig


class DirtyRegionTable:
    """Tracks cache-resident high-density modified regions."""

    def __init__(self, config: BuMPConfig = None) -> None:
        self.config = config if config is not None else BuMPConfig()
        self.table: AssociativeTable[int, bool] = AssociativeTable(
            self.config.drt_entries, self.config.associativity, name="drt"
        )
        self.stats = StatGroup("drt")

    def insert(self, region: int) -> None:
        """Record ``region`` as a high-density modified region."""
        self.stats.inc("insertions")
        victim = self.table.insert(region, True)
        if victim is not None:
            self.stats.inc("conflict_evictions")

    def probe_and_invalidate(self, region: int) -> bool:
        """Probe on a dirty eviction; a hit consumes (invalidates) the entry."""
        self.stats.inc("probes")
        if self.table.remove(region) is None:
            return False
        self.stats.inc("hits")
        return True

    def contains(self, region: int) -> bool:
        """Presence check that does not consume the entry (test helper)."""
        return self.table.contains(region)

    def invalidate(self, region: int) -> None:
        """Drop a region (used when its blocks all left the LLC)."""
        self.table.remove(region)

    def __len__(self) -> int:
        return len(self.table)

    @property
    def hit_ratio(self) -> float:
        """Fraction of dirty-eviction probes that found a tracked region."""
        return self.stats.ratio("hits", "probes")

    def storage_bits(self) -> int:
        """Storage: region tag + valid per entry (~4.25KB at the default size)."""
        bits_per_entry = 33
        return self.config.drt_entries * bits_per_entry
