"""Reference values reported by the paper, for side-by-side comparison.

These numbers are transcribed from the text, tables and (approximately) the
figures of the MICRO 2014 paper.  They are used by the reporting module and by
EXPERIMENTS.md to show paper-vs-measured rows, and by a handful of tests that
check the *shape* of the reproduction (orderings and rough magnitudes), never
exact equality -- the reproduction runs synthetic traces on an analytic
simulator, so absolute values are not expected to match.
"""

from __future__ import annotations

#: Canonical workload order used by every figure.
WORKLOAD_ORDER = [
    "data_serving",
    "media_streaming",
    "online_analytics",
    "software_testing",
    "web_search",
    "web_serving",
]

#: Figure 2 / 13 -- row-buffer hit ratio averaged across workloads.
ROW_BUFFER_HIT_RATIO_AVG = {
    "base_open": 0.21,
    "sms": 0.30,
    "vwq": 0.36,
    "sms_vwq": 0.44,
    "bump": 0.55,
    "ideal": 0.77,
}

#: Table IV -- BuMP's row-buffer hit ratio per workload.
TABLE4_BUMP_ROW_HITS = {
    "data_serving": 0.54,
    "media_streaming": 0.64,
    "online_analytics": 0.57,
    "software_testing": 0.34,
    "web_search": 0.62,
    "web_serving": 0.56,
}

#: Table I -- fraction of a high-density region's blocks modified after its
#: first dirty LLC eviction.
TABLE1_LATE_WRITES = {
    "data_serving": 0.08,
    "media_streaming": 0.11,
    "online_analytics": 0.06,
    "software_testing": 0.03,
    "web_search": 0.06,
    "web_serving": 0.09,
}

#: Section III -- memory traffic characterisation ranges (min, max).
WRITE_TRAFFIC_SHARE_RANGE = (0.21, 0.38)
READ_HIGH_DENSITY_RANGE = (0.57, 0.75)
WRITE_HIGH_DENSITY_RANGE = (0.62, 0.86)
HIGH_DENSITY_ACCESS_RANGE = (0.59, 0.79)

#: Figure 8 -- BuMP prediction accuracy (text of Section V.B).
BUMP_READ_COVERAGE_RANGE = (0.28, 0.55)
BUMP_READ_OVERFETCH_RANGE = (0.05, 0.22)
BUMP_WRITE_COVERAGE_AVG = 0.63
FULL_REGION_READ_OVERFETCH_AVG = 4.3
FULL_REGION_WRITE_COVERAGE_AVG = 0.73

#: Figure 9 / Section V.C -- memory energy per access improvements.
BUMP_ENERGY_REDUCTION_VS_OPEN = 0.23
BUMP_ENERGY_REDUCTION_VS_CLOSE = 0.34
OPEN_VS_CLOSE_ENERGY_REDUCTION = 0.14
BUMP_ENERGY_REDUCTION_VS_SMS = 0.20
BUMP_ENERGY_REDUCTION_VS_VWQ = 0.13
BUMP_ENERGY_REDUCTION_VS_SMS_VWQ = 0.10

#: Figure 10 / Section V.D -- throughput improvements over Base-close.
BUMP_SPEEDUP_OVER_CLOSE = 0.09
BUMP_SPEEDUP_OVER_OPEN = 0.11
FULL_REGION_SLOWDOWN = -0.67

#: Figure 1 -- memory share of total server energy.
MEMORY_ENERGY_SHARE_RANGE = (0.48, 0.62)

#: Figure 11 -- chosen design point.
BEST_REGION_SIZE = 1024
BEST_DENSITY_THRESHOLD = 0.5

#: Figure 12 / Section V.F -- on-chip overheads of BuMP.
LLC_TRAFFIC_OVERHEAD_AVG = 0.10
NOC_TRAFFIC_OVERHEAD_AVG = 0.11
LLC_ENERGY_OVERHEAD_AVG = 0.07
NOC_ENERGY_OVERHEAD_AVG = 0.13
BUMP_STORAGE_KB = 14
BUMP_POWER_MW = 50
