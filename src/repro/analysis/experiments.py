"""One experiment function per figure/table of the paper's evaluation.

Every function returns plain dictionaries shaped like the corresponding
figure's data series so the benchmark harness, the examples and EXPERIMENTS.md
can consume them directly.  Results of individual (workload, configuration)
simulations are cached in-process: several figures reuse the same runs (e.g.
Figures 2, 9, 10 and 13 all need the open-row baseline), and re-simulating
them would dominate the harness run time.

The default trace length is read from the ``REPRO_EXPERIMENT_ACCESSES``
environment variable so CI or a laptop can dial the fidelity/runtime
trade-off without touching code.

Simulations are executed through the campaign engine (:mod:`repro.exec`):
``_run`` funnels single runs through :func:`repro.exec.campaign.run_job` so
they hit the on-disk artifact store when ``REPRO_ARTIFACT_DIR`` is set, and
:func:`run_experiment_campaign` fans the whole figure matrix out across
worker processes and seeds the in-process cache the figure functions read.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.config import BuMPConfig
from repro.exec.campaign import CampaignResult, run_campaign, run_job
from repro.exec.jobs import JobGrid, JobSpec
from repro.exec.progress import CampaignProgress
from repro.exec.store import ArtifactStore, default_store
from repro.sim.config import SystemConfig, bump_system, named_configs
from repro.sim.results import SimulationResult
from repro.workloads.catalog import workload_names

#: Trace length used by the experiment harness (per workload, per system).
DEFAULT_ACCESSES = int(os.environ.get("REPRO_EXPERIMENT_ACCESSES", "240000"))
DEFAULT_SEED = int(os.environ.get("REPRO_EXPERIMENT_SEED", "42"))

_RESULT_CACHE: Dict[Tuple, SimulationResult] = {}


def clear_result_cache() -> None:
    """Drop all cached simulation results (used by tests)."""
    _RESULT_CACHE.clear()


def seed_result_cache(workload: str, config_key: str, num_accesses: int,
                      seed: int, result: SimulationResult) -> None:
    """Publish one result under the key the figure functions look up.

    This is the supported way for campaign-style precompute paths (the
    ablation studies, the benchmark harness) to warm this module's cache
    without reaching into its internals.
    """
    _RESULT_CACHE[(workload, config_key, num_accesses, seed)] = result


def cached_result(workload: str, config_key: str, num_accesses: int,
                  seed: int) -> Optional[SimulationResult]:
    """Return a cached result, or ``None`` when that cell has not run yet."""
    return _RESULT_CACHE.get((workload, config_key, num_accesses, seed))


def precompute_results(configs_by_key: Dict[str, SystemConfig],
                       workloads: Iterable[str],
                       num_accesses: Optional[int] = None,
                       seed: int = DEFAULT_SEED,
                       workers: int = 1,
                       store: Optional[ArtifactStore] = None,
                       progress: Optional[CampaignProgress] = None) -> CampaignResult:
    """Run a keyed (configuration x workload) grid as one campaign.

    Cells already present in the result cache are skipped; every simulated
    or store-restored cell is seeded back under its key, so the serial
    aggregation loops that follow are pure lookups.  This is the shared
    engine behind :func:`run_experiment_campaign` sidekicks like
    :func:`precompute_design_space` and the ablation studies' ``workers=``
    support.
    """
    accesses = num_accesses if num_accesses is not None else DEFAULT_ACCESSES
    keyed_jobs = [
        (key, JobSpec(workload=workload, config=config, num_accesses=accesses,
                      seed=seed))
        for key, config in configs_by_key.items()
        for workload in workloads
        if cached_result(workload, key, accesses, seed) is None
    ]
    outcome = run_campaign([job for _, job in keyed_jobs],
                           store=store if store is not None else default_store(),
                           workers=workers, progress=progress)
    for (key, job), job_outcome in zip(keyed_jobs, outcome.outcomes):
        seed_result_cache(job.workload.name, key, accesses, seed,
                          job_outcome.result)
    return outcome


def design_space_accesses(num_accesses: Optional[int] = None) -> int:
    """Trace length of the Figure 11 sweep (half the default, floored).

    Single source of truth shared by the example report, the benchmark
    harness and the precompute path -- the sweep's cache cells only line up
    when every caller computes the same length.
    """
    accesses = num_accesses if num_accesses is not None else DEFAULT_ACCESSES
    return max(accesses // 2, 60_000)


def _run(workload: str, config: SystemConfig, config_key: Optional[str] = None,
         num_accesses: Optional[int] = None, seed: int = DEFAULT_SEED) -> SimulationResult:
    """Run (or fetch from the cache) one workload under one configuration."""
    accesses = num_accesses if num_accesses is not None else DEFAULT_ACCESSES
    key = (workload, config_key or config.name, accesses, seed)
    if key in _RESULT_CACHE:
        return _RESULT_CACHE[key]
    job = JobSpec(workload=workload, config=config, num_accesses=accesses, seed=seed)
    result = run_job(job, store=default_store())
    _RESULT_CACHE[key] = result
    return result


def run_experiment_campaign(workloads: Optional[Iterable[str]] = None,
                            systems: Optional[Iterable[str]] = None,
                            num_accesses: Optional[int] = None,
                            seed: int = DEFAULT_SEED,
                            workers: int = 1,
                            store: Optional[ArtifactStore] = None,
                            progress: Optional[CampaignProgress] = None) -> CampaignResult:
    """Precompute the (workload x system) figure matrix as one campaign.

    Results land in both the artifact store (when one is configured) and the
    in-process result cache, so every subsequent ``figureN_*`` call is a pure
    lookup.  ``systems`` defaults to the paper's eight evaluated
    configurations; extended (ablation) names are accepted too.
    """
    selected = _workloads(workloads)
    names = list(systems) if systems is not None else list(named_configs())
    configs = named_configs(names)
    accesses = num_accesses if num_accesses is not None else DEFAULT_ACCESSES
    grid = JobGrid(workloads=selected, configs=list(configs.values()),
                   seeds=(seed,), num_accesses=accesses)
    outcome = run_campaign(grid.expand(), store=store if store is not None
                           else default_store(), workers=workers, progress=progress)
    for job_outcome in outcome.outcomes:
        job = job_outcome.job
        seed_result_cache(job.workload.name, job.config.name, job.num_accesses,
                          job.seed, job_outcome.result)
    return outcome


def _workloads(workloads: Optional[Iterable[str]]) -> List[str]:
    return list(workloads) if workloads is not None else workload_names()


def _named(name: str) -> SystemConfig:
    return named_configs([name])[name]


# --------------------------------------------------------------------- #
# Figure 1 -- server energy breakdown
# --------------------------------------------------------------------- #
def figure1_energy_breakdown(workloads: Optional[Iterable[str]] = None,
                             num_accesses: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Relative server energy by component for the open-row baseline.

    Returns ``{workload: {component: share}}`` with the memory components
    split into activation, burst & I/O and background, exactly as Figure 1
    stacks them.
    """
    breakdowns = {}
    for workload in _workloads(workloads):
        result = _run(workload, _named("base_open"), num_accesses=num_accesses)
        breakdowns[workload] = result.energy.component_shares()
    return breakdowns


# --------------------------------------------------------------------- #
# Figure 2 -- row buffer hit ratio of baseline systems
# --------------------------------------------------------------------- #
def figure2_row_buffer_hit(workloads: Optional[Iterable[str]] = None,
                           num_accesses: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Row-buffer hit ratio of Base(-open), SMS, VWQ and the Ideal system."""
    systems = ["base_open", "sms", "vwq", "ideal"]
    table = {}
    for workload in _workloads(workloads):
        table[workload] = {
            name: _run(workload, _named(name), num_accesses=num_accesses).row_buffer_hit_ratio
            for name in systems
        }
    return table


# --------------------------------------------------------------------- #
# Figure 3 -- DRAM traffic decomposition
# --------------------------------------------------------------------- #
def figure3_traffic_breakdown(workloads: Optional[Iterable[str]] = None,
                              num_accesses: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Share of DRAM accesses that are load-triggered reads, store-triggered
    reads and writes (LLC writebacks), measured on the open-row baseline."""
    table = {}
    for workload in _workloads(workloads):
        result = _run(workload, _named("base_open"), num_accesses=num_accesses)
        loads = result.load_triggered_reads
        stores = result.store_triggered_reads
        writes = result.total_dram_writes
        total = loads + stores + writes
        if total == 0:
            table[workload] = {"load_reads": 0.0, "store_reads": 0.0, "writes": 0.0}
            continue
        table[workload] = {
            "load_reads": loads / total,
            "store_reads": stores / total,
            "writes": writes / total,
        }
    return table


# --------------------------------------------------------------------- #
# Figure 5 / Table I -- region access density characterisation
# --------------------------------------------------------------------- #
def figure5_region_density(workloads: Optional[Iterable[str]] = None,
                           num_accesses: Optional[int] = None) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Low/medium/high region-density shares of DRAM reads and writes."""
    table = {}
    for workload in _workloads(workloads):
        result = _run(workload, _named("ideal"), num_accesses=num_accesses)
        table[workload] = {
            "reads": dict(result.density.read_density),
            "writes": dict(result.density.write_density),
        }
    return table


def table1_late_writes(workloads: Optional[Iterable[str]] = None,
                       num_accesses: Optional[int] = None) -> Dict[str, float]:
    """Fraction of a high-density region's blocks modified after its first
    dirty LLC eviction (Table I)."""
    return {
        workload: _run(workload, _named("ideal"), num_accesses=num_accesses)
        .density.late_write_fraction
        for workload in _workloads(workloads)
    }


# --------------------------------------------------------------------- #
# Figure 8 -- prediction accuracy (coverage / overfetch / extra writebacks)
# --------------------------------------------------------------------- #
def figure8_prediction_accuracy(workloads: Optional[Iterable[str]] = None,
                                num_accesses: Optional[int] = None) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Read/write coverage and waste of BuMP and Full-region.

    For each workload and each of the two streaming schemes the entry holds
    the fraction of needed DRAM reads that were predicted (fetched before the
    demand access), the overfetch rate, the fraction of DRAM writes streamed
    in bulk, and the extra write traffic relative to the open-row baseline.
    """
    table = {}
    for workload in _workloads(workloads):
        baseline = _run(workload, _named("base_open"), num_accesses=num_accesses)
        entry = {}
        for name in ("bump", "full_region"):
            result = _run(workload, _named(name), num_accesses=num_accesses)
            baseline_writes = max(baseline.total_dram_writes, 1.0)
            entry[name] = {
                "read_coverage": result.read_coverage,
                "read_overfetch": result.read_overfetch,
                "write_coverage": result.write_coverage,
                "extra_writebacks": max(
                    result.total_dram_writes / baseline_writes - 1.0, 0.0
                ),
            }
        table[workload] = entry
    return table


# --------------------------------------------------------------------- #
# Figure 9 -- memory energy per access
# --------------------------------------------------------------------- #
def figure9_energy_per_access(workloads: Optional[Iterable[str]] = None,
                              num_accesses: Optional[int] = None) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Dynamic memory energy per useful access for the four Figure 9 systems.

    Each entry reports the activation and burst/IO components in nanojoules
    plus the total normalised to Base-close (the figure's y-axis).
    """
    systems = ["base_close", "base_open", "full_region", "bump"]
    table = {}
    for workload in _workloads(workloads):
        results = {
            name: _run(workload, _named(name), num_accesses=num_accesses)
            for name in systems
        }
        reference = max(results["base_close"].memory_energy_per_access_nj, 1e-9)
        table[workload] = {
            name: {
                "activation_nj": result.memory_energy.activation_nj,
                "burst_io_nj": result.memory_energy.burst_io_nj,
                "total_nj": result.memory_energy_per_access_nj,
                "normalized": result.memory_energy_per_access_nj / reference,
            }
            for name, result in results.items()
        }
    return table


# --------------------------------------------------------------------- #
# Figure 10 -- performance improvement over Base-close
# --------------------------------------------------------------------- #
def figure10_performance(workloads: Optional[Iterable[str]] = None,
                         num_accesses: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """System throughput improvement of Base-open, Full-region and BuMP over
    Base-close (positive means faster than Base-close)."""
    systems = ["base_open", "full_region", "bump"]
    table = {}
    for workload in _workloads(workloads):
        reference = _run(workload, _named("base_close"), num_accesses=num_accesses)
        table[workload] = {
            name: (
                _run(workload, _named(name), num_accesses=num_accesses).throughput_ipc
                / max(reference.throughput_ipc, 1e-12)
                - 1.0
            )
            for name in systems
        }
    return table


# --------------------------------------------------------------------- #
# Figure 11 -- design space exploration (region size x density threshold)
# --------------------------------------------------------------------- #
def precompute_design_space(workloads: Optional[Iterable[str]] = None,
                            region_sizes: Iterable[int] = (512, 1024, 2048),
                            threshold_fractions: Iterable[float] = (0.25, 0.5, 0.75, 1.0),
                            num_accesses: Optional[int] = None,
                            seed: int = DEFAULT_SEED,
                            workers: int = 1,
                            store: Optional[ArtifactStore] = None,
                            progress: Optional[CampaignProgress] = None) -> CampaignResult:
    """Fan the Figure 11 sweep grid out as one campaign.

    Mirrors :func:`figure11_design_space`'s cache keys exactly (including the
    open-row baseline it normalises against), so a subsequent call to that
    function aggregates without simulating.
    """
    keyed_configs = {"base_open": _named("base_open")}
    for region_size in region_sizes:
        for fraction in threshold_fractions:
            key = f"bump_r{region_size}_t{int(fraction * 100)}"
            keyed_configs[key] = bump_system(
                bump=BuMPConfig().with_region_size(region_size, fraction))
    return precompute_results(keyed_configs, _workloads(workloads),
                              num_accesses=num_accesses, seed=seed,
                              workers=workers, store=store, progress=progress)


def figure11_design_space(workloads: Optional[Iterable[str]] = None,
                          region_sizes: Iterable[int] = (512, 1024, 2048),
                          threshold_fractions: Iterable[float] = (0.25, 0.5, 0.75, 1.0),
                          num_accesses: Optional[int] = None) -> Dict[Tuple[int, float], float]:
    """Average memory-energy-per-access improvement over the open-row baseline
    for every (region size, density threshold) BuMP configuration."""
    selected = _workloads(workloads)
    improvements: Dict[Tuple[int, float], float] = {}
    for region_size in region_sizes:
        for fraction in threshold_fractions:
            bump_config = BuMPConfig().with_region_size(region_size, fraction)
            config = bump_system(bump=bump_config)
            key = f"bump_r{region_size}_t{int(fraction * 100)}"
            per_workload = []
            for workload in selected:
                baseline = _run(workload, _named("base_open"), num_accesses=num_accesses)
                result = _run(workload, config, config_key=key, num_accesses=num_accesses)
                base_epa = max(baseline.memory_energy_per_access_nj, 1e-9)
                per_workload.append(1.0 - result.memory_energy_per_access_nj / base_epa)
            improvements[(region_size, fraction)] = sum(per_workload) / len(per_workload)
    return improvements


# --------------------------------------------------------------------- #
# Figure 12 -- on-chip (LLC / NOC) overheads of BuMP
# --------------------------------------------------------------------- #
def figure12_onchip_overheads(workloads: Optional[Iterable[str]] = None,
                              num_accesses: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """LLC and NOC traffic and energy of BuMP normalised to the baseline."""
    table = {}
    for workload in _workloads(workloads):
        baseline = _run(workload, _named("base_open"), num_accesses=num_accesses)
        bump = _run(workload, _named("bump"), num_accesses=num_accesses)

        def _ratio(numerator: float, denominator: float) -> float:
            return numerator / denominator if denominator > 0 else 1.0

        llc_traffic = _ratio(bump.llc["traffic_ops"], baseline.llc["traffic_ops"])
        noc_traffic = _ratio(bump.noc["bytes"], baseline.noc["bytes"])
        llc_energy = _ratio(
            bump.energy.chip.llc_nj if bump.energy else 0.0,
            baseline.energy.chip.llc_nj if baseline.energy else 1.0,
        )
        noc_energy = _ratio(
            bump.energy.chip.noc_nj if bump.energy else 0.0,
            baseline.energy.chip.noc_nj if baseline.energy else 1.0,
        )
        table[workload] = {
            "llc_traffic": llc_traffic,
            "llc_energy": llc_energy,
            "noc_traffic": noc_traffic,
            "noc_energy": noc_energy,
        }
    return table


# --------------------------------------------------------------------- #
# Figure 13 / Table IV -- cross-system summary
# --------------------------------------------------------------------- #
def figure13_summary(workloads: Optional[Iterable[str]] = None,
                     num_accesses: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Workload-averaged row-buffer hit ratio and normalised memory energy per
    access for every evaluated system (Figure 13)."""
    systems = ["base_close", "base_open", "sms", "vwq", "sms_vwq", "bump", "ideal"]
    selected = _workloads(workloads)
    summary: Dict[str, Dict[str, float]] = {}
    reference_energy = None
    for name in systems:
        hit_ratios = []
        energies = []
        for workload in selected:
            result = _run(workload, _named(name), num_accesses=num_accesses)
            hit_ratios.append(result.row_buffer_hit_ratio)
            energies.append(result.memory_energy_per_access_nj)
        mean_energy = sum(energies) / len(energies)
        if name == "base_close":
            reference_energy = max(mean_energy, 1e-9)
        summary[name] = {
            "row_buffer_hit_ratio": sum(hit_ratios) / len(hit_ratios),
            "energy_per_access_nj": mean_energy,
            "energy_normalized": mean_energy / reference_energy if reference_energy else 0.0,
        }
    return summary


def table4_bump_row_hits(workloads: Optional[Iterable[str]] = None,
                         num_accesses: Optional[int] = None) -> Dict[str, float]:
    """BuMP's DRAM row-buffer hit ratio per workload (Table IV)."""
    return {
        workload: _run(workload, _named("bump"), num_accesses=num_accesses).row_buffer_hit_ratio
        for workload in _workloads(workloads)
    }
