"""Experiment harness: one function per figure/table of the paper.

:mod:`repro.analysis.experiments` contains the experiment functions the
benchmark suite (``benchmarks/``) and the examples call; each returns plain
dictionaries shaped like the corresponding figure's data series.
:mod:`repro.analysis.paper_data` records the values the paper reports, so
reports and EXPERIMENTS.md can show paper-vs-measured side by side, and
:mod:`repro.analysis.reporting` renders both as plain-text tables.

:mod:`repro.analysis.ablations` adds the ablation/extension experiments
DESIGN.md calls out, :mod:`repro.analysis.scalability` reproduces the
Section VI storage-scaling numbers, :mod:`repro.analysis.scenarios` sweeps
BuMP against the baselines across the heterogeneous scenario catalog, and
:mod:`repro.analysis.validation` checks measured results against the
paper's values under explicit shape-preservation rules.
"""

from repro.analysis import (
    ablations,
    experiments,
    paper_data,
    reporting,
    scalability,
    scenarios,
    validation,
)
from repro.analysis.scenarios import scenario_comparison, scenario_uplift
from repro.analysis.experiments import (
    figure1_energy_breakdown,
    figure2_row_buffer_hit,
    figure3_traffic_breakdown,
    figure5_region_density,
    figure8_prediction_accuracy,
    figure9_energy_per_access,
    figure10_performance,
    figure11_design_space,
    figure12_onchip_overheads,
    figure13_summary,
    table1_late_writes,
    table4_bump_row_hits,
)

__all__ = [
    "ablations",
    "experiments",
    "paper_data",
    "reporting",
    "scalability",
    "scenario_comparison",
    "scenario_uplift",
    "scenarios",
    "validation",
    "figure1_energy_breakdown",
    "figure2_row_buffer_hit",
    "figure3_traffic_breakdown",
    "figure5_region_density",
    "figure8_prediction_accuracy",
    "figure9_energy_per_access",
    "figure10_performance",
    "figure11_design_space",
    "figure12_onchip_overheads",
    "figure13_summary",
    "table1_late_writes",
    "table4_bump_row_hits",
]
