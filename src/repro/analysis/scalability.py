"""Storage-scaling analysis of Section VI (design scalability & virtualization).

The paper argues BuMP scales to larger CMPs and to virtualised servers with
modest storage growth:

* the region density tracking table (RDTT) grows **linearly with the core
  count**, because more cores interleave more concurrently-active regions;
* the dirty region table (DRT) grows **linearly with the LLC capacity**,
  because a larger LLC keeps more high-density modified regions resident;
* under virtualisation the bulk history table (BHT) must hold the triggering
  instructions of every active workload; with one distinct workload per core
  on a 16-core CMP the paper quotes a 72KB BHT, i.e. ~5KB of BuMP storage per
  core in total.

:func:`scaled_bump_config` applies those scaling rules to a
:class:`repro.core.config.BuMPConfig`, and :func:`storage_scaling_table` /
:func:`virtualization_storage_table` regenerate the numbers the section
quotes so the Section VI benchmark can assert them.
:func:`core_scaling_performance` goes beyond the paper's storage argument and
*simulates* the scaled design points, fanning the (core count x system) grid
out through the campaign engine (:mod:`repro.exec`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.common.params import CacheParams, SystemParams
from repro.core.bht import BulkHistoryTable
from repro.core.config import BuMPConfig
from repro.core.drt import DirtyRegionTable
from repro.core.rdtt import RegionDensityTracker
from repro.exec.campaign import run_campaign
from repro.exec.jobs import JobSpec
from repro.exec.progress import CampaignProgress
from repro.exec.store import ArtifactStore, default_store

#: The reference design point of Section IV.D.
REFERENCE_CORES = 16
REFERENCE_LLC_BYTES = 4 * 1024 * 1024


def _round_to_associativity(entries: float, associativity: int) -> int:
    """Round an entry count up to a whole number of sets."""
    sets = max(1, -(-int(round(entries)) // associativity))
    return sets * associativity


def scaled_bump_config(num_cores: int = REFERENCE_CORES,
                       llc_bytes: int = REFERENCE_LLC_BYTES,
                       workloads_sharing: int = 1,
                       base: BuMPConfig = None) -> BuMPConfig:
    """BuMP structure sizes for a scaled CMP, per the Section VI rules.

    ``workloads_sharing`` is the number of distinct consolidated workloads
    (1 = native execution; ``num_cores`` = the paper's extreme one-workload-
    per-core virtualisation case); the BHT grows linearly with it.
    """
    if num_cores < 1 or llc_bytes < 1 or workloads_sharing < 1:
        raise ValueError("core count, LLC size and workload count must be positive")
    base = base if base is not None else BuMPConfig()
    core_scale = num_cores / REFERENCE_CORES
    llc_scale = llc_bytes / REFERENCE_LLC_BYTES

    return BuMPConfig(
        region_size_bytes=base.region_size_bytes,
        density_threshold_blocks=base.density_threshold_blocks,
        trigger_entries=_round_to_associativity(base.trigger_entries * core_scale,
                                                base.associativity),
        density_entries=_round_to_associativity(base.density_entries * core_scale,
                                                base.associativity),
        bht_entries=_round_to_associativity(base.bht_entries * workloads_sharing,
                                            base.associativity),
        drt_entries=_round_to_associativity(base.drt_entries * llc_scale,
                                            base.associativity),
        associativity=base.associativity,
    )


@dataclass
class StorageBudget:
    """Per-structure storage of one BuMP configuration, in kibibytes."""

    cores: int
    llc_mib: float
    workloads_sharing: int
    rdtt_kib: float
    bht_kib: float
    drt_kib: float

    @property
    def total_kib(self) -> float:
        """Total BuMP storage."""
        return self.rdtt_kib + self.bht_kib + self.drt_kib

    @property
    def per_core_kib(self) -> float:
        """BuMP storage per core (the paper's ~1KB native / ~5KB virtualised)."""
        return self.total_kib / self.cores


def storage_budget(num_cores: int = REFERENCE_CORES,
                   llc_bytes: int = REFERENCE_LLC_BYTES,
                   workloads_sharing: int = 1,
                   base: BuMPConfig = None) -> StorageBudget:
    """Instantiate the scaled structures and measure their storage."""
    config = scaled_bump_config(num_cores, llc_bytes, workloads_sharing, base)
    rdtt = RegionDensityTracker(config)
    bht = BulkHistoryTable(config)
    drt = DirtyRegionTable(config)
    return StorageBudget(
        cores=num_cores,
        llc_mib=llc_bytes / (1024 * 1024),
        workloads_sharing=workloads_sharing,
        rdtt_kib=rdtt.storage_bits() / 8 / 1024,
        bht_kib=bht.storage_bits() / 8 / 1024,
        drt_kib=drt.storage_bits() / 8 / 1024,
    )


def storage_scaling_table(core_counts: Iterable[int] = (16, 32, 64, 128),
                          llc_bytes_per_core: int = REFERENCE_LLC_BYTES // REFERENCE_CORES
                          ) -> List[StorageBudget]:
    """BuMP storage as the CMP scales (LLC grows proportionally with cores)."""
    return [
        storage_budget(num_cores=cores, llc_bytes=cores * llc_bytes_per_core)
        for cores in core_counts
    ]


def virtualization_storage_table(num_cores: int = REFERENCE_CORES,
                                 workload_counts: Iterable[int] = (1, 2, 4, 8, 16)
                                 ) -> List[StorageBudget]:
    """BuMP storage under workload consolidation (Section VI, virtualization)."""
    return [
        storage_budget(num_cores=num_cores, workloads_sharing=workloads)
        for workloads in workload_counts
    ]


def core_scaling_performance(core_counts: Iterable[int] = (8, 16, 32),
                             workload: str = "web_search",
                             num_accesses: int = 60_000,
                             seed: int = 42,
                             workers: int = 1,
                             store: Optional[ArtifactStore] = None,
                             progress: Optional[CampaignProgress] = None,
                             llc_bytes_per_core: int = REFERENCE_LLC_BYTES // REFERENCE_CORES
                             ) -> Dict[int, Dict[str, float]]:
    """Simulate Base-open versus scaled BuMP at several CMP sizes.

    For each core count the LLC grows proportionally and the BuMP structures
    follow the Section VI scaling rules (:func:`scaled_bump_config`); the
    workload trace is regenerated with the matching number of cores so the
    request interleaving reflects the bigger machine.  All (core count x
    system) cells run as one campaign, in parallel when ``workers`` > 1.
    """
    from repro.sim.config import base_open, bump_system

    core_counts = list(core_counts)
    jobs: List[JobSpec] = []
    for cores in core_counts:
        llc_bytes = cores * llc_bytes_per_core
        params = SystemParams().scaled(
            num_cores=cores,
            llc=CacheParams(size_bytes=llc_bytes, associativity=16,
                            hit_latency_cycles=8, banks=8),
        )
        base = base_open().with_overrides(system=params)
        bump = bump_system(bump=scaled_bump_config(cores, llc_bytes)
                           ).with_overrides(system=params)
        for config in (base, bump):
            jobs.append(JobSpec(workload=workload, config=config,
                                num_accesses=num_accesses, num_cores=cores,
                                seed=seed))
    outcome = run_campaign(jobs, store=store if store is not None else default_store(),
                           workers=workers, progress=progress)
    table: Dict[int, Dict[str, float]] = {}
    for index, cores in enumerate(core_counts):
        base = outcome.outcomes[2 * index].result
        bump = outcome.outcomes[2 * index + 1].result
        base_energy = max(base.memory_energy_per_access_nj, 1e-9)
        table[cores] = {
            "base_row_buffer_hit_ratio": base.row_buffer_hit_ratio,
            "bump_row_buffer_hit_ratio": bump.row_buffer_hit_ratio,
            "bump_energy_improvement": 1.0 - bump.memory_energy_per_access_nj / base_energy,
            "bump_speedup": bump.throughput_ipc / max(base.throughput_ipc, 1e-12) - 1.0,
        }
    return table


def scaling_summary() -> Dict[str, float]:
    """Headline numbers quoted in Sections IV.D and VI.

    ``native_total_kib`` is the ~14KB of the base design; ``virtualized_bht_kib``
    and ``virtualized_per_core_kib`` are the 72KB BHT and ~5KB-per-core figures
    of the extreme one-workload-per-core consolidation case.
    """
    native = storage_budget()
    virtualized = storage_budget(workloads_sharing=REFERENCE_CORES)
    return {
        "native_total_kib": native.total_kib,
        "native_per_core_kib": native.per_core_kib,
        "virtualized_bht_kib": virtualized.bht_kib,
        "virtualized_total_kib": virtualized.total_kib,
        "virtualized_per_core_kib": virtualized.per_core_kib,
    }
