"""Plain-text rendering of experiment results.

The benchmark harness and the examples print their results through these
helpers so every figure reproduction ends up as a readable table on stdout
(and, via ``tee``, in ``bench_output.txt``), mirroring the rows/series of the
paper's figures.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence


def format_table(rows: Sequence[Sequence[str]], headers: Sequence[str]) -> str:
    """Render rows as a fixed-width text table."""
    columns = [list(headers)] + [list(map(str, row)) for row in rows]
    widths = [max(len(row[i]) for row in columns) for i in range(len(headers))]

    def render(row: Sequence[str]) -> str:
        return "  ".join(str(cell).ljust(width) for cell, width in zip(row, widths))

    separator = "  ".join("-" * width for width in widths)
    lines = [render(headers), separator]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def format_percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def format_nested_mapping(table: Mapping[str, Mapping[str, float]],
                          value_format: str = "{:.3f}",
                          title: Optional[str] = None,
                          columns: Optional[Iterable[str]] = None) -> str:
    """Render ``{row: {column: value}}`` as a text table.

    ``columns`` fixes the column order (defaults to the order of the first
    row's keys).
    """
    rows = list(table.keys())
    if not rows:
        return title or ""
    column_names = list(columns) if columns is not None else list(table[rows[0]].keys())
    body = []
    for row in rows:
        cells = [row]
        for column in column_names:
            value = table[row].get(column, float("nan"))
            cells.append(value_format.format(value))
        body.append(cells)
    text = format_table(body, headers=["workload"] + column_names)
    if title:
        return f"{title}\n{text}"
    return text


def format_comparison(measured: Mapping[str, float], reference: Mapping[str, float],
                      title: Optional[str] = None,
                      value_format: str = "{:.2f}") -> str:
    """Render a measured-vs-paper comparison table keyed by the same names."""
    rows = []
    for key in measured:
        paper_value = reference.get(key)
        rows.append([
            key,
            value_format.format(measured[key]),
            value_format.format(paper_value) if paper_value is not None else "-",
        ])
    text = format_table(rows, headers=["name", "measured", "paper"])
    if title:
        return f"{title}\n{text}"
    return text


def print_report(text: str) -> None:
    """Print a report block surrounded by blank lines (benchmarks call this)."""
    print()
    print(text)
    print()
