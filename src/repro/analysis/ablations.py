"""Ablation and extension experiments.

DESIGN.md calls out a handful of design choices the paper asserts but does
not sweep, plus the Section VI/VII discussion points.  Each function here is
an experiment in the same style as :mod:`repro.analysis.experiments`
(plain-dict results, shared result cache) covering one of them:

* :func:`rdtt_sizing` -- how read coverage depends on the RDTT geometry (the
  Software Testing discussion of Section V.B);
* :func:`predictor_table_sizing` -- BHT/DRT sizing versus coverage and extra
  writebacks;
* :func:`scheduler_policy_study` -- FR-FCFS against FCFS and the fairness-
  oriented rotating scheduler (Section VI, memory access scheduling policy);
* :func:`writeback_mechanism_study` -- demand writeback vs. age-based eager
  writeback vs. VWQ vs. BuMP vs. BuMP+VWQ (footnote 1);
* :func:`prefetcher_comparison` -- next-line / stride / Stealth / SMS / BuMP
  read-side comparison (Section VII related work);
* :func:`timing_model_sensitivity` -- the headline speedups under the
  analytic and the interval timing models;
* :func:`interleaving_sensitivity` -- BuMP with region-level versus
  block-level address interleaving (why Section IV.D maps a region to one
  DRAM row).

Every study accepts ``workers``: with more than one, its simulation grid is
fanned out through the campaign engine (:mod:`repro.exec`) before the
aggregation loops run, which then hit only warm caches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.config import BuMPConfig
from repro.sim.config import (
    SystemConfig,
    base_open,
    bump_system,
    bump_vwq_system,
    eager_writeback_system,
    nextline_system,
    sms_system,
    stealth_system,
    vwq_system,
)
from repro.analysis.experiments import (
    DEFAULT_SEED,
    _run,
    _workloads,
    precompute_results,
)


def _average(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _precompute(configs_by_key: Dict[str, SystemConfig], workloads: List[str],
                num_accesses: Optional[int], workers: Optional[int],
                seed: int = DEFAULT_SEED) -> None:
    """Fan a study's (workload x configuration) grid out as one campaign.

    Results are seeded into the shared experiment result cache under the
    study's cache keys, so the subsequent serial aggregation loop (which
    still calls :func:`repro.analysis.experiments._run`) never simulates.
    No-op for ``workers`` of one or ``None`` -- the study then runs serially
    exactly as before.
    """
    if not workers or workers <= 1:
        return
    precompute_results(configs_by_key, workloads, num_accesses=num_accesses,
                       seed=seed, workers=workers)


# --------------------------------------------------------------------- #
# BuMP structure sizing
# --------------------------------------------------------------------- #
def rdtt_sizing(entry_counts: Iterable[int] = (64, 256, 1024, 2048),
                workloads: Optional[Iterable[str]] = None,
                num_accesses: Optional[int] = None,
                workers: Optional[int] = None) -> Dict[int, Dict[str, float]]:
    """Read coverage and overfetch as the RDTT trigger/density tables grow.

    The paper notes Software Testing needs a larger RDTT (Section V.B); this
    sweep shows coverage saturating once the tables hold the workload's
    concurrently-active regions.
    """
    results: Dict[int, Dict[str, float]] = {}
    selected = _workloads(workloads)
    entry_counts = list(entry_counts)
    _precompute(
        {f"bump_rdtt{entries}": bump_system(
            bump=BuMPConfig(trigger_entries=entries, density_entries=entries))
         for entries in entry_counts},
        selected, num_accesses, workers)
    for entries in entry_counts:
        bump_config = BuMPConfig(trigger_entries=entries, density_entries=entries)
        config = bump_system(bump=bump_config)
        key = f"bump_rdtt{entries}"
        coverage, overfetch = [], []
        for workload in selected:
            result = _run(workload, config, config_key=key, num_accesses=num_accesses)
            coverage.append(result.read_coverage)
            overfetch.append(result.read_overfetch)
        results[entries] = {
            "read_coverage": _average(coverage),
            "read_overfetch": _average(overfetch),
        }
    return results


def predictor_table_sizing(entry_counts: Iterable[int] = (128, 512, 1024, 4096),
                           workloads: Optional[Iterable[str]] = None,
                           num_accesses: Optional[int] = None,
                           workers: Optional[int] = None) -> Dict[int, Dict[str, float]]:
    """Write coverage and extra writebacks as the BHT and DRT grow together."""
    results: Dict[int, Dict[str, float]] = {}
    selected = _workloads(workloads)
    entry_counts = list(entry_counts)
    grid = {f"bump_bhtdrt{entries}": bump_system(
        bump=BuMPConfig(bht_entries=entries, drt_entries=entries))
        for entries in entry_counts}
    grid["base_open"] = base_open()
    _precompute(grid, selected, num_accesses, workers)
    for entries in entry_counts:
        bump_config = BuMPConfig(bht_entries=entries, drt_entries=entries)
        config = bump_system(bump=bump_config)
        key = f"bump_bhtdrt{entries}"
        write_cov, read_cov, extra = [], [], []
        for workload in selected:
            baseline = _run(workload, base_open(), num_accesses=num_accesses)
            result = _run(workload, config, config_key=key, num_accesses=num_accesses)
            write_cov.append(result.write_coverage)
            read_cov.append(result.read_coverage)
            baseline_writes = max(baseline.total_dram_writes, 1.0)
            extra.append(max(result.total_dram_writes / baseline_writes - 1.0, 0.0))
        results[entries] = {
            "read_coverage": _average(read_cov),
            "write_coverage": _average(write_cov),
            "extra_writebacks": _average(extra),
        }
    return results


# --------------------------------------------------------------------- #
# Memory controller and interleaving
# --------------------------------------------------------------------- #
def scheduler_policy_study(policies: Iterable[str] = ("fcfs", "frfcfs", "bank_round_robin"),
                           workloads: Optional[Iterable[str]] = None,
                           num_accesses: Optional[int] = None,
                           workers: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Row-buffer hit ratio and energy of BuMP under different schedulers.

    Section VI argues BuMP composes with fairness-oriented scheduling because
    server cores execute near-identical instruction streams; this study
    quantifies how much row locality each policy preserves.
    """
    results: Dict[str, Dict[str, float]] = {}
    selected = _workloads(workloads)
    policies = list(policies)
    _precompute(
        {("bump" if policy == "frfcfs" else f"bump_sched_{policy}"):
         bump_system().with_overrides(scheduler=policy) for policy in policies},
        selected, num_accesses, workers)
    for policy in policies:
        config = bump_system().with_overrides(scheduler=policy)
        # FR-FCFS is the paper's default scheduler, so reuse the cached BuMP runs.
        key = "bump" if policy == "frfcfs" else f"bump_sched_{policy}"
        hits, energy = [], []
        for workload in selected:
            result = _run(workload, config, config_key=key, num_accesses=num_accesses)
            hits.append(result.row_buffer_hit_ratio)
            energy.append(result.memory_energy_per_access_nj)
        results[policy] = {
            "row_buffer_hit_ratio": _average(hits),
            "energy_per_access_nj": _average(energy),
        }
    return results


def interleaving_sensitivity(workloads: Optional[Iterable[str]] = None,
                             num_accesses: Optional[int] = None,
                             workers: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """BuMP with region-level versus block-level address interleaving.

    Region interleaving maps a 1KB region onto a single DRAM row so a bulk
    transfer amortises one activation; block interleaving spreads the same
    region over sixteen banks and forfeits that amortisation even though the
    predictor behaves identically.
    """
    results: Dict[str, Dict[str, float]] = {}
    selected = _workloads(workloads)
    _precompute(
        {"bump": bump_system(),
         "bump_interleave_block": bump_system().with_overrides(interleaving="block")},
        selected, num_accesses, workers)
    for interleaving in ("region", "block"):
        config = bump_system().with_overrides(interleaving=interleaving)
        # The region-interleaved variant is the default BuMP system, so reuse
        # its cached runs; only the block-interleaved variant is new.
        key = "bump" if interleaving == "region" else "bump_interleave_block"
        hits, energy = [], []
        for workload in selected:
            result = _run(workload, config, config_key=key, num_accesses=num_accesses)
            hits.append(result.row_buffer_hit_ratio)
            energy.append(result.memory_energy_per_access_nj)
        results[interleaving] = {
            "row_buffer_hit_ratio": _average(hits),
            "energy_per_access_nj": _average(energy),
        }
    return results


# --------------------------------------------------------------------- #
# Mechanism comparisons
# --------------------------------------------------------------------- #
def writeback_mechanism_study(workloads: Optional[Iterable[str]] = None,
                              num_accesses: Optional[int] = None,
                              workers: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Write coverage and row locality of the write-side mechanisms.

    Compares demand-only writeback (Base-open), age-based eager writeback,
    VWQ, BuMP and BuMP+VWQ (footnote 1 of Section V.G).
    """
    systems = {
        "base_open": base_open(),
        "eager_writeback": eager_writeback_system(),
        "vwq": vwq_system(),
        "bump": bump_system(),
        "bump_vwq": bump_vwq_system(),
    }
    results: Dict[str, Dict[str, float]] = {}
    selected = _workloads(workloads)
    _precompute(systems, selected, num_accesses, workers)
    for name, config in systems.items():
        coverage, hits, writes = [], [], []
        for workload in selected:
            result = _run(workload, config, config_key=name, num_accesses=num_accesses)
            coverage.append(result.write_coverage)
            hits.append(result.row_buffer_hit_ratio)
            writes.append(result.total_dram_writes)
        results[name] = {
            "write_coverage": _average(coverage),
            "row_buffer_hit_ratio": _average(hits),
            "dram_writes": _average(writes),
        }
    return results


def prefetcher_comparison(workloads: Optional[Iterable[str]] = None,
                          num_accesses: Optional[int] = None,
                          workers: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """Read-side comparison: next-line, stride, Stealth, SMS and BuMP.

    Reports coverage, overfetch and row-buffer locality for each mechanism --
    the trade-off Section VII draws between address-correlated and
    code-correlated schemes (their storage costs are compared separately by
    the Section VI scalability analysis).
    """
    systems = {
        "nextline": nextline_system(),
        "stride": base_open(),
        "stealth": stealth_system(),
        "sms": sms_system(),
        "bump": bump_system(),
    }
    results: Dict[str, Dict[str, float]] = {}
    selected = _workloads(workloads)
    _precompute({config.name: config for config in systems.values()},
                selected, num_accesses, workers)
    for name, config in systems.items():
        coverage, overfetch, hits = [], [], []
        for workload in selected:
            # Key the cache by the underlying configuration name so runs shared
            # with the main figures (base_open, sms, bump) are reused.
            result = _run(workload, config, config_key=config.name,
                          num_accesses=num_accesses)
            coverage.append(result.read_coverage)
            overfetch.append(result.read_overfetch)
            hits.append(result.row_buffer_hit_ratio)
        results[name] = {
            "read_coverage": _average(coverage),
            "read_overfetch": _average(overfetch),
            "row_buffer_hit_ratio": _average(hits),
        }
    return results


# --------------------------------------------------------------------- #
# Timing model sensitivity
# --------------------------------------------------------------------- #
def timing_model_sensitivity(workloads: Optional[Iterable[str]] = None,
                             num_accesses: Optional[int] = None,
                             workers: Optional[int] = None) -> Dict[str, Dict[str, float]]:
    """BuMP's speedup over Base-open under both core timing models.

    The claim that bulk streaming helps performance should not hinge on the
    fixed-MLP assumption of the default model; this study recomputes the
    speedup with the interval (ROB/MSHR-derived) model.
    """
    results: Dict[str, Dict[str, float]] = {}
    selected = _workloads(workloads)
    grid: Dict[str, SystemConfig] = {}
    for model in ("analytic", "interval"):
        suffix = "" if model == "analytic" else f"_{model}"
        grid[f"base_open{suffix}"] = base_open().with_overrides(timing_model=model)
        grid[f"bump{suffix}"] = bump_system().with_overrides(timing_model=model)
    _precompute(grid, selected, num_accesses, workers)
    for model in ("analytic", "interval"):
        speedups = []
        for workload in selected:
            # The analytic model is the default, so those runs are shared with
            # the main figures; only the interval-model runs are new.
            base_key = "base_open" if model == "analytic" else f"base_open_{model}"
            bump_key = "bump" if model == "analytic" else f"bump_{model}"
            base = _run(workload, base_open().with_overrides(timing_model=model),
                        config_key=base_key, num_accesses=num_accesses)
            bump = _run(workload, bump_system().with_overrides(timing_model=model),
                        config_key=bump_key, num_accesses=num_accesses)
            speedups.append(bump.throughput_ipc / max(base.throughput_ipc, 1e-12) - 1.0)
        results[model] = {"bump_speedup_over_base_open": _average(speedups)}
    return results
