"""BuMP versus baselines across the heterogeneous scenario catalog.

The paper's figures evaluate steady-state homogeneous workloads; this module
re-asks the headline questions (row-buffer locality recovered, energy per
access, throughput) under the :mod:`repro.scenario` catalog's multi-tenant,
bursty and phased traffic.  Sweeps run through the campaign engine, so they
parallelise across workers and resume from the artifact store exactly like
the figure experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exec.campaign import run_campaign
from repro.exec.jobs import ScenarioGrid
from repro.exec.progress import CampaignProgress
from repro.exec.store import ArtifactStore, default_store
from repro.scenario.catalog import scenario_names
from repro.sim.runner import DEFAULT_SEED

__all__ = [
    "scenario_comparison",
    "scenario_uplift",
]

#: Summary metrics reported per (scenario, configuration) cell.
COMPARISON_METRICS = (
    "row_buffer_hit_ratio",
    "read_coverage",
    "write_coverage",
    "energy_per_access_nj",
    "throughput_ipc",
)


def scenario_comparison(scenarios: Optional[Sequence[str]] = None,
                        config_names: Sequence[str] = ("base_open", "bump"),
                        scale: float = 1.0,
                        seed: int = DEFAULT_SEED,
                        warmup_fraction: float = 0.5,
                        workers: int = 1,
                        store: Optional[ArtifactStore] = None,
                        progress: Optional[CampaignProgress] = None
                        ) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Run every scenario under every configuration; tabulate the summaries.

    Returns ``{scenario: {configuration: {metric: value}}}`` over
    :data:`COMPARISON_METRICS`.  ``scenarios`` defaults to the full shipped
    catalog; ``scale`` sizes the runs (pass e.g. ``0.05`` for a laptop-speed
    sweep).  With ``workers > 1`` the grid fans out across processes, and
    with a store (or ``REPRO_ARTIFACT_DIR`` set) re-runs complete from disk.
    """
    names = list(scenarios) if scenarios is not None else scenario_names()
    grid = ScenarioGrid(scenarios=names, configs=list(config_names),
                        seeds=[seed], scale=scale,
                        warmup_fraction=warmup_fraction)
    outcome = run_campaign(grid.expand(),
                           store=store if store is not None else default_store(),
                           workers=workers, progress=progress)
    table: Dict[str, Dict[str, Dict[str, float]]] = {}
    for job_outcome in outcome.outcomes:
        scenario = job_outcome.job.workload.name
        config = job_outcome.job.config.name
        summary = job_outcome.result.summary()
        table.setdefault(scenario, {})[config] = {
            metric: summary[metric] for metric in COMPARISON_METRICS
        }
    return table


def scenario_uplift(table: Dict[str, Dict[str, Dict[str, float]]],
                    baseline: str = "base_open",
                    treatment: str = "bump") -> Dict[str, Dict[str, float]]:
    """Per-scenario deltas of ``treatment`` over ``baseline``.

    For each scenario of a :func:`scenario_comparison` table, reports the
    row-buffer-hit-ratio uplift (absolute, percentage points), the
    energy-per-access reduction (relative) and the IPC speedup (relative) --
    the three axes the paper's Figures 2, 9 and 10 use.
    """
    uplift: Dict[str, Dict[str, float]] = {}
    for scenario, by_config in table.items():
        if baseline not in by_config or treatment not in by_config:
            continue
        base = by_config[baseline]
        treat = by_config[treatment]
        energy_base = base["energy_per_access_nj"]
        ipc_base = base["throughput_ipc"]
        uplift[scenario] = {
            "row_buffer_hit_uplift": (treat["row_buffer_hit_ratio"]
                                      - base["row_buffer_hit_ratio"]),
            "energy_reduction": (1.0 - treat["energy_per_access_nj"] / energy_base
                                 if energy_base else 0.0),
            "ipc_speedup": (treat["throughput_ipc"] / ipc_base
                            if ipc_base else 0.0),
        }
    return uplift
