"""Paper-versus-measured validation.

EXPERIMENTS.md promises that the *shape* of every paper result is reproduced
even though absolute magnitudes differ (synthetic workloads, analytic
timing).  This module turns that promise into code: each check compares a
measured quantity against the paper's reference value under an explicit rule
-- an ordering, a range, or a tolerance band -- and the collection of checks
is rendered as the pass/fail table the summary benchmark and the
``report`` CLI command print.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Mapping, Optional, Sequence


class CheckKind(Enum):
    """How a measured value is compared against its reference."""

    #: measured must lie within ``tolerance`` (relative) of the reference.
    RELATIVE = "relative"
    #: measured must lie inside the closed reference interval.
    RANGE = "range"
    #: measured values must be ordered the same way as the reference values.
    ORDERING = "ordering"
    #: measured must satisfy a custom predicate.
    PREDICATE = "predicate"


@dataclass
class CheckResult:
    """Outcome of one validation check."""

    name: str
    kind: CheckKind
    passed: bool
    measured: str
    expected: str

    def row(self) -> List[str]:
        """Row for the plain-text report."""
        status = "PASS" if self.passed else "FAIL"
        return [self.name, self.kind.value, self.measured, self.expected, status]


class ValidationSuite:
    """A named collection of paper-versus-measured checks."""

    def __init__(self, name: str = "validation") -> None:
        self.name = name
        self.results: List[CheckResult] = []

    # ------------------------------------------------------------------ #
    # Checks
    # ------------------------------------------------------------------ #
    def check_relative(self, name: str, measured: float, reference: float,
                       tolerance: float = 0.5) -> bool:
        """Measured within ``tolerance`` (relative) of the paper's value."""
        if reference == 0:
            passed = abs(measured) <= tolerance
        else:
            passed = abs(measured - reference) / abs(reference) <= tolerance
        self.results.append(CheckResult(
            name=name, kind=CheckKind.RELATIVE, passed=passed,
            measured=f"{measured:.3g}",
            expected=f"{reference:.3g} ±{tolerance:.0%}",
        ))
        return passed

    def check_range(self, name: str, measured: float, low: float, high: float,
                    slack: float = 0.0) -> bool:
        """Measured inside the paper's reported range (optionally widened)."""
        span = high - low
        passed = (low - slack * span) <= measured <= (high + slack * span)
        self.results.append(CheckResult(
            name=name, kind=CheckKind.RANGE, passed=passed,
            measured=f"{measured:.3g}", expected=f"[{low:.3g}, {high:.3g}]",
        ))
        return passed

    def check_ordering(self, name: str, measured: Mapping[str, float],
                       expected_order: Sequence[str],
                       strict: bool = False) -> bool:
        """Measured values are (non-strictly) increasing along ``expected_order``."""
        values = [measured[key] for key in expected_order]
        if strict:
            passed = all(b > a for a, b in zip(values, values[1:]))
        else:
            passed = all(b >= a for a, b in zip(values, values[1:]))
        self.results.append(CheckResult(
            name=name, kind=CheckKind.ORDERING, passed=passed,
            measured=" < ".join(f"{key}={measured[key]:.3g}" for key in expected_order),
            expected=" < ".join(expected_order),
        ))
        return passed

    def check_predicate(self, name: str, measured: float,
                        predicate: Callable[[float], bool],
                        description: str) -> bool:
        """Measured satisfies an arbitrary condition (described for the report)."""
        passed = bool(predicate(measured))
        self.results.append(CheckResult(
            name=name, kind=CheckKind.PREDICATE, passed=passed,
            measured=f"{measured:.3g}", expected=description,
        ))
        return passed

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    @property
    def passed(self) -> bool:
        """True when every recorded check passed."""
        return all(result.passed for result in self.results)

    @property
    def pass_count(self) -> int:
        """Number of checks that passed."""
        return sum(1 for result in self.results if result.passed)

    def failures(self) -> List[CheckResult]:
        """The checks that failed."""
        return [result for result in self.results if not result.passed]

    def render(self) -> str:
        """Plain-text report of every check."""
        from repro.analysis.reporting import format_table

        header = f"{self.name}: {self.pass_count}/{len(self.results)} checks passed"
        table = format_table([result.row() for result in self.results],
                             headers=["check", "kind", "measured", "expected", "status"])
        return f"{header}\n{table}"


def validate_headline_results(summary: Mapping[str, Mapping[str, float]],
                              suite: Optional[ValidationSuite] = None) -> ValidationSuite:
    """Validate a Figure 13 style cross-system summary against the paper.

    ``summary`` maps system name to ``{"row_buffer_hit_ratio": ..,
    "energy_normalized": ..}`` as produced by
    :func:`repro.analysis.experiments.figure13_summary`.
    """
    from repro.analysis import paper_data

    suite = suite if suite is not None else ValidationSuite("headline results")

    hit_ratios = {name: entry["row_buffer_hit_ratio"] for name, entry in summary.items()}
    suite.check_ordering(
        "row-buffer hit ratio ordering (Fig. 2/13)",
        hit_ratios,
        ["base_open", "sms", "vwq", "sms_vwq", "bump", "ideal"],
    )

    if "bump" in summary and "base_open" in summary:
        base_energy = summary["base_open"]["energy_normalized"]
        bump_energy = summary["bump"]["energy_normalized"]
        reduction = 1.0 - bump_energy / base_energy if base_energy else 0.0
        suite.check_predicate(
            "BuMP saves memory energy vs Base-open (Fig. 9)",
            reduction, lambda value: value > 0.05, "> 5% reduction",
        )
        suite.check_relative(
            "BuMP energy reduction vs Base-open (paper: 23%)",
            reduction, paper_data.BUMP_ENERGY_REDUCTION_VS_OPEN, tolerance=1.0,
        )
    return suite
