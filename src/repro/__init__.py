"""Reproduction of "BuMP: Bulk Memory Access Prediction and Streaming" (MICRO 2014).

The package is organised as one subpackage per subsystem:

* :mod:`repro.core` -- the paper's contribution: the BuMP predictor (RDTT,
  BHT, DRT) and the Full-region foil.
* :mod:`repro.cache`, :mod:`repro.dram`, :mod:`repro.noc`,
  :mod:`repro.energy` -- the microarchitectural substrates the evaluation
  depends on (cache hierarchy, DDR3 memory system, crossbar NOC, energy
  model).
* :mod:`repro.prefetch`, :mod:`repro.writeback` -- the baselines BuMP is
  compared against (stride, SMS, VWQ) plus the related-work foils used by the
  ablations (next-line, Stealth-style region prefetching, age-based eager
  writeback).
* :mod:`repro.cpu` -- core microarchitecture models (MSHR file, ROB/MLP
  model, interval timing).
* :mod:`repro.workloads` -- synthetic server workload generators calibrated
  to the paper's characterisation of CloudSuite and TPC-H behaviour.
* :mod:`repro.scenario` -- the composable scenario engine: multi-tenant,
  phased, bursty compositions of the workload generators, compiled to the
  same columnar trace pipeline.
* :mod:`repro.trace` -- trace persistence, characterisation, slicing and
  post-L1 stream capture.
* :mod:`repro.sim` -- the trace-driven full-system model, system
  configurations, timing, the experiment runner and the warm-state
  snapshot engine (:mod:`repro.sim.snapshot`: checkpoint/restore of the
  full simulator state, bit-identical, for fork-per-query amortized
  warmup).
* :mod:`repro.analysis` -- one experiment function per paper figure/table,
  the ablation and Section VI scalability studies, paper-vs-measured
  validation, and plain-text reporting.
* :mod:`repro.exec` -- the parallel experiment-campaign engine: declarative
  job grids, a content-addressed on-disk artifact store, worker-process
  sharding and the serial-vs-parallel parity guard.
* :mod:`repro.telemetry` -- the observability layer: per-chunk timeline
  sampling of the hot counters, span tracing of the pipeline stages
  (JSONL event logs) and fleet-level campaign metrics, selected via
  ``REPRO_TELEMETRY`` / ``telemetry=`` and off (free) by default.
* :mod:`repro.cli` -- the ``repro`` command-line interface (also installed
  as ``repro-bump``).

Typical use::

    from repro.sim import bump_system, base_open, run_workload

    baseline = run_workload("web_search", base_open(), num_accesses=50_000)
    bump = run_workload("web_search", bump_system(), num_accesses=50_000)
    print(baseline.row_buffer_hit_ratio, bump.row_buffer_hit_ratio)
"""

from repro.core import BuMPConfig, BuMPPredictor
from repro.sim import (
    SimulationResult,
    SystemConfig,
    base_close,
    base_open,
    bump_system,
    full_region_system,
    ideal_system,
    named_configs,
    run_trace,
    run_workload,
    sms_system,
    sms_vwq_system,
    vwq_system,
)
from repro.trace import TraceBuffer
from repro.workloads import (
    WORKLOADS,
    WorkloadSpec,
    generate_trace,
    generate_trace_buffer,
    get_workload,
    iter_trace_chunks,
)

__version__ = "1.10.0"

__all__ = [
    "BuMPConfig",
    "BuMPPredictor",
    "SimulationResult",
    "SystemConfig",
    "base_close",
    "base_open",
    "bump_system",
    "full_region_system",
    "ideal_system",
    "named_configs",
    "run_trace",
    "run_workload",
    "sms_system",
    "sms_vwq_system",
    "vwq_system",
    "TraceBuffer",
    "WORKLOADS",
    "WorkloadSpec",
    "generate_trace",
    "generate_trace_buffer",
    "get_workload",
    "iter_trace_chunks",
    "__version__",
]
