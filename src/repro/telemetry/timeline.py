"""Cycle-indexed time-series of the simulator's hot counters.

Every end-of-run metric the system reports today is a scalar; a
:class:`Timeline` turns the same counters into paper-style time-varying
curves.  At each streaming chunk boundary the telemetry recorder snapshots
the cumulative totals the engines already hold as plain ints / flat NumPy
arrays (never per access -- the sampling granularity *is* the chunk) and
appends one row of **interval deltas** keyed by the core cycle at which the
chunk ended.

Storage follows the flat-engine idiom: one preallocated 2D ``float64``
array, grown by doubling, one column per metric.  Columns fall into three
groups:

* ``cycle`` and ``accesses_total`` -- absolute coordinates of the sample
  (core cycle at the chunk boundary; accesses interpreted since the
  recorder first saw the system, monotone across measurement resets, which
  is what makes timelines from different chunk sizes alignable);
* ``queue_occupancy`` and ``intensity`` -- instantaneous gauges (transfers
  queued but not yet served by the memory system when the sample was taken;
  the trace source's current admission multiplier, 1.0 for open-loop runs);
* everything else -- the delta of the corresponding cumulative counter over
  the interval since the previous sample.

Derived per-interval rates (L1/LLC hit rate, MPKI, row-buffer hit rate,
generated-traffic share) are computed on demand from the deltas; they are
never stored, so the recorded data stays exact counter arithmetic.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = [
    "DELTA_COLUMNS",
    "TIMELINE_COLUMNS",
    "Timeline",
]

#: Column order of every sample row.  The first two columns are absolute
#: coordinates, ``queue_occupancy`` and ``intensity`` are instantaneous
#: gauges (``intensity`` is the admission multiplier a closed-loop trace
#: source reported at the boundary, 1.0 for open-loop runs), and the
#: remaining columns are per-interval deltas of cumulative counters.
TIMELINE_COLUMNS = (
    "cycle",
    "accesses_total",
    "queue_occupancy",
    "intensity",
    "accesses",
    "instructions",
    "l1_hits",
    "llc_hits",
    "llc_misses",
    "demand_reads",
    "covered_reads",
    "demand_writebacks",
    "bulk_reads",
    "prefetch_reads",
    "bulk_writebacks",
    "eager_writebacks",
    "dram_accesses",
    "row_hits",
    "row_misses",
    "row_conflicts",
)

#: The subset of :data:`TIMELINE_COLUMNS` recorded as interval deltas.
DELTA_COLUMNS = TIMELINE_COLUMNS[4:]

_NUM_COLUMNS = len(TIMELINE_COLUMNS)
_COLUMN_INDEX = {name: index for index, name in enumerate(TIMELINE_COLUMNS)}


def _guarded_ratio(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Elementwise ``numerator / denominator`` with 0.0 where the denominator is 0."""
    out = np.zeros_like(numerator, dtype=np.float64)
    np.divide(numerator, denominator, out=out, where=denominator != 0)
    return out


class Timeline:
    """Growable columnar store of per-chunk samples.

    Rows are appended by the telemetry recorder; consumers read columns as
    NumPy views (:meth:`column`), whole tables (:meth:`as_dict`) or derived
    per-interval rates (:meth:`derived`).
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._data = np.zeros((capacity, _NUM_COLUMNS), dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def append(self, row) -> None:
        """Append one sample row (sequence in :data:`TIMELINE_COLUMNS` order)."""
        if len(row) != _NUM_COLUMNS:
            raise ValueError(
                f"sample row has {len(row)} values; expected {_NUM_COLUMNS}")
        if self._size == len(self._data):
            grown = np.zeros((2 * len(self._data), _NUM_COLUMNS), dtype=np.float64)
            grown[:self._size] = self._data[:self._size]
            self._data = grown
        self._data[self._size] = row
        self._size += 1

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def column(self, name: str) -> np.ndarray:
        """One metric across all samples (a read-only view, no copy)."""
        try:
            index = _COLUMN_INDEX[name]
        except KeyError:
            raise KeyError(f"unknown timeline column {name!r}; "
                           f"known: {', '.join(TIMELINE_COLUMNS)}")
        view = self._data[:self._size, index]
        view.flags.writeable = False
        return view

    def as_dict(self) -> Dict[str, np.ndarray]:
        """Every recorded column, keyed by name."""
        return {name: self.column(name) for name in TIMELINE_COLUMNS}

    def rows(self) -> List[List[float]]:
        """Every sample as a plain list of floats (JSONL-serialisable)."""
        return self._data[:self._size].tolist()

    def cumulative(self, name: str) -> np.ndarray:
        """Running total of a delta column (absolute columns pass through)."""
        column = self.column(name)
        if name not in DELTA_COLUMNS:
            return column
        return np.cumsum(column)

    def derived(self) -> Dict[str, np.ndarray]:
        """Per-interval rates the observability reports plot.

        ``l1_hit_rate``
            L1 hits over accesses in the interval.
        ``llc_hit_rate``
            LLC hits over LLC demand lookups (hits + misses).
        ``mpki``
            LLC misses per thousand instructions.
        ``row_hit_rate``
            DRAM row-buffer hits over column accesses served.
        ``generated_read_share``
            Bulk + prefetch reads over all DRAM accesses served (the
            prediction mechanisms' share of the memory traffic).

        Every ratio is 0.0 where its denominator is 0 for the interval.
        """
        accesses = self.column("accesses")
        llc_hits = self.column("llc_hits")
        llc_misses = self.column("llc_misses")
        dram = self.column("dram_accesses")
        return {
            "l1_hit_rate": _guarded_ratio(self.column("l1_hits"), accesses),
            "llc_hit_rate": _guarded_ratio(llc_hits, llc_hits + llc_misses),
            "mpki": _guarded_ratio(1000.0 * llc_misses,
                                   self.column("instructions")),
            "row_hit_rate": _guarded_ratio(self.column("row_hits"), dram),
            "generated_read_share": _guarded_ratio(
                self.column("bulk_reads") + self.column("prefetch_reads"), dram),
        }

    def totals(self) -> Dict[str, float]:
        """Sum of every delta column over the whole run (exact, order-free:
        the deltas are integer-valued counter differences)."""
        return {name: float(self.column(name).sum()) for name in DELTA_COLUMNS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeline({self._size} samples x {_NUM_COLUMNS} columns)"
