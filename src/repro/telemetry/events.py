"""Structured JSONL event log: schema, writer, reader, validation.

One telemetry run serialises to one JSON-Lines file.  Every line is a JSON
object with an ``"event"`` discriminator; the schema (version
:data:`EVENT_SCHEMA_VERSION`) has four event types:

``meta``
    Exactly one, first line.  Carries ``schema`` (int), ``mode`` (recorder
    mode), ``columns`` (the timeline column order the ``sample`` events use)
    and ``created_unix`` (absolute wall-clock anchor; span/mark timestamps
    are relative seconds).

``sample``
    One per timeline row: ``i`` (sample index) and ``data`` (column name ->
    float, exactly the ``meta.columns`` set).

``span``
    One per (possibly aggregated) pipeline stage: ``name``, ``start_s``,
    ``duration_s`` and a ``counters`` mapping.

``mark``
    Instantaneous annotation: ``name``, ``t_s`` and a ``fields`` mapping
    (scenario phase boundaries, measurement start, run start).

:func:`read_events_jsonl` validates every line against this schema and
raises :class:`ValueError` on the first violation, so downstream consumers
(the ``repro report`` renderer, fleet aggregation) never parse garbage.
:func:`timeline_from_events` reconstructs a :class:`~repro.telemetry.timeline.Timeline`
bit-for-bit from the ``sample`` events (round-trip is tested).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Union

from repro.telemetry.timeline import TIMELINE_COLUMNS, Timeline

__all__ = [
    "EVENT_SCHEMA_VERSION",
    "read_events_jsonl",
    "timeline_from_events",
    "validate_event",
    "write_events_jsonl",
]

#: Version stamped into every ``meta`` record; bump on layout changes so
#: stale logs fail validation instead of rendering nonsense.
EVENT_SCHEMA_VERSION = 1

_REQUIRED_KEYS = {
    "meta": ("schema", "mode", "columns", "created_unix"),
    "sample": ("i", "data"),
    "span": ("name", "start_s", "duration_s", "counters"),
    "mark": ("name", "t_s", "fields"),
}

_NUMBER = (int, float)


def validate_event(event: dict) -> dict:
    """Check one event against the schema; returns it or raises ValueError."""
    if not isinstance(event, dict):
        raise ValueError(f"event is not an object: {event!r}")
    kind = event.get("event")
    if kind not in _REQUIRED_KEYS:
        raise ValueError(f"unknown event type {kind!r}")
    for key in _REQUIRED_KEYS[kind]:
        if key not in event:
            raise ValueError(f"{kind} event missing required key {key!r}")
    if kind == "meta":
        if event["schema"] != EVENT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported event schema {event['schema']!r} "
                f"(this reader understands {EVENT_SCHEMA_VERSION})")
        if not isinstance(event["columns"], list):
            raise ValueError("meta.columns must be a list")
    elif kind == "sample":
        data = event["data"]
        if not isinstance(data, dict):
            raise ValueError("sample.data must be an object")
        for column, value in data.items():
            if not isinstance(value, _NUMBER) or isinstance(value, bool):
                raise ValueError(
                    f"sample.data[{column!r}] is not a number: {value!r}")
    elif kind == "span":
        for key in ("start_s", "duration_s"):
            if not isinstance(event[key], _NUMBER) or isinstance(event[key], bool):
                raise ValueError(f"span.{key} is not a number: {event[key]!r}")
        if not isinstance(event["counters"], dict):
            raise ValueError("span.counters must be an object")
    else:  # mark
        if not isinstance(event["t_s"], _NUMBER) or isinstance(event["t_s"], bool):
            raise ValueError(f"mark.t_s is not a number: {event['t_s']!r}")
        if not isinstance(event["fields"], dict):
            raise ValueError("mark.fields must be an object")
    return event


def write_events_jsonl(events: Iterable[dict], path: Union[str, Path]) -> Path:
    """Serialise an event stream to one JSONL file (validated on the way out)."""
    path = Path(path)
    lines = [json.dumps(validate_event(event), sort_keys=True) for event in events]
    path.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return path

def read_events_jsonl(path: Union[str, Path]) -> List[dict]:
    """Parse and validate a JSONL event log; raises ValueError on bad input."""
    events: List[dict] = []
    text = Path(path).read_text(encoding="utf-8")
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{number}: not valid JSON: {exc}") from None
        try:
            events.append(validate_event(event))
        except ValueError as exc:
            raise ValueError(f"{path}:{number}: {exc}") from None
    if events and events[0]["event"] != "meta":
        raise ValueError(f"{path}: first event must be 'meta', "
                         f"got {events[0]['event']!r}")
    return events


def timeline_from_events(events: Iterable[dict]) -> Timeline:
    """Rebuild a :class:`Timeline` from the ``sample`` events of a log.

    Samples are re-ordered by their index so the reconstruction is
    insensitive to interleaving with span/mark lines; the column order is
    taken from the current schema (the ``meta.columns`` list is validated
    against it when present).
    """
    samples = []
    for event in events:
        if event.get("event") == "meta":
            recorded = tuple(event["columns"])
            if recorded != TIMELINE_COLUMNS:
                raise ValueError(
                    f"event log columns {recorded!r} do not match this "
                    f"build's timeline columns")
        elif event.get("event") == "sample":
            samples.append(event)
    samples.sort(key=lambda event: event["i"])
    timeline = Timeline(capacity=max(len(samples), 1))
    for event in samples:
        data = event["data"]
        missing = [c for c in TIMELINE_COLUMNS if c not in data]
        if missing:
            raise ValueError(f"sample {event['i']} missing columns {missing}")
        timeline.append([data[column] for column in TIMELINE_COLUMNS])
    return timeline
