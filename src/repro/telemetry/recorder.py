"""Telemetry mode resolution and the per-run recorder.

Telemetry follows the engine-selection idiom (:mod:`repro.cache.engine`):
an explicit argument beats the ``REPRO_TELEMETRY`` environment variable,
which beats the default (``off``).  :func:`resolve_telemetry` returns
``None`` for ``off`` -- the simulator's hot path tests ``recorder is
None`` once per chunk and otherwise runs the exact same code as before, so
the default costs nothing.

A :class:`TelemetryRecorder` is caller-owned and *never* attached to a
:class:`~repro.sim.results.SimulationResult`: result fingerprints cover
every result field, and the off/full bit-identity guarantee (tested and
gated in CI) depends on telemetry staying out of the result object.

Sampling discipline: one sample per streaming chunk boundary, never per
access.  Every sampled value is a counter the system already maintains as a
plain int / flat NumPy array (``ServerSystem.counters``, the flat DRAM
channel count arrays) -- the recorder only reads, subtracts the previous
snapshot and appends one row.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Optional, Union

from repro.telemetry.events import EVENT_SCHEMA_VERSION, write_events_jsonl
from repro.telemetry.spans import SpanTracer
from repro.telemetry.timeline import TIMELINE_COLUMNS, Timeline

__all__ = [
    "DEFAULT_MODE",
    "MODES",
    "TELEMETRY_ENV_VAR",
    "TelemetryRecorder",
    "resolve_telemetry",
]

#: Environment variable consulted when no explicit mode is given.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY"

#: Recognised telemetry modes, cheapest first.
MODES = ("off", "chunks", "spans", "full")

DEFAULT_MODE = "off"


def resolve_telemetry(
    telemetry: "Union[None, str, TelemetryRecorder]" = None,
) -> "Optional[TelemetryRecorder]":
    """Resolve a telemetry selection to a recorder (or ``None`` for off).

    Accepts ``None`` (consult ``REPRO_TELEMETRY``, default ``off``), a mode
    name from :data:`MODES`, or an existing :class:`TelemetryRecorder`
    (returned as-is, so one recorder can observe several runs).  Unknown
    mode names raise :class:`ValueError` -- a typo must not silently
    disable telemetry the caller asked for.
    """
    if isinstance(telemetry, TelemetryRecorder):
        return telemetry
    if telemetry is None:
        telemetry = os.environ.get(TELEMETRY_ENV_VAR, "").strip() or DEFAULT_MODE
    if telemetry not in MODES:
        raise ValueError(
            f"unknown telemetry mode {telemetry!r}; expected one of "
            f"{', '.join(MODES)}")
    if telemetry == "off":
        return None
    return TelemetryRecorder(mode=telemetry)


def _queue_occupancy(memory) -> int:
    """Transfers enqueued but not yet served, across every channel."""
    pending = getattr(memory, "pending_count", None)
    if pending is not None:
        return pending()
    return sum(len(controller.queue) for controller in memory.controllers)


class TelemetryRecorder:
    """Collects timeline samples and span events for one or more runs.

    ``mode`` decides what is recorded: ``chunks`` keeps only the timeline,
    ``spans`` only the span/mark event log, ``full`` both.  The simulator
    calls the ``on_*`` hooks; everything else is for consumers.
    """

    def __init__(self, mode: str = "full") -> None:
        if mode not in MODES or mode == "off":
            raise ValueError(
                f"recorder mode must be one of {', '.join(MODES[1:])}; "
                f"got {mode!r} (off means: pass no recorder)")
        self.mode = mode
        self.wants_samples = mode in ("chunks", "full")
        self.wants_spans = mode in ("spans", "full")
        self.timeline = Timeline() if self.wants_samples else None
        self.tracer = SpanTracer() if self.wants_spans else None
        self.created_unix = time.time()
        #: Cumulative counter snapshot at the previous sample (or baseline).
        self._prev: Optional[tuple] = None
        #: Accesses interpreted since the recorder first saw the system --
        #: accumulated from deltas, so it stays monotone across the counter
        #: reset at ``begin_measurement`` and aligns timelines recorded at
        #: different chunk sizes.
        self._accesses_total = 0.0
        self._runs = 0

    # ------------------------------------------------------------------ #
    # Simulator hooks
    # ------------------------------------------------------------------ #
    def _totals(self, system) -> tuple:
        """Cumulative hot-counter totals, in ``DELTA_COLUMNS`` order."""
        counters = system.counters
        dram = system.memory.aggregate_stats()
        return (
            counters["accesses"],
            system._instructions,
            counters["l1_hits"],
            counters["llc_hits"],
            counters["llc_misses"],
            counters["demand_reads"],
            counters["covered_reads"],
            counters["demand_writebacks"],
            counters["bulk_reads"],
            counters["prefetch_reads"],
            counters["bulk_writebacks"],
            counters["eager_writebacks"],
            dram["accesses"],
            dram["row_hits"],
            dram["row_misses"],
            dram["row_conflicts"],
        )

    def on_run_start(self, system, workload: str = "") -> None:
        """Baseline the counter snapshot before the first chunk runs."""
        self._runs += 1
        if self.wants_samples:
            self._prev = self._totals(system)
        if self.tracer is not None:
            self.tracer.mark("run_start", run=self._runs)

    def on_chunk(self, system, intensity: float = 1.0) -> None:
        """Append one timeline sample at a streaming chunk boundary.

        ``intensity`` is the trace source's current admission multiplier at
        the boundary (1.0 for open-loop sources) -- recorded as a gauge so
        closed-loop runs expose their controller trajectory alongside the
        counters it reacted to.
        """
        if not self.wants_samples:
            return
        totals = self._totals(system)
        prev = self._prev
        if prev is None:
            prev = (0.0,) * len(totals)
        deltas = [now - before for now, before in zip(totals, prev)]
        self._prev = totals
        self._accesses_total += deltas[0]
        self.timeline.append(
            [system._core_cycle, self._accesses_total,
             _queue_occupancy(system.memory), float(intensity)] + deltas)

    def on_measurement_start(self, system) -> None:
        """Re-baseline after ``begin_measurement`` reset the counters."""
        if self.wants_samples:
            self._prev = self._totals(system)
        if self.tracer is not None:
            self.tracer.mark("measurement_start",
                             accesses_total=self._accesses_total)

    def on_run_end(self, system) -> None:
        """Flush aggregated stage spans and stamp the run summary mark."""
        if self.tracer is not None:
            self.tracer.flush_stages()
            self.tracer.mark(
                "run_end",
                run=self._runs,
                core_cycles=system._core_cycle,
                instructions=system._instructions,
            )

    def note_phase(self, name: str, accesses: int) -> None:
        """Record a scenario phase boundary (cumulative trace position)."""
        if self.tracer is not None:
            self.tracer.mark("phase", phase=name, accesses=accesses)

    # ------------------------------------------------------------------ #
    # Span helpers (no-ops when the mode records no spans)
    # ------------------------------------------------------------------ #
    def add_stage(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold hot-loop stage time into the per-stage accumulators."""
        if self.tracer is not None:
            self.tracer.add_stage(name, seconds, calls)

    @contextmanager
    def span(self, name: str, **counters: float):
        """Wrap a coarse pipeline stage (trace compile, store I/O, ...)."""
        if self.tracer is None:
            yield
            return
        with self.tracer.span(name, **counters):
            yield

    def mark(self, name: str, **fields) -> None:
        """Record an instantaneous annotation if spans are enabled."""
        if self.tracer is not None:
            self.tracer.mark(name, **fields)

    # ------------------------------------------------------------------ #
    # Output
    # ------------------------------------------------------------------ #
    def events(self) -> list:
        """The full event stream: one ``meta`` record, samples, spans."""
        stream = [{
            "event": "meta",
            "schema": EVENT_SCHEMA_VERSION,
            "mode": self.mode,
            "columns": list(TIMELINE_COLUMNS),
            "created_unix": self.created_unix,
        }]
        if self.timeline is not None:
            for index, row in enumerate(self.timeline.rows()):
                stream.append({
                    "event": "sample",
                    "i": index,
                    "data": dict(zip(TIMELINE_COLUMNS, row)),
                })
        if self.tracer is not None:
            stream.extend(self.tracer.span_events())
        return stream

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Serialise :meth:`events` to a JSONL file and return its path."""
        return write_events_jsonl(self.events(), path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        samples = len(self.timeline) if self.timeline is not None else 0
        spans = len(self.tracer.events) if self.tracer is not None else 0
        return (f"TelemetryRecorder(mode={self.mode!r}, "
                f"samples={samples}, events={spans})")
