"""Observability layer: timelines, span tracing and campaign metrics.

Everything the simulator reports today is an end-of-run scalar; this
package adds the *when* and the *where*:

* :class:`Timeline` -- per-chunk time series of the hot counters (cache hit
  rates, MPKI, DRAM row behaviour, queue occupancy) in preallocated NumPy
  columns keyed by core cycle;
* :class:`SpanTracer` -- wall-time spans around pipeline stages plus
  instantaneous marks, serialised as a structured JSONL event log;
* :mod:`repro.telemetry.metrics` -- per-job and fleet-level campaign cost
  accounting (wall time, peak RSS, store provenance, worker utilization).

Selection follows the engine idiom: ``REPRO_TELEMETRY=off|chunks|spans|full``
or a ``telemetry=`` argument anywhere a run starts; the default is ``off``
and costs a single ``is None`` test per chunk.  Telemetry is observational
only -- results stay bit-identical with it on (tested, and gated by
``benchmarks/bench_telemetry.py`` at <= 5% overhead in full mode).
"""

from repro.telemetry.events import (
    EVENT_SCHEMA_VERSION,
    read_events_jsonl,
    timeline_from_events,
    validate_event,
    write_events_jsonl,
)
from repro.telemetry.metrics import (
    CAMPAIGN_METRICS_SCHEMA_VERSION,
    JobMetrics,
    campaign_metrics,
    peak_rss_bytes,
    read_campaign_metrics,
    write_campaign_metrics,
)
from repro.telemetry.recorder import (
    DEFAULT_MODE,
    MODES,
    TELEMETRY_ENV_VAR,
    TelemetryRecorder,
    resolve_telemetry,
)
from repro.telemetry.spans import SpanTracer
from repro.telemetry.timeline import DELTA_COLUMNS, TIMELINE_COLUMNS, Timeline

__all__ = [
    "CAMPAIGN_METRICS_SCHEMA_VERSION",
    "DEFAULT_MODE",
    "DELTA_COLUMNS",
    "EVENT_SCHEMA_VERSION",
    "JobMetrics",
    "MODES",
    "SpanTracer",
    "TELEMETRY_ENV_VAR",
    "TIMELINE_COLUMNS",
    "TelemetryRecorder",
    "Timeline",
    "campaign_metrics",
    "peak_rss_bytes",
    "read_campaign_metrics",
    "read_events_jsonl",
    "resolve_telemetry",
    "timeline_from_events",
    "validate_event",
    "write_campaign_metrics",
    "write_events_jsonl",
]
