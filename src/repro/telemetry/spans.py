"""Lightweight span tracing for the simulation pipeline.

A :class:`SpanTracer` records begin/end spans around pipeline stages (trace
compilation, chunk generation, chunk service, DRAM drain, result assembly,
store I/O) with wall time and optional per-span counters, plus instantaneous
*marks* (scenario phase boundaries, measurement start).  Everything is kept
as plain dict events so the recorder can stream them out as JSONL
(:mod:`repro.telemetry.events`).

Timestamps are ``time.perf_counter`` seconds relative to the tracer's
creation -- monotonic and cheap; the absolute wall-clock anchor lives in the
event log's ``meta`` record.

The tracer deliberately has no notion of the simulator: the telemetry
recorder decides where stage boundaries fall.  Hot-path discipline is the
caller's job -- spans wrap *stages* (per chunk at the finest), never
individual accesses.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List

__all__ = [
    "SpanTracer",
]


class SpanTracer:
    """Accumulates span and mark events with wall-clock timing."""

    def __init__(self) -> None:
        self.origin = time.perf_counter()
        self.events: List[dict] = []
        # Aggregated stage accumulators: repeated fine-grained stages (one
        # chunk each) fold into one span per stage name instead of one event
        # per chunk, keeping event logs bounded for million-access runs.
        self._stage_seconds: Dict[str, float] = {}
        self._stage_calls: Dict[str, int] = {}
        self._stage_first_start: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Discrete spans
    # ------------------------------------------------------------------ #
    def begin(self) -> float:
        """Start a span; returns the token :meth:`end` consumes."""
        return time.perf_counter()

    def end(self, name: str, token: float, **counters: float) -> dict:
        """Close a span opened by :meth:`begin` and record it."""
        now = time.perf_counter()
        event = {
            "event": "span",
            "name": name,
            "start_s": token - self.origin,
            "duration_s": now - token,
            "counters": dict(counters),
        }
        self.events.append(event)
        return event

    @contextmanager
    def span(self, name: str, **counters: float):
        """Context manager form of :meth:`begin`/:meth:`end`."""
        token = self.begin()
        try:
            yield
        finally:
            self.end(name, token, **counters)

    # ------------------------------------------------------------------ #
    # Aggregated stages
    # ------------------------------------------------------------------ #
    def add_stage(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold ``seconds`` of work into the running total of stage ``name``."""
        if name not in self._stage_seconds:
            self._stage_seconds[name] = 0.0
            self._stage_calls[name] = 0
            self._stage_first_start[name] = time.perf_counter() - seconds
        self._stage_seconds[name] += seconds
        self._stage_calls[name] += calls

    def flush_stages(self) -> None:
        """Emit one span per accumulated stage and reset the accumulators."""
        for name in list(self._stage_seconds):
            self.events.append({
                "event": "span",
                "name": name,
                "start_s": self._stage_first_start[name] - self.origin,
                "duration_s": self._stage_seconds[name],
                "counters": {"calls": self._stage_calls[name]},
            })
        self._stage_seconds.clear()
        self._stage_calls.clear()
        self._stage_first_start.clear()

    # ------------------------------------------------------------------ #
    # Marks
    # ------------------------------------------------------------------ #
    def mark(self, name: str, **fields: float) -> dict:
        """Record an instantaneous event (phase boundary, reset, ...)."""
        event = {
            "event": "mark",
            "name": name,
            "t_s": time.perf_counter() - self.origin,
            "fields": dict(fields),
        }
        self.events.append(event)
        return event

    def span_events(self) -> List[dict]:
        """Every recorded span/mark event, in append order."""
        return list(self.events)
