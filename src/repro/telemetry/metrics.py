"""Per-job and fleet-level campaign metrics.

The exec layer (``repro.exec.campaign``) records one :class:`JobMetrics`
per job outcome -- wall time, peak RSS of the process that produced it,
store provenance -- and folds them into a campaign metrics document with
:func:`campaign_metrics`, persisted as JSON next to the artifact store so a
``ScenarioGrid`` sweep leaves a fleet-level record behind.

This module sits *below* ``repro.exec`` in the layer order and therefore
only speaks plain data (dataclasses, dicts); it never imports the exec
layer.  Everything is stdlib-only so worker processes can report metrics
without touching NumPy.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "CAMPAIGN_METRICS_SCHEMA_VERSION",
    "JobMetrics",
    "campaign_metrics",
    "peak_rss_bytes",
    "read_campaign_metrics",
    "record_snapshot_capture",
    "record_snapshot_hit",
    "record_snapshot_miss",
    "record_snapshot_restore",
    "reset_snapshot_counters",
    "snapshot_cache_info",
    "write_campaign_metrics",
]

#: Stamped into every campaign metrics document.
CAMPAIGN_METRICS_SCHEMA_VERSION = 1


# --------------------------------------------------------------------- #
# Snapshot-cache counters (process-wide, like the runner's trace cache)
# --------------------------------------------------------------------- #
#: Warm-state snapshot reuse counters for this process: store lookups that
#: found a matching snapshot (``hits``) or did not (``misses``), warmups
#: captured (``captures``) and systems forked from snapshots (``restores``),
#: with the snapshot byte volume moved each way.  Purely observational --
#: recording sites never influence simulation state, so off==on bit-identity
#: holds by construction.
_SNAPSHOT_COUNTERS: Dict[str, int] = {
    "hits": 0,
    "misses": 0,
    "captures": 0,
    "restores": 0,
    "bytes_written": 0,
    "bytes_restored": 0,
}


def record_snapshot_hit() -> None:
    """Count one snapshot-store lookup that found a usable warm state."""
    _SNAPSHOT_COUNTERS["hits"] += 1


def record_snapshot_miss() -> None:
    """Count one snapshot-store lookup that found nothing."""
    _SNAPSHOT_COUNTERS["misses"] += 1


def record_snapshot_capture(nbytes: int) -> None:
    """Count one warmup capture of ``nbytes`` of snapshot state."""
    _SNAPSHOT_COUNTERS["captures"] += 1
    _SNAPSHOT_COUNTERS["bytes_written"] += int(nbytes)


def record_snapshot_restore(nbytes: int) -> None:
    """Count one system forked from a snapshot of ``nbytes``."""
    _SNAPSHOT_COUNTERS["restores"] += 1
    _SNAPSHOT_COUNTERS["bytes_restored"] += int(nbytes)


def snapshot_cache_info() -> Dict[str, object]:
    """This process's snapshot reuse counters (``repro report --caches``)."""
    info: Dict[str, object] = dict(_SNAPSHOT_COUNTERS)
    lookups = _SNAPSHOT_COUNTERS["hits"] + _SNAPSHOT_COUNTERS["misses"]
    info["hit_ratio"] = _SNAPSHOT_COUNTERS["hits"] / lookups if lookups else 0.0
    return info


def reset_snapshot_counters() -> None:
    """Zero the snapshot counters (test isolation helper)."""
    for key in _SNAPSHOT_COUNTERS:
        _SNAPSHOT_COUNTERS[key] = 0


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalised here
    so the metrics file is platform-independent.  Returns 0 where the
    :mod:`resource` module is unavailable (non-POSIX platforms).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - exercised on macOS only
        return int(peak)
    return int(peak) * 1024


@dataclass
class JobMetrics:
    """Provenance and cost of one campaign job outcome."""

    label: str
    workload: str
    config: str
    seed: int
    #: ``"simulated"`` or ``"store"`` (the campaign progress source names).
    source: str
    #: Wall-clock seconds to produce the result (0.0 for store hits).
    wall_seconds: float
    #: Peak RSS (bytes) of the process that produced the result, at the
    #: time it finished this job.
    peak_rss_bytes: int
    #: OS pid of the producing process (distinguishes pool workers).
    pid: int

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobMetrics":
        return cls(**{name: data[name] for name in cls.__dataclass_fields__})


def campaign_metrics(job_metrics: Iterable[JobMetrics],
                     elapsed_seconds: float,
                     workers: int,
                     store_stats: Optional[Dict[str, object]] = None,
                     trace_cache: Optional[Dict[str, object]] = None,
                     snapshot_cache: Optional[Dict[str, object]] = None,
                     ) -> Dict[str, object]:
    """Fold per-job metrics into the fleet-level campaign document.

    ``worker_utilization`` is the simulated wall time divided by the wall
    capacity of the pool (``workers * elapsed``); 0.0 when every job came
    from the store (nothing simulated, no division by zero).
    """
    jobs: List[JobMetrics] = list(job_metrics)
    simulated = [job for job in jobs if job.source == "simulated"]
    simulated_wall = sum(job.wall_seconds for job in simulated)
    capacity = workers * elapsed_seconds
    utilization = simulated_wall / capacity if capacity > 0 and simulated else 0.0
    by_pid: Dict[int, float] = {}
    for job in simulated:
        by_pid[job.pid] = by_pid.get(job.pid, 0.0) + job.wall_seconds
    document: Dict[str, object] = {
        "schema": CAMPAIGN_METRICS_SCHEMA_VERSION,
        "elapsed_seconds": elapsed_seconds,
        "workers": workers,
        "jobs_total": len(jobs),
        "jobs_simulated": len(simulated),
        "jobs_from_store": len(jobs) - len(simulated),
        "simulated_wall_seconds": simulated_wall,
        "max_job_wall_seconds": max(
            (job.wall_seconds for job in simulated), default=0.0),
        "mean_job_wall_seconds": (
            simulated_wall / len(simulated) if simulated else 0.0),
        "worker_utilization": utilization,
        "peak_rss_bytes": max((job.peak_rss_bytes for job in jobs), default=0),
        "wall_seconds_by_pid": {str(pid): seconds
                                for pid, seconds in sorted(by_pid.items())},
        "jobs": [job.to_dict() for job in jobs],
    }
    if store_stats is not None:
        document["store"] = dict(store_stats)
    if trace_cache is not None:
        document["trace_cache"] = dict(trace_cache)
    if snapshot_cache is not None:
        document["snapshot_cache"] = dict(snapshot_cache)
    return document


def write_campaign_metrics(document: Dict[str, object],
                           path: Union[str, Path]) -> Path:
    """Persist a campaign metrics document as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    tmp.replace(path)
    return path


def read_campaign_metrics(path: Union[str, Path]) -> Dict[str, object]:
    """Load a campaign metrics document; raises ValueError on bad schema."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "schema" not in document:
        raise ValueError(f"{path}: not a campaign metrics document")
    if document["schema"] != CAMPAIGN_METRICS_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported campaign metrics schema "
            f"{document['schema']!r}")
    return document
