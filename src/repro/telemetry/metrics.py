"""Per-job and fleet-level campaign metrics.

The exec layer (``repro.exec.campaign``) records one :class:`JobMetrics`
per job outcome -- wall time, peak RSS of the process that produced it,
store provenance -- and folds them into a campaign metrics document with
:func:`campaign_metrics`, persisted as JSON next to the artifact store so a
``ScenarioGrid`` sweep leaves a fleet-level record behind.

This module sits *below* ``repro.exec`` in the layer order and therefore
only speaks plain data (dataclasses, dicts); it never imports the exec
layer.  Everything is stdlib-only so worker processes can report metrics
without touching NumPy.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

__all__ = [
    "CAMPAIGN_METRICS_SCHEMA_VERSION",
    "JobMetrics",
    "campaign_metrics",
    "peak_rss_bytes",
    "read_campaign_metrics",
    "write_campaign_metrics",
]

#: Stamped into every campaign metrics document.
CAMPAIGN_METRICS_SCHEMA_VERSION = 1


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalised here
    so the metrics file is platform-independent.  Returns 0 where the
    :mod:`resource` module is unavailable (non-POSIX platforms).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - exercised on macOS only
        return int(peak)
    return int(peak) * 1024


@dataclass
class JobMetrics:
    """Provenance and cost of one campaign job outcome."""

    label: str
    workload: str
    config: str
    seed: int
    #: ``"simulated"`` or ``"store"`` (the campaign progress source names).
    source: str
    #: Wall-clock seconds to produce the result (0.0 for store hits).
    wall_seconds: float
    #: Peak RSS (bytes) of the process that produced the result, at the
    #: time it finished this job.
    peak_rss_bytes: int
    #: OS pid of the producing process (distinguishes pool workers).
    pid: int

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JobMetrics":
        return cls(**{name: data[name] for name in cls.__dataclass_fields__})


def campaign_metrics(job_metrics: Iterable[JobMetrics],
                     elapsed_seconds: float,
                     workers: int,
                     store_stats: Optional[Dict[str, object]] = None,
                     trace_cache: Optional[Dict[str, object]] = None,
                     ) -> Dict[str, object]:
    """Fold per-job metrics into the fleet-level campaign document.

    ``worker_utilization`` is the simulated wall time divided by the wall
    capacity of the pool (``workers * elapsed``); 0.0 when every job came
    from the store (nothing simulated, no division by zero).
    """
    jobs: List[JobMetrics] = list(job_metrics)
    simulated = [job for job in jobs if job.source == "simulated"]
    simulated_wall = sum(job.wall_seconds for job in simulated)
    capacity = workers * elapsed_seconds
    utilization = simulated_wall / capacity if capacity > 0 and simulated else 0.0
    by_pid: Dict[int, float] = {}
    for job in simulated:
        by_pid[job.pid] = by_pid.get(job.pid, 0.0) + job.wall_seconds
    document: Dict[str, object] = {
        "schema": CAMPAIGN_METRICS_SCHEMA_VERSION,
        "elapsed_seconds": elapsed_seconds,
        "workers": workers,
        "jobs_total": len(jobs),
        "jobs_simulated": len(simulated),
        "jobs_from_store": len(jobs) - len(simulated),
        "simulated_wall_seconds": simulated_wall,
        "max_job_wall_seconds": max(
            (job.wall_seconds for job in simulated), default=0.0),
        "mean_job_wall_seconds": (
            simulated_wall / len(simulated) if simulated else 0.0),
        "worker_utilization": utilization,
        "peak_rss_bytes": max((job.peak_rss_bytes for job in jobs), default=0),
        "wall_seconds_by_pid": {str(pid): seconds
                                for pid, seconds in sorted(by_pid.items())},
        "jobs": [job.to_dict() for job in jobs],
    }
    if store_stats is not None:
        document["store"] = dict(store_stats)
    if trace_cache is not None:
        document["trace_cache"] = dict(trace_cache)
    return document


def write_campaign_metrics(document: Dict[str, object],
                           path: Union[str, Path]) -> Path:
    """Persist a campaign metrics document as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    tmp.replace(path)
    return path


def read_campaign_metrics(path: Union[str, Path]) -> Dict[str, object]:
    """Load a campaign metrics document; raises ValueError on bad schema."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "schema" not in document:
        raise ValueError(f"{path}: not a campaign metrics document")
    if document["schema"] != CAMPAIGN_METRICS_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported campaign metrics schema "
            f"{document['schema']!r}")
    return document
