"""Terminal and JSON rendering for telemetry artifacts.

Backs the ``repro report`` CLI subcommand: given a JSONL event log this
module renders the run timeline (sampled intervals with derived rates) and
the span table; given a campaign metrics document it renders the fleet
table.  Every renderer has a ``summarize_*`` twin returning plain dicts for
``--json`` output -- the seed of the ROADMAP's HTML fleet reporting.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.reporting import format_table
from repro.telemetry.events import timeline_from_events
from repro.telemetry.timeline import Timeline

__all__ = [
    "render_campaign",
    "render_spans",
    "render_timeline",
    "summarize_events",
]

#: Timeline columns shown in the terminal table (the full set is in the
#: JSON summary); one row per sample would be unreadable past a few dozen
#: samples, so the renderer caps rows and says how many were elided.
_MAX_TIMELINE_ROWS = 40


def render_timeline(timeline: Timeline, max_rows: int = _MAX_TIMELINE_ROWS) -> str:
    """The sampled run as a text table of per-interval counts and rates."""
    if len(timeline) == 0:
        return "timeline: no samples recorded"
    derived = timeline.derived()
    headers = ("cycle", "accesses", "l1_hit%", "llc_hit%", "mpki",
               "dram", "row_hit%", "queue")
    rows: List[Sequence[str]] = []
    count = len(timeline)
    shown = min(count, max_rows)
    cycles = timeline.column("cycle")
    accesses = timeline.column("accesses")
    dram = timeline.column("dram_accesses")
    queue = timeline.column("queue_occupancy")
    for i in range(shown):
        rows.append((
            f"{cycles[i]:.0f}",
            f"{accesses[i]:.0f}",
            f"{100.0 * derived['l1_hit_rate'][i]:.1f}",
            f"{100.0 * derived['llc_hit_rate'][i]:.1f}",
            f"{derived['mpki'][i]:.2f}",
            f"{dram[i]:.0f}",
            f"{100.0 * derived['row_hit_rate'][i]:.1f}",
            f"{queue[i]:.0f}",
        ))
    table = format_table(rows, headers)
    if count > shown:
        table += f"\n... ({count - shown} more sample(s); use --json for all)"
    totals = timeline.totals()
    table += (f"\ntotals: {totals['accesses']:.0f} accesses, "
              f"{totals['dram_accesses']:.0f} DRAM accesses over "
              f"{count} sample(s)")
    return table


def render_spans(events: Sequence[dict]) -> str:
    """The span/mark events of a log as a text table."""
    spans = [e for e in events if e.get("event") == "span"]
    marks = [e for e in events if e.get("event") == "mark"]
    if not spans and not marks:
        return "spans: no span events recorded"
    lines: List[str] = []
    if spans:
        rows = []
        for span in sorted(spans, key=lambda e: e["start_s"]):
            counters = ", ".join(f"{k}={v:g}" if isinstance(v, float)
                                 else f"{k}={v}"
                                 for k, v in sorted(span["counters"].items()))
            rows.append((span["name"], f"{span['start_s']:.3f}",
                         f"{span['duration_s'] * 1e3:.2f}", counters))
        lines.append(format_table(
            rows, ("span", "start_s", "duration_ms", "counters")))
    if marks:
        rows = []
        for mark in marks:
            fields = ", ".join(f"{k}={v}" for k, v in sorted(mark["fields"].items()))
            rows.append((mark["name"], f"{mark['t_s']:.3f}", fields))
        lines.append(format_table(rows, ("mark", "t_s", "fields")))
    return "\n\n".join(lines)


def render_campaign(document: Dict[str, object]) -> str:
    """A campaign metrics document as summary lines plus the per-job table."""
    lines = [
        f"campaign: {document['jobs_total']} job(s) "
        f"({document['jobs_simulated']} simulated, "
        f"{document['jobs_from_store']} from store) in "
        f"{document['elapsed_seconds']:.2f}s on {document['workers']} worker(s)",
        f"worker utilization: {100.0 * float(document['worker_utilization']):.1f}%"
        f"  peak RSS: {int(document['peak_rss_bytes']) / (1 << 20):.1f} MiB",
    ]
    store = document.get("store")
    if isinstance(store, dict):
        lines.append(
            "store: "
            f"{store.get('hits', 0):.0f} hit(s), "
            f"{store.get('misses', 0):.0f} miss(es), "
            f"{store.get('puts', 0):.0f} put(s), "
            f"{store.get('evictions', 0):.0f} eviction(s), "
            f"{float(store.get('prune_bytes_reclaimed', 0)) / (1 << 20):.1f} MiB pruned")
    snapshots = document.get("snapshot_cache")
    if isinstance(snapshots, dict):
        lines.append(
            "snapshots: "
            f"{snapshots.get('hits', 0):.0f} hit(s), "
            f"{snapshots.get('misses', 0):.0f} miss(es), "
            f"{snapshots.get('captures', 0):.0f} capture(s), "
            f"{snapshots.get('restores', 0):.0f} restore(s), "
            f"{float(snapshots.get('bytes_restored', 0)) / (1 << 20):.1f} MiB restored")
    jobs = document.get("jobs") or []
    if jobs:
        rows = [(job["label"], job["source"], f"{job['wall_seconds']:.2f}",
                 f"{int(job['peak_rss_bytes']) / (1 << 20):.1f}", str(job["pid"]))
                for job in jobs]
        lines.append(format_table(
            rows, ("job", "source", "wall_s", "rss_MiB", "pid")))
    return "\n".join(lines)


def summarize_events(events: Sequence[dict]) -> Dict[str, object]:
    """A JSON-friendly summary of one event log (``repro report --json``)."""
    meta = next((e for e in events if e.get("event") == "meta"), None)
    timeline = timeline_from_events(events)
    spans = [e for e in events if e.get("event") == "span"]
    marks = [e for e in events if e.get("event") == "mark"]
    summary: Dict[str, object] = {
        "mode": meta["mode"] if meta else None,
        "samples": len(timeline),
        "spans": spans,
        "marks": marks,
    }
    if len(timeline):
        summary["totals"] = timeline.totals()
        summary["columns"] = {name: column.tolist()
                              for name, column in timeline.as_dict().items()}
        summary["derived"] = {name: column.tolist()
                              for name, column in timeline.derived().items()}
    return summary
