"""Compile a :class:`~repro.scenario.spec.Scenario` to columnar trace chunks.

The compiler turns the declarative phase/tenant description into the same
:class:`~repro.trace.buffer.TraceBuffer` chunk stream the single-workload
generator emits, by splicing per-tenant job streams with vectorized strided
assignment.  Three properties are load-bearing and guarded by tests:

* **Seed determinism** -- every random draw flows through a named RNG
  stream derived from ``(seed, scenario, phase, core, slot)``, so one seed
  fixes the entire multi-tenant trace bit for bit.
* **Chunk-size invariance** -- within a phase, the merged stream position
  ``p`` belongs to active core ``active[p mod A]``; for a core running
  ``J`` concurrent jobs, positions ``p ≡ i + A·s (mod A·J)`` belong to its
  slot ``s``.  Each (core, slot) pair therefore owns a fixed arithmetic
  progression of phase positions and consumes its own RNG stream strictly
  in order, so how the stream is windowed into chunks cannot reorder any
  draw.  The concatenation of the yielded chunks is bit-identical for every
  ``chunk_size``, including chunks that span phase boundaries.
* **Bounded memory** -- phase state (a handful of per-slot pending jobs) is
  created when a phase starts and dropped when it ends; residency is one
  chunk of columns plus at most one in-flight job per active (core, slot).

Intensity (phase x tenant x burst) scales the per-access *instruction
gaps*: the simulator computes arrival times from instruction counts, so an
access stream at intensity ``k`` arrives ``k`` times faster and contends
harder at the memory controllers, without changing which addresses are
touched.  Scale factors are computed from absolute phase positions, so they
too are chunk-size invariant.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.common.fingerprint import workload_fingerprint
from repro.common.rng import seeded_generator
from repro.scenario.spec import Phase, Scenario
from repro.trace.buffer import DEFAULT_CHUNK_SIZE, TRACE_DTYPES, TraceBuffer
from repro.workloads.generator import CoreLayout, SlotStream
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "generate_scenario_buffer",
    "iter_scenario_chunks",
]


class _TenantCoreStream:
    """One active core of one phase: its tenant's slot streams plus geometry."""

    __slots__ = ("core", "spec", "streams", "intensity")

    def __init__(self, core: int, spec: WorkloadSpec, layout: CoreLayout,
                 intensity: float, scenario: Scenario, phase_index: int,
                 seed: int) -> None:
        self.core = core
        self.spec = spec
        self.intensity = intensity
        # Job slots restart at each phase boundary (a phase change is a new
        # request population); the dataset layout persists across phases.
        self.streams = [
            SlotStream(spec, layout, seeded_generator(
                seed,
                f"{scenario.seed_stream}/phase{phase_index}"
                f"/{spec.seed_stream}/core{core}/slot{slot}"))
            for slot in range(spec.jobs_per_core)
        ]


class _PhaseState:
    """Emission state of one phase: active core streams and burst windows."""

    __slots__ = ("phase", "active", "period_lcm", "bursts_abs", "uniform_scale")

    def __init__(self, scenario: Scenario, phase_index: int, phase: Phase,
                 layouts: Dict[Tuple[str, int], CoreLayout], seed: int) -> None:
        self.phase = phase
        streams: List[_TenantCoreStream] = []
        for tenant in phase.tenants:
            spec = tenant.workload
            for core in tenant.cores:
                # Tenant datasets persist across phases: the cache key is the
                # spec's *content fingerprint* (not its seed stream name, so
                # ``with_overrides`` variants sharing a name never share a
                # layout) plus the core, and a workload reappearing in a
                # later phase re-walks the same object pool (what lets
                # phase-change scenarios measure re-warming instead of
                # touching fresh memory).
                key = (workload_fingerprint(spec), core)
                layout = layouts.get(key)
                if layout is None:
                    layout = CoreLayout(spec, seeded_generator(
                        seed,
                        f"{scenario.seed_stream}/tenant"
                        f"/{spec.seed_stream}/core{core}"))
                    layouts[key] = layout
                streams.append(_TenantCoreStream(
                    core, spec, layout, tenant.intensity, scenario,
                    phase_index, seed))
        # Round-robin order is the sorted core id order -- deterministic and
        # independent of how tenants were listed in the description.
        streams.sort(key=lambda s: s.core)
        self.active = streams
        #: Absolute-position burst windows, resolved once per phase.
        self.bursts_abs = tuple(
            (int(round(burst.start * phase.accesses)),
             int(round(burst.stop * phase.accesses)),
             burst.intensity)
            for burst in phase.bursts)
        #: When the whole phase runs at scale 1.0 the instruction columns
        #: pass through untouched (no rounding, no division).
        self.uniform_scale = (
            phase.intensity == 1.0 and not self.bursts_abs
            and all(s.intensity == 1.0 for s in streams))

    def emit(self, position: int, count: int
             ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Materialize phase positions ``[position, position + count)``.

        Every (core, slot) progression intersecting the window is filled with
        one strided assignment; the per-pair row count depends only on the
        window bounds, so emission is insensitive to how windows are sized.
        """
        active = self.active
        num_active = len(active)
        out_core = np.empty(count, dtype=TRACE_DTYPES["core"])
        out_pc = np.empty(count, dtype=TRACE_DTYPES["pc"])
        out_address = np.empty(count, dtype=TRACE_DTYPES["address"])
        out_store = np.empty(count, dtype=TRACE_DTYPES["is_store"])
        out_instr_raw = np.empty(count, dtype=np.float64)
        tenant_scale: Optional[np.ndarray] = None
        if not self.uniform_scale:
            tenant_scale = np.empty(count, dtype=np.float64)
        for index, stream in enumerate(active):
            jobs = stream.spec.jobs_per_core
            period = num_active * jobs
            for slot in range(jobs):
                # Phase positions of this pair: p ≡ index + A·slot (mod A·J).
                first = (index + num_active * slot - position) % period
                if first >= count:
                    continue
                rows = (count - first + period - 1) // period
                pc, address, is_store, instructions = stream.streams[slot].take(rows)
                sl = slice(first, count, period)
                out_core[sl] = stream.core
                out_pc[sl] = pc.astype(np.uint64, copy=False)
                out_address[sl] = address.astype(np.uint64, copy=False)
                out_store[sl] = is_store
                out_instr_raw[sl] = instructions
                if tenant_scale is not None:
                    tenant_scale[sl] = stream.intensity
        if tenant_scale is None:
            out_instr = out_instr_raw.astype(TRACE_DTYPES["instructions"])
        else:
            scale = tenant_scale
            scale *= self.phase.intensity
            if self.bursts_abs:
                window = np.arange(position, position + count)
                for start, stop, intensity in self.bursts_abs:
                    inside = (window >= start) & (window < stop)
                    scale[inside] *= intensity
            out_instr = np.maximum(
                1, np.rint(out_instr_raw / scale)
            ).astype(TRACE_DTYPES["instructions"])
        return out_core, out_pc, out_address, out_store, out_instr


def iter_scenario_chunks(scenario: Scenario, seed: int = 42,
                         chunk_size: int = DEFAULT_CHUNK_SIZE
                         ) -> Iterator[TraceBuffer]:
    """Stream a scenario's merged trace as :class:`TraceBuffer` chunks.

    The concatenation of the yielded chunks is bit-identical for every
    ``chunk_size`` and fully determined by ``seed`` (see the module
    docstring for why).  Chunks are exactly ``chunk_size`` long except the
    last, regardless of where phase boundaries fall -- a chunk freely splices
    the tail of one phase with the head of the next.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    layouts: Dict[Tuple[str, int], CoreLayout] = {}
    pending: List[Tuple[np.ndarray, ...]] = []
    pending_rows = 0
    for phase_index, phase in enumerate(scenario.phases):
        if phase.accesses == 0:
            continue
        state = _PhaseState(scenario, phase_index, phase, layouts, seed)
        position = 0
        while position < phase.accesses:
            take = min(chunk_size - pending_rows, phase.accesses - position)
            pending.append(state.emit(position, take))
            pending_rows += take
            position += take
            if pending_rows == chunk_size:
                yield _assemble(pending)
                pending = []
                pending_rows = 0
    if pending:
        yield _assemble(pending)


def _assemble(segments: List[Tuple[np.ndarray, ...]]) -> TraceBuffer:
    if len(segments) == 1:
        return TraceBuffer(*segments[0])
    return TraceBuffer(*(np.concatenate([segment[i] for segment in segments])
                         for i in range(5)))


def generate_scenario_buffer(scenario: Scenario, seed: int = 42,
                             chunk_size: int = DEFAULT_CHUNK_SIZE) -> TraceBuffer:
    """Compile the whole scenario into one columnar buffer."""
    return TraceBuffer.concat(
        list(iter_scenario_chunks(scenario, seed=seed, chunk_size=chunk_size)))
