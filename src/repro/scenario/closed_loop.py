"""Closed-loop traffic: a scenario whose intensity reacts to service latency.

The catalog's scenarios are open-loop -- the compiler pre-decides every
access, so a saturated memory system is simply hammered harder.  Real server
traffic is closed-loop: when latency rises, admission throttles; when the
system has headroom, intensity ramps back up.  :class:`ClosedLoopSource`
implements that regime on top of the scenario compiler through the
:class:`~repro.trace.source.TraceSource` protocol: it pulls the compiled
base stream and *rescales the instruction (arrival-spacing) column* with a
multiplicative intensity controller driven by the simulator's
:class:`~repro.trace.source.FeedbackSample`.

Determinism and invariance (both oracle-checked by ``repro.fuzz``):

* The feedback signal is itself deterministic (the simulator is), so a
  closed-loop run is a pure function of ``(scenario, spec, seed, config)``.
* Controller updates happen only at fixed *control boundaries* -- every
  ``spec.interval`` accesses of source position -- and emitted chunks are
  clamped so they never straddle a boundary.  Because simulator state at
  access *N* is chunk-size invariant and the run loop services chunk *k*
  fully before pulling *k+1*, the feedback observed at each boundary (and
  hence the whole intensity trajectory) is identical for every chunk size
  and engine cell.

The controller differences cumulative feedback against its own last-boundary
snapshot, so the measurement reset at the warmup boundary (which zeroes the
memory counters mid-run) shows up as a non-positive delta exactly once --
the controller holds its intensity for that interval, identically in every
run of the same configuration.

Snapshot integration: :meth:`ClosedLoopSource.checkpoint_state` /
:meth:`restore_state` round-trip the controller state (and the
emitted-but-unserviced tail of a warmup-split chunk) through
:class:`~repro.sim.snapshot.SystemSnapshot`, so restoring mid-run reproduces
an uninterrupted closed-loop run exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.fingerprint import canonical_data, fingerprint
from repro.scenario.compiler import iter_scenario_chunks
from repro.scenario.spec import Scenario
from repro.trace.buffer import (
    DEFAULT_CHUNK_SIZE,
    TRACE_DTYPES,
    TRACE_FIELDS,
    TraceBuffer,
)
from repro.trace.source import FeedbackSample

__all__ = [
    "ClosedLoopSource",
    "ClosedLoopSpec",
    "as_closed_loop_spec",
]


@dataclass(frozen=True)
class ClosedLoopSpec:
    """Controller parameters of one closed-loop run.

    The controller targets a mean demand-read latency: at every control
    boundary it computes the per-interval observed latency from the feedback
    deltas and scales intensity multiplicatively by ``1 + gain * error``
    (relative error against ``target_latency``), clamped to
    ``[min_intensity, max_intensity]``.  Intensity divides the per-access
    instruction spacing exactly like scenario/tenant intensity does in the
    compiler: >1 means denser arrivals, <1 means throttled.
    """

    #: Mean demand-read latency the controller steers toward (bus cycles).
    target_latency: float = 60.0
    #: Control-boundary spacing in trace accesses.
    interval: int = 4096
    #: Multiplicative proportional gain per update.
    gain: float = 0.5
    #: Intensity clamp (both inclusive).
    min_intensity: float = 0.25
    max_intensity: float = 4.0
    #: Intensity before the first update.
    initial_intensity: float = 1.0

    def __post_init__(self) -> None:
        if self.target_latency <= 0:
            raise ValueError("target_latency must be positive")
        if self.interval < 1:
            raise ValueError("interval must be a positive access count")
        if self.gain <= 0:
            raise ValueError("gain must be positive")
        if not 0 < self.min_intensity <= self.max_intensity:
            raise ValueError(
                "intensity bounds need 0 < min_intensity <= max_intensity")
        if not self.min_intensity <= self.initial_intensity <= self.max_intensity:
            raise ValueError("initial_intensity must lie within the clamp")

    def to_dict(self) -> Dict[str, float]:
        """JSON-able form (fuzz specs, CLI round-trips)."""
        return {
            "target_latency": self.target_latency,
            "interval": self.interval,
            "gain": self.gain,
            "min_intensity": self.min_intensity,
            "max_intensity": self.max_intensity,
            "initial_intensity": self.initial_intensity,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ClosedLoopSpec":
        unknown = set(data) - {
            "target_latency", "interval", "gain",
            "min_intensity", "max_intensity", "initial_intensity",
        }
        if unknown:
            raise ValueError(
                f"unsupported closed-loop parameters {sorted(unknown)}")
        kwargs = {key: (int(value) if key == "interval" else float(value))
                  for key, value in data.items()}
        return cls(**kwargs)


def as_closed_loop_spec(value) -> Optional[ClosedLoopSpec]:
    """Coerce ``None`` / dict / :class:`ClosedLoopSpec` to a spec."""
    if value is None or isinstance(value, ClosedLoopSpec):
        return value
    if isinstance(value, dict):
        return ClosedLoopSpec.from_dict(value)
    raise TypeError(
        f"closed_loop must be a ClosedLoopSpec or parameter dict, "
        f"got {type(value).__name__}")


class ClosedLoopSource:
    """The scenario compiler wrapped in a latency-tracking intensity loop.

    A :class:`~repro.trace.source.TraceSource`: the run loop assembles a
    feedback sample before every pull, the source updates its controller at
    control boundaries and emits the base stream with its ``instructions``
    column rescaled by the current intensity.
    """

    wants_feedback = True

    def __init__(self, scenario: Scenario, spec: Optional[ClosedLoopSpec] = None,
                 seed: int = 42, chunk_size: int = DEFAULT_CHUNK_SIZE):
        self.scenario = scenario
        self.spec = ClosedLoopSpec() if spec is None else as_closed_loop_spec(spec)
        self.seed = int(seed)
        self.chunk_size = int(chunk_size)
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self._base = iter_scenario_chunks(scenario, seed=self.seed,
                                          chunk_size=self.chunk_size)
        #: Unemitted tail of the current base chunk.
        self._pending: Optional[TraceBuffer] = None
        #: A restored warmup-split tail to re-emit verbatim (already counted
        #: in ``_position``; bypasses the controller).
        self._replay: Optional[TraceBuffer] = None
        self._position = 0
        self._intensity = float(self.spec.initial_intensity)
        self._last_reads = 0
        self._last_latency = 0.0
        self._updates = 0
        #: ``(position, intensity, observed_latency)`` after every applied
        #: update, seeded with the initial point.
        self._history: List[Tuple[int, float, Optional[float]]] = [
            (0, self._intensity, None)]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def total_accesses(self) -> int:
        return self.scenario.total_accesses

    @property
    def current_intensity(self) -> float:
        return self._intensity

    @property
    def updates(self) -> int:
        """Controller updates actually applied (held intervals excluded)."""
        return self._updates

    @property
    def history(self) -> List[Tuple[int, float, Optional[float]]]:
        """The intensity trajectory: ``(position, intensity, observed)``."""
        return list(self._history)

    # ------------------------------------------------------------------ #
    # TraceSource protocol
    # ------------------------------------------------------------------ #
    def next_chunk(self, feedback: Optional[FeedbackSample]):
        if self._replay is not None:
            chunk, self._replay = self._replay, None
            return chunk
        spec = self.spec
        if (feedback is not None and self._position
                and self._position % spec.interval == 0):
            self._update(feedback)
        # Never emit across a control boundary: the next update must see
        # feedback for exactly the accesses up to the boundary, whatever the
        # streaming chunk size is.
        boundary = spec.interval - (self._position % spec.interval)
        base = self._take_base(min(self.chunk_size, boundary))
        if base is None:
            return None
        chunk = self._scaled(base)
        self._position += len(chunk)
        return chunk

    def __iter__(self):
        """Drain open-loop (no feedback -> no updates); mainly for tooling."""
        while True:
            chunk = self.next_chunk(None)
            if chunk is None:
                return
            yield chunk

    def _take_base(self, take: int) -> Optional[TraceBuffer]:
        """Up to ``take`` rows of the base stream (``None`` when exhausted)."""
        parts = []
        have = 0
        pending = self._pending
        self._pending = None
        while have < take:
            if pending is None:
                pending = next(self._base, None)
                if pending is None:
                    break
                if not len(pending):
                    pending = None
                    continue
            rows = min(take - have, len(pending))
            parts.append(pending if rows == len(pending) else pending[:rows])
            have += rows
            pending = pending[rows:] if rows < len(pending) else None
        self._pending = pending
        if not parts:
            return None
        return parts[0] if len(parts) == 1 else TraceBuffer.concat(parts)

    def _scaled(self, chunk: TraceBuffer) -> TraceBuffer:
        """Rescale arrival spacing by the current intensity.

        Identical arithmetic to the compiler's phase/tenant intensity
        scaling: instruction counts divide by the multiplier, rounded,
        floored at one instruction per access.
        """
        intensity = self._intensity
        if intensity == 1.0:
            return chunk
        instructions = np.maximum(
            1, np.rint(chunk.instructions / intensity)
        ).astype(TRACE_DTYPES["instructions"])
        return TraceBuffer(chunk.core, chunk.pc, chunk.address,
                           chunk.is_store, instructions)

    def _update(self, feedback: FeedbackSample) -> None:
        """One controller step from the feedback delta since last boundary."""
        reads = feedback.demand_reads
        latency = feedback.read_latency_cycles
        delta_reads = reads - self._last_reads
        delta_latency = latency - self._last_latency
        self._last_reads = reads
        self._last_latency = latency
        if delta_reads <= 0 or delta_latency < 0:
            # No reads this interval, or the warmup-boundary counter reset
            # made the delta meaningless: hold (deterministically).
            return
        observed = delta_latency / delta_reads
        spec = self.spec
        error = (spec.target_latency - observed) / spec.target_latency
        raw = self._intensity * (1.0 + spec.gain * error)
        self._intensity = min(max(raw, spec.min_intensity), spec.max_intensity)
        self._updates += 1
        self._history.append((self._position, self._intensity, observed))

    # ------------------------------------------------------------------ #
    # Snapshot integration
    # ------------------------------------------------------------------ #
    def config_fingerprint(self) -> str:
        """Digest of everything that fixes this source's behaviour.

        ``chunk_size`` is deliberately excluded: the emitted access stream
        is chunk-size invariant, so a snapshot restores into a source of any
        chunk size.
        """
        return fingerprint({
            "kind": "closed-loop-source",
            "scenario": canonical_data(self.scenario),
            "spec": self.spec.to_dict(),
            "seed": self.seed,
        })

    def checkpoint_state(self, leftover: Optional[TraceBuffer] = None) -> Dict:
        """Controller state (plus an unserviced emitted tail) for a snapshot."""
        state = {
            "fingerprint": self.config_fingerprint(),
            "position": self._position,
            "intensity": self._intensity,
            "last_reads": self._last_reads,
            "last_latency": self._last_latency,
            "updates": self._updates,
            "history": [tuple(entry) for entry in self._history],
        }
        if leftover is not None and len(leftover):
            state["leftover"] = {
                name: np.array(getattr(leftover, name))
                for name in TRACE_FIELDS
            }
        return state

    def restore_state(self, state: Dict) -> None:
        """Reposition this source to a checkpointed production state."""
        if state.get("fingerprint") != self.config_fingerprint():
            raise ValueError(
                "snapshot trace-source state belongs to a different "
                "closed-loop run (scenario, controller spec or seed differ)")
        self._position = int(state["position"])
        self._intensity = float(state["intensity"])
        self._last_reads = int(state["last_reads"])
        self._last_latency = float(state["last_latency"])
        self._updates = int(state["updates"])
        self._history = [tuple(entry) for entry in state["history"]]
        leftover = state.get("leftover")
        self._replay = (TraceBuffer(*(leftover[name] for name in TRACE_FIELDS))
                        if leftover else None)
        self._pending = None
        # The base stream is position-deterministic: fast-forward a fresh
        # compile to the checkpoint position instead of storing base rows.
        from repro.sim.snapshot import skip_accesses

        self._base = skip_accesses(
            iter_scenario_chunks(self.scenario, seed=self.seed,
                                 chunk_size=self.chunk_size),
            self._position)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ClosedLoopSource({self.scenario.name!r}, "
                f"position={self._position}, intensity={self._intensity:.3f}, "
                f"updates={self._updates})")
