"""Run scenarios through the simulator (streaming, bounded memory).

``run_scenario`` is the scenario counterpart of
:func:`repro.sim.runner.run_workload_streaming`: the compiled chunk stream
feeds the simulator directly, so a million-access multi-tenant run holds one
chunk of columns in memory regardless of scenario length.  The cache-engine
knob, warmup split and agent attachment behave exactly as they do for
single-workload runs -- a scenario is just a trace.  The ``dram_engine``
knob (flat/object, see :mod:`repro.dram.engine`) passes through the same
way; every engine combination is bit-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Union

from repro.scenario.catalog import get_scenario
from repro.scenario.compiler import iter_scenario_chunks
from repro.scenario.spec import Scenario
from repro.sim.config import SystemConfig
from repro.sim.results import SimulationResult
from repro.sim.runner import DEFAULT_SEED, DEFAULT_WARMUP_FRACTION, run_trace
from repro.trace.buffer import DEFAULT_CHUNK_SIZE

__all__ = [
    "run_scenario",
    "run_scenario_configs",
]


def run_scenario(scenario: Union[str, Scenario], config: SystemConfig,
                 seed: int = DEFAULT_SEED,
                 warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 cache_engine: Optional[str] = None,
                 dram_engine: Optional[str] = None,
                 interp: Optional[str] = None,
                 scale: float = 1.0,
                 extra_agents: Optional[Iterable] = None,
                 telemetry=None,
                 snapshot=None,
                 warmup_snapshot=None,
                 closed_loop=None) -> SimulationResult:
    """Simulate one scenario under one system configuration, streaming.

    ``scenario`` is a catalog name (scaled by ``scale``) or a
    :class:`Scenario` instance (used as-is).  The trace is never
    materialized: generator chunks flow straight into the simulator's row
    loop, so memory stays bounded by ``chunk_size`` for arbitrarily long
    scenarios.  Results are bit-identical for any ``chunk_size`` and across
    the flat/dict cache engines.

    ``telemetry`` follows :func:`repro.sim.runner.run_trace`; when the mode
    records spans, the scenario's phase boundaries are emitted as ``phase``
    marks (phase name plus its cumulative end position in the trace), so an
    event log can attribute timeline intervals to scenario phases.

    ``snapshot`` / ``warmup_snapshot`` behave as in
    :func:`repro.sim.runner.run_trace`.  The snapshot fingerprint covers the
    resolved scenario (post-``scale``), the configuration, the warmup
    length, the seed, the cache/DRAM engines and -- when set -- the
    closed-loop spec; ``chunk_size`` is excluded because results are
    chunk-size invariant.

    ``closed_loop`` turns the run closed-loop: a
    :class:`repro.scenario.closed_loop.ClosedLoopSpec`, a parameter dict, or
    a pre-built :class:`~repro.scenario.closed_loop.ClosedLoopSource` (pass
    one built over the *resolved* scenario to inspect its intensity
    trajectory after the run).  The compiled stream is then produced through
    the feedback-driven source instead of the open-loop chunk iterator;
    determinism, chunk-size invariance and engine parity all still hold (see
    :mod:`repro.scenario.closed_loop`).
    """
    from repro.telemetry.recorder import resolve_telemetry

    resolved = get_scenario(scenario, scale=scale)
    recorder = resolve_telemetry(telemetry)
    if recorder is not None:
        boundary = 0
        for phase in resolved.phases:
            boundary += phase.accesses
            recorder.note_phase(phase.name, boundary)
    loop_spec = None
    source = None
    if closed_loop is not None:
        from repro.scenario.closed_loop import (
            ClosedLoopSource,
            as_closed_loop_spec,
        )

        if isinstance(closed_loop, ClosedLoopSource):
            source = closed_loop
            loop_spec = source.spec
        else:
            loop_spec = as_closed_loop_spec(closed_loop)
            source = ClosedLoopSource(resolved, loop_spec, seed=seed,
                                      chunk_size=chunk_size)
    snapshot_key = None
    if warmup_snapshot is not None and warmup_fraction > 0:
        from repro.sim.snapshot import snapshot_fingerprint

        snapshot_key = snapshot_fingerprint(
            resolved, config, int(resolved.total_accesses * warmup_fraction),
            num_cores=None, seed=seed,
            cache_engine=cache_engine, dram_engine=dram_engine,
            closed_loop=loop_spec)
    if source is not None:
        chunks = source
    else:
        chunks = iter_scenario_chunks(resolved, seed=seed,
                                      chunk_size=chunk_size)
    return run_trace(chunks, config, workload_name=resolved.name,
                     warmup_fraction=warmup_fraction,
                     num_accesses=resolved.total_accesses,
                     extra_agents=extra_agents,
                     cache_engine=cache_engine,
                     dram_engine=dram_engine,
                     interp=interp,
                     telemetry=recorder,
                     snapshot=snapshot,
                     warmup_snapshot=warmup_snapshot,
                     snapshot_key=snapshot_key)


def run_scenario_configs(scenario: Union[str, Scenario],
                         configs: Iterable[SystemConfig],
                         seed: int = DEFAULT_SEED,
                         warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                         chunk_size: int = DEFAULT_CHUNK_SIZE,
                         cache_engine: Optional[str] = None,
                         dram_engine: Optional[str] = None,
                         interp: Optional[str] = None,
                         scale: float = 1.0,
                         telemetry=None) -> Dict[str, SimulationResult]:
    """Run one scenario under several configurations over the identical trace.

    Each configuration replays the same deterministic chunk stream (the
    compiler regenerates it per run rather than buffering it, keeping memory
    bounded), so cross-configuration deltas isolate the mechanism under
    study exactly as :func:`repro.sim.runner.run_configs` does for
    single workloads.
    """
    resolved = get_scenario(scenario, scale=scale)
    results: Dict[str, SimulationResult] = {}
    for config in configs:
        results[config.name] = run_scenario(
            resolved, config, seed=seed, warmup_fraction=warmup_fraction,
            chunk_size=chunk_size, cache_engine=cache_engine,
            dram_engine=dram_engine, interp=interp, telemetry=telemetry)
    return results
