"""Shipped scenario catalog.

Six named scenarios stress the conditions the paper's steady-state
evaluation cannot: tenant colocation, diurnal load swings, antagonist
bursts, phase changes, partially idle machines and a full six-workload mix.
Each factory takes a ``scale`` factor that multiplies every phase length --
``scale=1.0`` sizes the scenario for real measurement runs (~1M+ accesses),
while tests and smoke benchmarks pass small scales to finish in seconds.

The catalog mirrors :mod:`repro.workloads.catalog`: iterate
:func:`scenario_names` in a stable order, resolve with
:func:`get_scenario`, render with :func:`describe_scenario`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.scenario.spec import Burst, Phase, Scenario, TenantAssignment

__all__ = [
    "SCENARIOS",
    "get_scenario",
    "scale_scenario",
    "scenario_names",
]


def _scaled(accesses: int, scale: float) -> int:
    return max(int(round(accesses * scale)), 1)


def tenant_colocation(scale: float = 1.0) -> Scenario:
    """Two tenants statically partitioned across the CMP.

    A key-value tenant (``data_serving``) owns half the cores, a search
    tenant (``web_search``) the other half.  Their streams interleave at the
    shared LLC and memory controllers, so each tenant's row-buffer locality
    is destroyed not only by its own cores but by a workload with a
    completely different region-density profile -- the hardest realistic
    case for the baseline scheduler and the canonical case for BuMP.
    """
    n = _scaled(1_200_000, scale)
    return Scenario(
        name="tenant-colocation",
        description="data_serving on cores 0-7 colocated with web_search on "
                    "cores 8-15, steady state",
        phases=[
            Phase("colocated", n, [
                TenantAssignment("data_serving", tuple(range(0, 8))),
                TenantAssignment("web_search", tuple(range(8, 16))),
            ]),
        ],
    )


def diurnal_ramp(scale: float = 1.0) -> Scenario:
    """One tenant through a day: night trough, morning ramp, peak, evening.

    Intensity scales arrival rate (instruction gaps shrink), so the peak
    phase contends far harder at the controllers than the trough even though
    every phase touches statistically identical addresses.
    """
    return Scenario(
        name="diurnal-ramp",
        description="web_serving on all 16 cores through a diurnal "
                    "night/morning/peak/evening intensity cycle",
        phases=[
            Phase("night", _scaled(200_000, scale),
                  [TenantAssignment("web_serving", tuple(range(16)))],
                  intensity=0.25),
            Phase("morning", _scaled(300_000, scale),
                  [TenantAssignment("web_serving", tuple(range(16)))],
                  intensity=0.75),
            Phase("peak", _scaled(400_000, scale),
                  [TenantAssignment("web_serving", tuple(range(16)))],
                  intensity=1.5,
                  bursts=(Burst(0.4, 0.5, 1.5),)),
            Phase("evening", _scaled(300_000, scale),
                  [TenantAssignment("web_serving", tuple(range(16)))],
                  intensity=1.0),
        ],
    )


def antagonist_burst(scale: float = 1.0) -> Scenario:
    """A latency-sensitive tenant suffering a bursty analytics antagonist.

    ``web_search`` runs steadily on twelve cores; an ``online_analytics``
    antagonist appears on the remaining four only in the middle phase, at
    double intensity with two further 3x bursts -- the colocation spike that
    makes interleaving-induced row-buffer loss worst.
    """
    search = TenantAssignment("web_search", tuple(range(0, 12)))
    return Scenario(
        name="antagonist-burst",
        description="steady web_search on cores 0-11; an online_analytics "
                    "antagonist bursts onto cores 12-15 mid-run",
        phases=[
            Phase("quiet", _scaled(300_000, scale), [search]),
            Phase("antagonist", _scaled(500_000, scale), [
                TenantAssignment("web_search", tuple(range(0, 12))),
                TenantAssignment("online_analytics", tuple(range(12, 16)),
                                 intensity=2.0),
            ], bursts=(Burst(0.2, 0.3, 3.0), Burst(0.6, 0.7, 3.0))),
            Phase("recovery", _scaled(300_000, scale), [search]),
        ],
    )


def phase_change(scale: float = 1.0) -> Scenario:
    """One tenant whose behaviour flips between serving and analytics.

    All sixteen cores alternate between ``media_streaming`` (large
    sequential buffers, high region density) and ``online_analytics``
    (scan-plus-join mixes), re-warming the predictors at every flip; the
    dataset of each behaviour persists across its reappearances.
    """
    cores = tuple(range(16))
    return Scenario(
        name="phase-change",
        description="all cores flip media_streaming -> online_analytics -> "
                    "media_streaming -> online_analytics",
        phases=[
            Phase("streaming-1", _scaled(300_000, scale),
                  [TenantAssignment("media_streaming", cores)]),
            Phase("analytics-1", _scaled(300_000, scale),
                  [TenantAssignment("online_analytics", cores)]),
            Phase("streaming-2", _scaled(300_000, scale),
                  [TenantAssignment("media_streaming", cores)]),
            Phase("analytics-2", _scaled(300_000, scale),
                  [TenantAssignment("online_analytics", cores)]),
        ],
    )


def idle_cores(scale: float = 1.0) -> Scenario:
    """A mostly idle machine: four active cores, twelve parked.

    With only four streams interleaving, far more row-buffer locality
    survives at the controllers than in the fully loaded case -- the
    low-utilization end of the consolidation spectrum, and the regime where
    bulk streaming has the least left to recover.
    """
    return Scenario(
        name="idle-cores",
        description="web_search on cores 0-3 only; cores 4-15 idle",
        phases=[
            Phase("quarter-load", _scaled(1_000_000, scale),
                  [TenantAssignment("web_search", (0, 1, 2, 3))]),
        ],
    )


def all_six_mix(scale: float = 1.0) -> Scenario:
    """All six paper workloads consolidated onto one CMP.

    The most heterogeneous mix the catalog ships: six tenants with six
    different density/store-share profiles interleave at once, then a
    closing phase doubles the analytics tenant's pressure.
    """
    assignments = [
        TenantAssignment("data_serving", (0, 1, 2)),
        TenantAssignment("media_streaming", (3, 4, 5)),
        TenantAssignment("online_analytics", (6, 7, 8)),
        TenantAssignment("software_testing", (9, 10, 11)),
        TenantAssignment("web_search", (12, 13)),
        TenantAssignment("web_serving", (14, 15)),
    ]
    surge = [
        TenantAssignment(a.workload, a.cores,
                         intensity=2.0 if a.workload.name == "online_analytics"
                         else 1.0)
        for a in assignments
    ]
    return Scenario(
        name="all-six-mix",
        description="all six paper workloads colocated (2-3 cores each), "
                    "with a closing analytics surge",
        phases=[
            Phase("mixed", _scaled(800_000, scale), assignments),
            Phase("analytics-surge", _scaled(400_000, scale), surge),
        ],
    )


#: Scenario factories in catalog order, keyed by canonical name.
SCENARIOS: Dict[str, Callable[[float], Scenario]] = {
    "tenant-colocation": tenant_colocation,
    "diurnal-ramp": diurnal_ramp,
    "antagonist-burst": antagonist_burst,
    "phase-change": phase_change,
    "idle-cores": idle_cores,
    "all-six-mix": all_six_mix,
}


def scenario_names() -> List[str]:
    """Canonical scenario identifiers in catalog order."""
    return list(SCENARIOS.keys())


def get_scenario(name, scale: float = 1.0) -> Scenario:
    """Resolve ``name`` to a fresh :class:`Scenario`.

    ``scale`` multiplies every phase length, so the same scenario shape runs
    at measurement size (``1.0``) or smoke-test size (``0.01``).  A ready
    :class:`Scenario` instance passes through unchanged at ``scale=1.0`` and
    is rescaled (a copy; the input is never mutated) otherwise, so
    ``ScenarioGrid(..., scale=0.01)`` shrinks custom scenarios exactly like
    catalog ones.
    """
    if scale <= 0.0:
        raise ValueError("scale must be positive")
    if isinstance(name, Scenario):
        return name if scale == 1.0 else scale_scenario(name, scale)
    key = str(name).lower().replace(" ", "-").replace("_", "-")
    factory = SCENARIOS.get(key)
    if factory is None:
        known = ", ".join(scenario_names())
        raise KeyError(f"unknown scenario {name!r}; known scenarios: {known}")
    return factory(scale)


def scale_scenario(scenario: Scenario, scale: float) -> Scenario:
    """A copy of ``scenario`` with every phase length multiplied by ``scale``.

    Phase structure, tenants, intensities and burst windows are preserved
    (bursts are phase fractions, so they rescale for free); only the access
    counts change, each clamped to at least one access.
    """
    if scale <= 0.0:
        raise ValueError("scale must be positive")
    return Scenario(
        name=scenario.name,
        description=scenario.description,
        phases=[
            Phase(phase.name,
                  _scaled(phase.accesses, scale) if phase.accesses else 0,
                  phase.tenants, intensity=phase.intensity,
                  bursts=phase.bursts)
            for phase in scenario.phases
        ],
        num_cores=scenario.num_cores,
        seed_stream=scenario.seed_stream,
    )
