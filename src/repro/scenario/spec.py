"""Declarative scenario descriptions: phases, tenants, bursts.

A :class:`Scenario` composes the homogeneous :class:`~repro.workloads.spec.
WorkloadSpec` generators into the heterogeneous traffic a scale-out server
actually sees: colocated tenants partitioned across core groups, load that
ramps and spikes over time, and behaviour that changes phase mid-run.  The
description is purely declarative -- a scenario is a list of
:class:`Phase`\\ s, each assigning workloads to disjoint core groups -- and
compiles down to the columnar chunk pipeline in
:mod:`repro.scenario.compiler`, so scenario traces run through the exact
same :class:`~repro.trace.buffer.TraceBuffer` machinery (and at the same
speed) as single-workload traces.

Intensity model: the simulator derives request *arrival times* from the
per-access instruction counts, so scaling a tenant's intensity by ``k``
divides its instruction gaps by ``k`` -- the same accesses arrive ``k``
times faster and queue harder at the memory controllers.  Phase intensity,
per-tenant intensity and burst windows multiply together per access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

from repro.workloads.catalog import get_workload
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "Burst",
    "Phase",
    "Scenario",
    "TenantAssignment",
]

#: Default core count of the simulated server (matches the paper's CMP).
DEFAULT_SCENARIO_CORES = 16


@dataclass(frozen=True)
class Burst:
    """A load spike inside one phase.

    ``start``/``stop`` are fractions of the phase (``0.0`` is the first
    access of the phase, ``1.0`` one past its last); ``intensity`` multiplies
    the phase intensity for every access whose phase position falls inside
    the window.  Overlapping bursts stack multiplicatively.
    """

    start: float
    stop: float
    intensity: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start < self.stop <= 1.0:
            raise ValueError(
                f"burst window [{self.start}, {self.stop}) must satisfy "
                "0 <= start < stop <= 1")
        if self.intensity <= 0.0:
            raise ValueError("burst intensity must be positive")


@dataclass
class TenantAssignment:
    """One tenant of a phase: a workload pinned to a group of cores.

    The workload may be given by catalog name (resolved immediately) or as a
    fully customised :class:`WorkloadSpec`.  ``intensity`` scales only this
    tenant's arrival rate, on top of the phase intensity -- an antagonist
    tenant at ``intensity=2.0`` hammers the memory system twice as hard as
    its colocated victims.
    """

    workload: Union[str, WorkloadSpec]
    cores: Tuple[int, ...]
    intensity: float = 1.0

    def __post_init__(self) -> None:
        if isinstance(self.workload, str):
            self.workload = get_workload(self.workload)
        self.cores = tuple(self.cores)
        if not self.cores:
            raise ValueError("a tenant needs at least one core")
        if len(set(self.cores)) != len(self.cores):
            raise ValueError(f"duplicate cores in tenant assignment: {self.cores}")
        if any(core < 0 for core in self.cores):
            raise ValueError("core ids must be non-negative")
        if self.intensity <= 0.0:
            raise ValueError("tenant intensity must be positive")


@dataclass
class Phase:
    """One time slice of a scenario.

    ``accesses`` is the number of memory accesses the phase contributes to
    the merged trace (the scenario's time axis is the access stream, exactly
    like a single-workload trace length).  Cores not named by any tenant are
    idle for the duration of the phase: they contribute no accesses, so the
    merged stream interleaves only the active cores -- less inter-core
    mingling, more surviving row-buffer locality, which is precisely the
    effect the idle-cores scenario measures.
    """

    name: str
    accesses: int
    tenants: List[TenantAssignment]
    intensity: float = 1.0
    bursts: Tuple[Burst, ...] = ()

    def __post_init__(self) -> None:
        if self.accesses < 0:
            raise ValueError("phase accesses must be non-negative")
        self.tenants = list(self.tenants)
        if self.accesses > 0 and not self.tenants:
            raise ValueError(f"phase {self.name!r} emits accesses but has no tenants")
        self.bursts = tuple(self.bursts)
        if self.intensity <= 0.0:
            raise ValueError("phase intensity must be positive")
        claimed: set = set()
        for tenant in self.tenants:
            overlap = claimed.intersection(tenant.cores)
            if overlap:
                raise ValueError(
                    f"phase {self.name!r}: cores {sorted(overlap)} assigned to "
                    "more than one tenant")
            claimed.update(tenant.cores)

    @property
    def active_cores(self) -> Tuple[int, ...]:
        """Sorted ids of every core that emits accesses in this phase."""
        cores: List[int] = []
        for tenant in self.tenants:
            cores.extend(tenant.cores)
        return tuple(sorted(cores))


@dataclass
class Scenario:
    """A named, phased, multi-tenant workload composition.

    The scenario is the unit the rest of the stack consumes: the compiler
    turns it into a deterministic chunk stream, ``run_scenario`` simulates it
    end to end, :class:`repro.exec.jobs.ScenarioGrid` grids campaigns over
    it, and the CLI's ``repro scenario`` subcommand lists/describes/runs the
    shipped catalog (:mod:`repro.scenario.catalog`).
    """

    name: str
    description: str
    phases: List[Phase]
    num_cores: int = DEFAULT_SCENARIO_CORES
    seed_stream: str = field(default="", repr=False)

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("num_cores must be positive")
        self.phases = list(self.phases)
        if not self.phases:
            raise ValueError(f"scenario {self.name!r} needs at least one phase")
        for phase in self.phases:
            for tenant in phase.tenants:
                bad = [core for core in tenant.cores if core >= self.num_cores]
                if bad:
                    raise ValueError(
                        f"scenario {self.name!r}, phase {phase.name!r}: cores "
                        f"{bad} outside the {self.num_cores}-core system")
        if not self.seed_stream:
            self.seed_stream = self.name

    @property
    def total_accesses(self) -> int:
        """Length of the compiled trace (the sum of the phase lengths)."""
        return sum(phase.accesses for phase in self.phases)

    @property
    def tenant_names(self) -> Tuple[str, ...]:
        """Distinct workload names across all phases, first-seen order."""
        seen: List[str] = []
        for phase in self.phases:
            for tenant in phase.tenants:
                if tenant.workload.name not in seen:
                    seen.append(tenant.workload.name)
        return tuple(seen)

    def describe(self) -> List[List[str]]:
        """Phase table rows for reports and the CLI's ``describe`` command."""
        rows: List[List[str]] = []
        for phase in self.phases:
            tenants = "; ".join(
                f"{tenant.workload.name}@{_core_ranges(tenant.cores)}"
                + (f" x{tenant.intensity:g}" if tenant.intensity != 1.0 else "")
                for tenant in phase.tenants)
            bursts = ", ".join(
                f"[{burst.start:g},{burst.stop:g})x{burst.intensity:g}"
                for burst in phase.bursts) or "-"
            idle = self.num_cores - len(phase.active_cores)
            rows.append([phase.name, str(phase.accesses), f"{phase.intensity:g}",
                         tenants or "(idle)", bursts, str(idle)])
        return rows


def _core_ranges(cores: Sequence[int]) -> str:
    """Compact ``0-3,8,12-15`` rendering of a core id set."""
    ordered = sorted(cores)
    parts: List[str] = []
    start = prev = ordered[0]
    for core in ordered[1:]:
        if core == prev + 1:
            prev = core
            continue
        parts.append(str(start) if start == prev else f"{start}-{prev}")
        start = prev = core
    parts.append(str(start) if start == prev else f"{start}-{prev}")
    return ",".join(parts)
