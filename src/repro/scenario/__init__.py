"""Composable scenario engine: multi-tenant, phased, bursty workloads.

The six :mod:`repro.workloads` generators each model one *homogeneous*
steady-state server workload -- the regime the paper evaluates.  This
package composes them into the *heterogeneous* traffic scale-out machines
actually serve: colocated tenants partitioned across core groups, diurnal
ramps, antagonist load bursts, phase changes and partially idle CMPs.

* :mod:`repro.scenario.spec` -- the declarative description: a
  :class:`Scenario` is a list of :class:`Phase`\\ s, each assigning
  workloads (:class:`TenantAssignment`) to disjoint core groups with
  per-phase/per-tenant intensity scaling and optional :class:`Burst`
  windows.
* :mod:`repro.scenario.compiler` -- compiles a scenario to the columnar
  :class:`~repro.trace.buffer.TraceBuffer` chunk stream (vectorized
  splice/interleave of per-tenant job streams; seed-deterministic,
  chunk-size-invariant, bounded memory), so scenarios run on the flat cache
  engine at full speed.
* :mod:`repro.scenario.catalog` -- six shipped scenarios
  (``tenant-colocation``, ``diurnal-ramp``, ``antagonist-burst``,
  ``phase-change``, ``idle-cores``, ``all-six-mix``), each scalable from
  smoke-test to measurement size.
* :mod:`repro.scenario.closed_loop` -- closed-loop traffic: a feedback
  controller over the compiled stream that rescales arrival intensity
  toward a latency target (deterministic, chunk-size invariant,
  snapshot-checkpointable).
* :mod:`repro.scenario.runner` -- streaming simulation entry points.

Typical use::

    from repro.scenario import get_scenario, run_scenario
    from repro.sim import base_open, bump_system

    scenario = get_scenario("tenant-colocation", scale=0.05)
    base = run_scenario(scenario, base_open())
    bump = run_scenario(scenario, bump_system())
    print(base.row_buffer_hit_ratio, bump.row_buffer_hit_ratio)

Campaigns grid over scenarios through
:class:`repro.exec.jobs.ScenarioGrid`, the CLI exposes the catalog as
``repro scenario list|describe|run``, and
:func:`repro.analysis.scenarios.scenario_comparison` sweeps BuMP against
the baselines across the whole catalog.
"""

from repro.scenario.catalog import (
    SCENARIOS,
    get_scenario,
    scale_scenario,
    scenario_names,
)
from repro.scenario.closed_loop import (
    ClosedLoopSource,
    ClosedLoopSpec,
    as_closed_loop_spec,
)
from repro.scenario.compiler import generate_scenario_buffer, iter_scenario_chunks
from repro.scenario.runner import run_scenario, run_scenario_configs
from repro.scenario.spec import Burst, Phase, Scenario, TenantAssignment

__all__ = [
    "Burst",
    "ClosedLoopSource",
    "ClosedLoopSpec",
    "Phase",
    "SCENARIOS",
    "Scenario",
    "TenantAssignment",
    "as_closed_loop_spec",
    "generate_scenario_buffer",
    "get_scenario",
    "iter_scenario_chunks",
    "run_scenario",
    "run_scenario_configs",
    "scale_scenario",
    "scenario_names",
]
