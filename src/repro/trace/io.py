"""Trace persistence: the single save/load codec for every on-disk format.

Three formats are supported, selected by file extension:

* ``.csv`` / ``.txt`` -- one access per line,
  ``core,pc,address,type,instructions`` with a ``#``-prefixed header.  Easy to
  inspect, diff and generate from external tools.
* ``.npz`` -- NumPy compressed arrays (one array per
  :class:`~repro.trace.buffer.TraceBuffer` column).  Roughly an order of
  magnitude smaller and faster for multi-million-access traces.
* ``.npy`` -- one structured record array
  (:data:`repro.trace.buffer.TRACE_RECORD_DTYPE`).  Uncompressed but
  **memory-mappable**: :func:`load_trace_buffer` with ``mmap=True`` opens the
  columns zero-copy straight out of the page cache, which is how the
  campaign artifact store ships traces between worker processes.

Saving accepts either a columnar :class:`TraceBuffer` or any iterable of
boxed :class:`Access` records; loading returns a :class:`TraceBuffer` via
:func:`load_trace_buffer` (the canonical API) or a boxed list via
:func:`load_trace` (compatibility).  All formats round-trip exactly:
``load_trace_buffer(save_trace(trace, path))`` reproduces the original
field-for-field.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Union

import numpy as np

from repro.common.request import Access, AccessType
from repro.trace.buffer import TRACE_FIELDS, TraceBuffer

_CSV_HEADER = ["core", "pc", "address", "type", "instructions"]
_CSV_SUFFIXES = {".csv", ".txt"}
_NPZ_SUFFIXES = {".npz"}
_NPY_SUFFIXES = {".npy"}

TraceLike = Union[TraceBuffer, Iterable[Access]]


def _as_path(path: Union[str, Path]) -> Path:
    return path if isinstance(path, Path) else Path(path)


def save_trace(trace: TraceLike, path: Union[str, Path]) -> Path:
    """Write a trace to ``path``; the format follows the file extension.

    Returns the path written, for call chaining.  Raises ``ValueError`` for
    unsupported extensions so typos do not silently produce empty files.
    """
    path = _as_path(path)
    if path.suffix in _CSV_SUFFIXES:
        _save_csv(trace, path)
    elif path.suffix in _NPZ_SUFFIXES:
        _save_npz(TraceBuffer.coerce(trace), path)
    elif path.suffix in _NPY_SUFFIXES:
        _save_npy(TraceBuffer.coerce(trace), path)
    else:
        raise ValueError(
            f"unsupported trace format {path.suffix!r}; use .csv, .txt, .npz or .npy"
        )
    return path


def load_trace_buffer(path: Union[str, Path], mmap: bool = False) -> TraceBuffer:
    """Read a trace previously written by :func:`save_trace` as a buffer.

    ``mmap=True`` memory-maps the columns instead of reading them (only the
    ``.npy`` structured layout supports this; other formats load normally).
    """
    path = _as_path(path)
    if not path.exists():
        raise FileNotFoundError(f"trace file {path} does not exist")
    if path.suffix in _CSV_SUFFIXES:
        return TraceBuffer.from_accesses(_load_csv(path))
    if path.suffix in _NPZ_SUFFIXES:
        return _load_npz(path)
    if path.suffix in _NPY_SUFFIXES:
        return _load_npy(path, mmap=mmap)
    raise ValueError(
        f"unsupported trace format {path.suffix!r}; use .csv, .txt, .npz or .npy"
    )


def load_trace(path: Union[str, Path]) -> List[Access]:
    """Read a trace as boxed :class:`Access` records (compatibility API)."""
    path = _as_path(path)
    if not path.exists():
        raise FileNotFoundError(f"trace file {path} does not exist")
    if path.suffix in _CSV_SUFFIXES:
        return _load_csv(path)
    return load_trace_buffer(path).to_accesses()


# --------------------------------------------------------------------- #
# CSV format
# --------------------------------------------------------------------- #
def _save_csv(trace: TraceLike, path: Path) -> None:
    with path.open("w", newline="") as handle:
        handle.write("# " + ",".join(_CSV_HEADER) + "\n")
        writer = csv.writer(handle)
        for access in trace:
            writer.writerow([
                access.core,
                f"0x{access.pc:x}",
                f"0x{access.address:x}",
                "S" if access.is_store else "L",
                access.instructions,
            ])


def _load_csv(path: Path) -> List[Access]:
    trace: List[Access] = []
    with path.open(newline="") as handle:
        reader = csv.reader(line for line in handle if not line.startswith("#"))
        for row in reader:
            if not row:
                continue
            if len(row) != len(_CSV_HEADER):
                raise ValueError(f"malformed trace row in {path}: {row!r}")
            core, pc, address, kind, instructions = row
            if kind not in ("L", "S"):
                raise ValueError(f"unknown access type {kind!r} in {path}")
            trace.append(Access(
                core=int(core),
                pc=int(pc, 0),
                address=int(address, 0),
                type=AccessType.STORE if kind == "S" else AccessType.LOAD,
                instructions=int(instructions),
            ))
    return trace


# --------------------------------------------------------------------- #
# NPZ format (compressed, one array per column)
# --------------------------------------------------------------------- #
def _save_npz(buffer: TraceBuffer, path: Path) -> None:
    np.savez_compressed(
        path, **{name: getattr(buffer, name) for name in TRACE_FIELDS})


def _load_npz(path: Path) -> TraceBuffer:
    with np.load(path) as data:
        missing = set(TRACE_FIELDS) - set(data.files)
        if missing:
            raise ValueError(f"trace file {path} is missing arrays: {sorted(missing)}")
        return TraceBuffer(*(data[name] for name in TRACE_FIELDS))


# --------------------------------------------------------------------- #
# NPY format (uncompressed structured records, memory-mappable)
# --------------------------------------------------------------------- #
def _save_npy(buffer: TraceBuffer, path: Path) -> None:
    np.save(path, buffer.to_structured(), allow_pickle=False)


def _load_npy(path: Path, mmap: bool = False) -> TraceBuffer:
    records = np.load(path, mmap_mode="r" if mmap else None, allow_pickle=False)
    if records.dtype.names is None:
        raise ValueError(f"trace file {path} does not hold structured records")
    return TraceBuffer.from_structured(records)
