"""Trace persistence.

Two on-disk formats are supported, selected by file extension:

* ``.csv`` / ``.txt`` -- one access per line,
  ``core,pc,address,type,instructions`` with a ``#``-prefixed header.  Easy to
  inspect, diff and generate from external tools.
* ``.npz`` -- NumPy compressed arrays (one array per field).  Roughly an order
  of magnitude smaller and faster for the multi-million-access traces the
  sensitivity studies use.

Both formats round-trip exactly: ``load_trace(save_trace(trace, path))``
reproduces the original field-for-field.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Union

import numpy as np

from repro.common.request import Access, AccessType

_CSV_HEADER = ["core", "pc", "address", "type", "instructions"]
_CSV_SUFFIXES = {".csv", ".txt"}
_NPZ_SUFFIXES = {".npz"}


def _as_path(path: Union[str, Path]) -> Path:
    return path if isinstance(path, Path) else Path(path)


def save_trace(trace: Iterable[Access], path: Union[str, Path]) -> Path:
    """Write a trace to ``path``; the format follows the file extension.

    Returns the path written, for call chaining.  Raises ``ValueError`` for
    unsupported extensions so typos do not silently produce empty files.
    """
    path = _as_path(path)
    if path.suffix in _CSV_SUFFIXES:
        _save_csv(trace, path)
    elif path.suffix in _NPZ_SUFFIXES:
        _save_npz(trace, path)
    else:
        raise ValueError(
            f"unsupported trace format {path.suffix!r}; use .csv, .txt or .npz"
        )
    return path


def load_trace(path: Union[str, Path]) -> List[Access]:
    """Read a trace previously written by :func:`save_trace`."""
    path = _as_path(path)
    if not path.exists():
        raise FileNotFoundError(f"trace file {path} does not exist")
    if path.suffix in _CSV_SUFFIXES:
        return _load_csv(path)
    if path.suffix in _NPZ_SUFFIXES:
        return _load_npz(path)
    raise ValueError(
        f"unsupported trace format {path.suffix!r}; use .csv, .txt or .npz"
    )


# --------------------------------------------------------------------- #
# CSV format
# --------------------------------------------------------------------- #
def _save_csv(trace: Iterable[Access], path: Path) -> None:
    with path.open("w", newline="") as handle:
        handle.write("# " + ",".join(_CSV_HEADER) + "\n")
        writer = csv.writer(handle)
        for access in trace:
            writer.writerow([
                access.core,
                f"0x{access.pc:x}",
                f"0x{access.address:x}",
                "S" if access.is_store else "L",
                access.instructions,
            ])


def _load_csv(path: Path) -> List[Access]:
    trace: List[Access] = []
    with path.open(newline="") as handle:
        reader = csv.reader(line for line in handle if not line.startswith("#"))
        for row in reader:
            if not row:
                continue
            if len(row) != len(_CSV_HEADER):
                raise ValueError(f"malformed trace row in {path}: {row!r}")
            core, pc, address, kind, instructions = row
            if kind not in ("L", "S"):
                raise ValueError(f"unknown access type {kind!r} in {path}")
            trace.append(Access(
                core=int(core),
                pc=int(pc, 0),
                address=int(address, 0),
                type=AccessType.STORE if kind == "S" else AccessType.LOAD,
                instructions=int(instructions),
            ))
    return trace


# --------------------------------------------------------------------- #
# NPZ format
# --------------------------------------------------------------------- #
def _save_npz(trace: Iterable[Access], path: Path) -> None:
    records = list(trace)
    np.savez_compressed(
        path,
        core=np.array([a.core for a in records], dtype=np.int32),
        pc=np.array([a.pc for a in records], dtype=np.uint64),
        address=np.array([a.address for a in records], dtype=np.uint64),
        is_store=np.array([a.is_store for a in records], dtype=bool),
        instructions=np.array([a.instructions for a in records], dtype=np.int32),
    )


def _load_npz(path: Path) -> List[Access]:
    with np.load(path) as data:
        required = {"core", "pc", "address", "is_store", "instructions"}
        missing = required - set(data.files)
        if missing:
            raise ValueError(f"trace file {path} is missing arrays: {sorted(missing)}")
        return [
            Access(
                core=int(core),
                pc=int(pc),
                address=int(address),
                type=AccessType.STORE if is_store else AccessType.LOAD,
                instructions=int(instructions),
            )
            for core, pc, address, is_store, instructions in zip(
                data["core"], data["pc"], data["address"],
                data["is_store"], data["instructions"],
            )
        ]
