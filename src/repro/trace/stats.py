"""Static trace characterisation.

Everything here is computed from the access stream alone, without simulating
a cache hierarchy.  The statistics serve three purposes:

* sanity-checking generator output against the workload specification (tests
  assert store fractions, footprints and PC counts);
* giving examples and the CLI a cheap "what does this trace look like" report;
* providing an *upper bound* companion to the LLC-lifetime region density of
  Figure 5 -- :meth:`TraceStatistics.region_density_histogram` counts every
  block ever touched in a region, which is what the density would be with an
  infinite LLC.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE, block_address
from repro.common.request import Access
from repro.trace.buffer import TraceBuffer


@dataclass
class TraceStatistics:
    """Aggregate description of one access trace."""

    accesses: int = 0
    stores: int = 0
    instructions: int = 0
    #: Distinct 64-byte blocks touched.
    footprint_blocks: int = 0
    #: Distinct 1KB regions touched.
    footprint_regions: int = 0
    #: Distinct cores that issued at least one access.
    active_cores: int = 0
    #: Distinct program counters observed.
    distinct_pcs: int = 0
    #: accesses per core, keyed by core id.
    accesses_per_core: Dict[int, int] = field(default_factory=dict)
    #: accesses per PC (the code/data correlation BuMP exploits).
    accesses_per_pc: Dict[int, int] = field(default_factory=dict)
    #: number of distinct blocks touched per region, keyed by region number.
    blocks_per_region: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Derived metrics
    # ------------------------------------------------------------------ #
    @property
    def store_fraction(self) -> float:
        """Fraction of accesses that are stores."""
        if self.accesses == 0:
            return 0.0
        return self.stores / self.accesses

    @property
    def footprint_bytes(self) -> int:
        """Touched footprint in bytes (block granular)."""
        return self.footprint_blocks * BLOCK_SIZE

    @property
    def mean_instructions_per_access(self) -> float:
        """Average instructions between consecutive memory accesses."""
        if self.accesses == 0:
            return 0.0
        return self.instructions / self.accesses

    @property
    def mean_blocks_per_region(self) -> float:
        """Average number of distinct blocks touched per touched region."""
        if not self.blocks_per_region:
            return 0.0
        return sum(self.blocks_per_region.values()) / len(self.blocks_per_region)

    def hot_pcs(self, count: int = 10) -> List[int]:
        """The ``count`` most frequently observed program counters."""
        ranked = Counter(self.accesses_per_pc).most_common(count)
        return [pc for pc, _ in ranked]

    def pc_concentration(self, count: int = 10) -> float:
        """Fraction of accesses issued by the ``count`` hottest PCs.

        Server code exhibits strong code/data correlation: a handful of
        functions touch most of the data.  This is the property that lets
        BuMP's PC-indexed predictor stay small.
        """
        if self.accesses == 0:
            return 0.0
        ranked = Counter(self.accesses_per_pc).most_common(count)
        return sum(hits for _, hits in ranked) / self.accesses

    def region_density_histogram(self, region_blocks: int = REGION_SIZE // BLOCK_SIZE,
                                 thresholds: Sequence[float] = (0.25, 0.5)) -> Dict[str, float]:
        """Share of touched regions that are low/medium/high density.

        ``thresholds`` are the low/medium boundaries as fractions of the
        region's blocks (the paper uses <25% and 25-50%).  The denominator is
        the number of touched regions, so this is a *static* (infinite-cache)
        density; the LLC-lifetime density of Figure 5 is measured by
        :class:`repro.workloads.density.RegionDensityProfiler` instead.
        """
        low_limit, high_limit = thresholds
        counts = {"low": 0, "medium": 0, "high": 0}
        for blocks in self.blocks_per_region.values():
            fraction = blocks / region_blocks
            if fraction < low_limit:
                counts["low"] += 1
            elif fraction < high_limit:
                counts["medium"] += 1
            else:
                counts["high"] += 1
        total = sum(counts.values())
        if total == 0:
            return {key: 0.0 for key in counts}
        return {key: value / total for key, value in counts.items()}

    def summary(self) -> Dict[str, float]:
        """Compact dictionary used by the CLI and the examples."""
        return {
            "accesses": float(self.accesses),
            "store_fraction": self.store_fraction,
            "footprint_mib": self.footprint_bytes / (1024 * 1024),
            "regions_touched": float(self.footprint_regions),
            "mean_blocks_per_region": self.mean_blocks_per_region,
            "distinct_pcs": float(self.distinct_pcs),
            "pc_concentration_top10": self.pc_concentration(10),
            "active_cores": float(self.active_cores),
            "mean_instructions_per_access": self.mean_instructions_per_access,
        }


def characterize_trace(trace: Union[TraceBuffer, Iterable[Access]],
                       region_size: int = REGION_SIZE) -> TraceStatistics:
    """Compute :class:`TraceStatistics` over a trace in one pass.

    Columnar :class:`TraceBuffer` inputs take a vectorized path (NumPy
    ``unique``/``bincount`` over the columns) that produces the identical
    statistics one to two orders of magnitude faster than boxed iteration.
    """
    if isinstance(trace, TraceBuffer):
        return _characterize_buffer(trace, region_size)
    stats = TraceStatistics()
    blocks = set()
    region_blocks: Dict[int, set] = defaultdict(set)
    per_core: Dict[int, int] = defaultdict(int)
    per_pc: Dict[int, int] = defaultdict(int)

    for access in trace:
        stats.accesses += 1
        stats.instructions += access.instructions
        if access.is_store:
            stats.stores += 1
        block = block_address(access.address)
        blocks.add(block)
        region_blocks[access.address // region_size].add(block)
        per_core[access.core] += 1
        per_pc[access.pc] += 1

    stats.footprint_blocks = len(blocks)
    stats.footprint_regions = len(region_blocks)
    stats.active_cores = len(per_core)
    stats.distinct_pcs = len(per_pc)
    stats.accesses_per_core = dict(per_core)
    stats.accesses_per_pc = dict(per_pc)
    stats.blocks_per_region = {region: len(members)
                               for region, members in region_blocks.items()}
    return stats


def _characterize_buffer(trace: TraceBuffer, region_size: int) -> TraceStatistics:
    """Vectorized characterisation of a columnar trace."""
    stats = TraceStatistics()
    stats.accesses = len(trace)
    if stats.accesses == 0:
        return stats
    stats.stores = int(np.count_nonzero(trace.is_store))
    stats.instructions = trace.total_instructions

    # Distinct blocks per region: block ids are globally unique, so the
    # unique blocks alone identify the (region, block) pairs; counting how
    # many unique blocks land in each region gives the per-region density.
    unique_blocks = np.unique(trace.address // BLOCK_SIZE)
    stats.footprint_blocks = len(unique_blocks)
    block_regions = (unique_blocks * BLOCK_SIZE) // region_size
    region_ids, blocks_in_region = np.unique(block_regions, return_counts=True)
    stats.footprint_regions = len(region_ids)
    stats.blocks_per_region = dict(
        zip((int(r) for r in region_ids), (int(c) for c in blocks_in_region)))

    cores, core_counts = np.unique(trace.core, return_counts=True)
    stats.active_cores = len(cores)
    stats.accesses_per_core = dict(
        zip((int(c) for c in cores), (int(n) for n in core_counts)))

    pcs, pc_counts = np.unique(trace.pc, return_counts=True)
    stats.distinct_pcs = len(pcs)
    stats.accesses_per_pc = dict(
        zip((int(p) for p in pcs), (int(n) for n in pc_counts)))
    return stats
