"""The ``TraceSource`` protocol: pull-based trace production with feedback.

Every way the simulator can be fed -- workload generators, the scenario
compiler, stored trace files, closed-loop traffic shapers -- speaks one
protocol::

    chunk = source.next_chunk(feedback)   # TraceBuffer | None (exhausted)

``feedback`` is a :class:`FeedbackSample` assembled by the simulator at the
chunk boundary (or ``None``): cumulative service-side observations -- mean
memory latency, queue depth -- that a *closed-loop* source can feed into an
admission controller.  Open-loop sources simply ignore it, and the run loop
only assembles samples for sources that declare ``wants_feedback``, so the
feedback path costs nothing unless it is used.

The protocol is deliberately pull-based and chunk-grained: the simulator
fully services chunk *k* before requesting chunk *k+1*, so a feedback sample
observed before a pull reflects exactly the accesses produced so far --
independent of chunk size.  That is what lets closed-loop runs inherit the
engine-wide chunk-size-invariance guarantee (see
:class:`repro.scenario.closed_loop.ClosedLoopSource`).

Members:

* :class:`FeedbackSample` -- the boundary observation record.
* :class:`IteratorSource` / :func:`as_trace_source` -- adapt anything the
  chunk machinery already accepts (a :class:`~repro.trace.buffer.
  TraceBuffer`, a chunk iterator, a list of accesses) into a source with
  bit-identical output.
* :class:`IngestSource` -- replay an externally captured trace file
  (``trace/io`` codecs, including :class:`~repro.trace.capture.
  LLCTraceRecorder` exports) through the streaming pipeline.
* :func:`resume_source` -- prepend a leftover chunk (e.g. the tail of a
  warmup-split chunk) to a source, preserving its feedback appetite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Protocol, runtime_checkable

from repro.trace.buffer import DEFAULT_CHUNK_SIZE, TraceBuffer, as_chunk_iterator

__all__ = [
    "FeedbackSample",
    "IngestSource",
    "IteratorSource",
    "TraceSource",
    "as_trace_source",
    "resume_source",
]


@dataclass(frozen=True)
class FeedbackSample:
    """Cumulative service-side observations at one chunk boundary.

    All fields are *cumulative over the run* (monotone except across the
    measurement reset at the warmup boundary, which drains and zeroes the
    memory counters).  Controllers that want per-interval behaviour keep
    their own last-boundary values and difference internally -- that is what
    makes their decisions independent of how the stream happens to be
    chunked.
    """

    #: Accesses produced by the source and fully serviced so far.
    accesses: int
    #: Core clock at the boundary (bus cycles).
    core_cycle: float
    #: Cumulative DRAM demand reads served.
    demand_reads: int
    #: Cumulative demand-read latency (bus cycles, summed per read).
    read_latency_cycles: float
    #: Requests currently queued in the memory controllers.
    queue_depth: int
    #: Cumulative LLC misses.
    llc_misses: int

    @property
    def mean_read_latency(self) -> float:
        """Run-cumulative mean demand-read latency (0.0 before any read)."""
        if self.demand_reads <= 0:
            return 0.0
        return self.read_latency_cycles / self.demand_reads


@runtime_checkable
class TraceSource(Protocol):
    """Anything that produces trace chunks on demand."""

    def next_chunk(self, feedback: Optional[FeedbackSample]) -> Optional[TraceBuffer]:
        """Produce the next chunk, or ``None`` when the stream is exhausted."""
        ...


class IteratorSource:
    """Adapter: any open-loop chunk producer as a :class:`TraceSource`.

    Accepts everything :func:`~repro.trace.buffer.as_chunk_iterator` accepts
    -- a :class:`TraceBuffer`, an iterator/list of buffers, a list of boxed
    accesses -- and replays it chunk for chunk.  ``feedback`` is ignored;
    output is bit-identical to iterating the underlying stream directly.
    """

    #: Open-loop: the run loop never assembles feedback for this source.
    wants_feedback = False

    def __init__(self, trace, chunk_size: int = DEFAULT_CHUNK_SIZE):
        self._chunks = as_chunk_iterator(trace, chunk_size=chunk_size)

    def next_chunk(self, feedback: Optional[FeedbackSample] = None):
        return next(self._chunks, None)

    def __iter__(self) -> Iterator[TraceBuffer]:
        """Drain as a plain chunk iterator (legacy chunk machinery)."""
        while True:
            chunk = self.next_chunk(None)
            if chunk is None:
                return
            yield chunk


class IngestSource(IteratorSource):
    """Replay an externally captured trace file as a :class:`TraceSource`.

    Completes the capture -> codec -> replay path: a recording made by
    :class:`~repro.trace.capture.LLCTraceRecorder` (or any tool emitting the
    ``trace/io`` formats) streams back through the simulator bit-for-bit.
    ``mmap=True`` replays structured ``.npy`` files without loading them
    into memory.
    """

    def __init__(self, path, chunk_size: int = DEFAULT_CHUNK_SIZE,
                 mmap: bool = False):
        from repro.trace.io import load_trace_buffer

        self.path = path
        self._buffer = load_trace_buffer(path, mmap=mmap)
        super().__init__(self._buffer, chunk_size=chunk_size)

    @property
    def total_accesses(self) -> int:
        return len(self._buffer)


def as_trace_source(trace, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """Coerce ``trace`` to a :class:`TraceSource`.

    Objects already exposing ``next_chunk`` pass through untouched; anything
    else is wrapped in an :class:`IteratorSource`.
    """
    if hasattr(trace, "next_chunk"):
        return trace
    return IteratorSource(trace, chunk_size=chunk_size)


class _ResumedSource:
    """A source with a pre-produced chunk stitched back onto its front."""

    def __init__(self, leftover: Optional[TraceBuffer], source):
        self._leftover = leftover if leftover is not None and len(leftover) else None
        self._source = source
        self.wants_feedback = bool(getattr(source, "wants_feedback", False))

    @property
    def current_intensity(self) -> float:
        return float(getattr(self._source, "current_intensity", 1.0))

    def next_chunk(self, feedback: Optional[FeedbackSample] = None):
        if self._leftover is not None:
            chunk, self._leftover = self._leftover, None
            return chunk
        return self._source.next_chunk(feedback)

    def __iter__(self) -> Iterator[TraceBuffer]:
        while True:
            chunk = self.next_chunk(None)
            if chunk is None:
                return
            yield chunk


def resume_source(leftover: Optional[TraceBuffer], source) -> TraceSource:
    """Resume ``source`` with ``leftover`` (an already-produced chunk) first.

    Used after a warmup-boundary split: the tail of the split chunk was
    produced but not yet serviced, so it must replay before the source is
    consulted again.  Feedback appetite and intensity reporting delegate to
    the wrapped source.
    """
    source = as_trace_source(source)
    if leftover is None or not len(leftover):
        return source
    return _ResumedSource(leftover, source)
