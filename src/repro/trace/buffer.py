"""Columnar structure-of-arrays trace representation.

A :class:`TraceBuffer` holds one access trace as five parallel NumPy arrays
(``core``, ``pc``, ``address``, ``is_store``, ``instructions``) instead of a
list of per-access :class:`repro.common.request.Access` objects.  The layout
is the backbone of the streaming trace pipeline:

* the workload generators emit traces as chunks of these arrays (batched
  ``np.random.Generator`` draws, no per-access Python objects);
* the simulator iterates a buffer row-wise over ``tolist()``-decoded columns,
  so the hot loop sees plain Python scalars and produces results
  bit-identical to the object path;
* :mod:`repro.trace.io` persists buffers to disk (compressed ``.npz`` or a
  memory-mappable structured ``.npy``) and :mod:`repro.exec.store` ships them
  between campaign workers without pickling object lists.

The dtypes are fixed (and shared with the on-disk formats): ``int32`` cores
and instruction counts, ``uint64`` PCs and addresses, ``bool`` store flags --
29 bytes per access versus several hundred for a boxed ``Access``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple, Union

import numpy as np

from repro.common.request import Access, AccessType

#: Column names in canonical order (also the on-disk schema).
TRACE_FIELDS: Tuple[str, ...] = ("core", "pc", "address", "is_store", "instructions")

#: Canonical dtype of every column, keyed by field name.
TRACE_DTYPES = {
    "core": np.dtype(np.int32),
    "pc": np.dtype(np.uint64),
    "address": np.dtype(np.uint64),
    "is_store": np.dtype(np.bool_),
    "instructions": np.dtype(np.int32),
}

#: Structured record dtype used by the memory-mappable ``.npy`` layout.
TRACE_RECORD_DTYPE = np.dtype([(name, TRACE_DTYPES[name]) for name in TRACE_FIELDS])

#: Default generator/simulator chunk granularity: large enough to amortize
#: per-chunk Python overhead, small enough to keep streaming memory flat
#: (~1.9MB of columns per chunk).
DEFAULT_CHUNK_SIZE = 65_536


class TraceBuffer:
    """One access trace as five parallel column arrays."""

    __slots__ = ("core", "pc", "address", "is_store", "instructions")

    def __init__(self, core: np.ndarray, pc: np.ndarray, address: np.ndarray,
                 is_store: np.ndarray, instructions: np.ndarray) -> None:
        # asarray (not ascontiguousarray): a matching-dtype column is adopted
        # as-is, so slices stay zero-copy views and the strided columns of a
        # memory-mapped structured record file are used in place.
        self.core = np.asarray(core, dtype=TRACE_DTYPES["core"])
        self.pc = np.asarray(pc, dtype=TRACE_DTYPES["pc"])
        self.address = np.asarray(address, dtype=TRACE_DTYPES["address"])
        self.is_store = np.asarray(is_store, dtype=TRACE_DTYPES["is_store"])
        self.instructions = np.asarray(instructions, dtype=TRACE_DTYPES["instructions"])
        length = len(self.core)
        for name in TRACE_FIELDS[1:]:
            if len(getattr(self, name)) != length:
                raise ValueError(
                    f"column {name!r} has {len(getattr(self, name))} rows, "
                    f"expected {length}")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls) -> "TraceBuffer":
        """A zero-length buffer."""
        return cls(*(np.empty(0, dtype=TRACE_DTYPES[name]) for name in TRACE_FIELDS))

    @classmethod
    def from_accesses(cls, accesses: Iterable[Access]) -> "TraceBuffer":
        """Build a buffer from an iterable of :class:`Access` records."""
        records = accesses if isinstance(accesses, (list, tuple)) else list(accesses)
        return cls(
            core=np.fromiter((a.core for a in records),
                             dtype=TRACE_DTYPES["core"], count=len(records)),
            pc=np.fromiter((a.pc for a in records),
                           dtype=TRACE_DTYPES["pc"], count=len(records)),
            address=np.fromiter((a.address for a in records),
                                dtype=TRACE_DTYPES["address"], count=len(records)),
            is_store=np.fromiter((a.is_store for a in records),
                                 dtype=TRACE_DTYPES["is_store"], count=len(records)),
            instructions=np.fromiter((a.instructions for a in records),
                                     dtype=TRACE_DTYPES["instructions"],
                                     count=len(records)),
        )

    @classmethod
    def from_structured(cls, records: np.ndarray) -> "TraceBuffer":
        """Build a buffer from a structured array with the canonical fields.

        Accepts any array (including a read-only memory map) whose dtype has
        the five trace fields; extra fields are rejected so schema drift is
        caught at load time rather than mid-simulation.
        """
        names = records.dtype.names
        if names is None or set(names) != set(TRACE_FIELDS):
            raise ValueError(
                f"structured trace records need fields {TRACE_FIELDS}, "
                f"got {names}")
        return cls(*(records[name] for name in TRACE_FIELDS))

    @classmethod
    def coerce(cls, trace: Union["TraceBuffer", Iterable[Access]]) -> "TraceBuffer":
        """Return ``trace`` as a buffer, converting object traces if needed."""
        if isinstance(trace, TraceBuffer):
            return trace
        return cls.from_accesses(trace)

    @classmethod
    def concat(cls, buffers: Sequence["TraceBuffer"]) -> "TraceBuffer":
        """Concatenate buffers in order (an empty input yields an empty buffer)."""
        buffers = list(buffers)
        if not buffers:
            return cls.empty()
        if len(buffers) == 1:
            return buffers[0]
        return cls(*(np.concatenate([getattr(b, name) for b in buffers])
                     for name in TRACE_FIELDS))

    # ------------------------------------------------------------------ #
    # Sequence protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.core)

    def __getitem__(self, index) -> Union[Access, "TraceBuffer"]:
        """``buffer[i]`` boxes one row; ``buffer[a:b]`` is a zero-copy view."""
        if isinstance(index, slice):
            return TraceBuffer(*(getattr(self, name)[index] for name in TRACE_FIELDS))
        return Access(
            core=int(self.core[index]),
            pc=int(self.pc[index]),
            address=int(self.address[index]),
            type=AccessType.STORE if self.is_store[index] else AccessType.LOAD,
            instructions=int(self.instructions[index]),
        )

    def __iter__(self) -> Iterator[Access]:
        """Iterate boxed :class:`Access` records (compatibility path).

        Decoding goes through :meth:`columns_as_lists` so iteration costs one
        bulk conversion rather than a NumPy scalar unboxing per field.
        """
        core, pc, address, is_store, instructions = self.columns_as_lists()
        for i in range(len(core)):
            yield Access(core=core[i], pc=pc[i], address=address[i],
                         type=AccessType.STORE if is_store[i] else AccessType.LOAD,
                         instructions=instructions[i])

    def __eq__(self, other) -> bool:
        if isinstance(other, TraceBuffer):
            return all(np.array_equal(getattr(self, name), getattr(other, name))
                       for name in TRACE_FIELDS)
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and self.to_accesses() == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceBuffer({len(self)} accesses, {self.nbytes} bytes)"

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def columns_as_lists(self) -> Tuple[list, list, list, list, list]:
        """Decode every column to plain Python scalars in one pass.

        This is the simulator's entry point: ``tolist()`` yields native
        ``int``/``bool`` values, so the interpretation loop performs the same
        arithmetic as the boxed-object path (no ``uint64`` wraparound
        surprises) while paying one bulk conversion per chunk.
        """
        return (self.core.tolist(), self.pc.tolist(), self.address.tolist(),
                self.is_store.tolist(), self.instructions.tolist())

    def to_accesses(self) -> List[Access]:
        """Materialize the buffer as a list of boxed :class:`Access` records."""
        return list(self)

    def to_structured(self) -> np.ndarray:
        """Pack the columns into one structured record array (for ``.npy``)."""
        records = np.empty(len(self), dtype=TRACE_RECORD_DTYPE)
        for name in TRACE_FIELDS:
            records[name] = getattr(self, name)
        return records

    def iter_chunks(self, chunk_size: int = DEFAULT_CHUNK_SIZE
                    ) -> Iterator["TraceBuffer"]:
        """Yield zero-copy windows of at most ``chunk_size`` rows."""
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        for start in range(0, len(self), chunk_size):
            yield self[start:start + chunk_size]

    # ------------------------------------------------------------------ #
    # Characterisation
    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        """Total size of the column arrays in bytes."""
        return sum(getattr(self, name).nbytes for name in TRACE_FIELDS)

    @property
    def store_fraction(self) -> float:
        """Fraction of accesses that are stores."""
        if len(self) == 0:
            return 0.0
        return float(np.count_nonzero(self.is_store)) / len(self)

    @property
    def total_instructions(self) -> int:
        """Sum of per-access instruction counts."""
        return int(self.instructions.sum(dtype=np.int64))


def as_chunk_iterator(trace, chunk_size: int = DEFAULT_CHUNK_SIZE
                      ) -> Iterator[TraceBuffer]:
    """Normalise any trace shape to an iterator of :class:`TraceBuffer` chunks.

    Accepts a :class:`TraceBuffer`, a sequence of :class:`Access` records, an
    iterator of :class:`Access` records (batched into chunks as it drains),
    or an iterable that already yields :class:`TraceBuffer` chunks (passed
    through unchanged).
    """
    if isinstance(trace, TraceBuffer):
        return trace.iter_chunks(chunk_size)
    if isinstance(trace, (list, tuple)):
        if trace and isinstance(trace[0], TraceBuffer):
            return iter(trace)
        return TraceBuffer.from_accesses(trace).iter_chunks(chunk_size)

    def batched() -> Iterator[TraceBuffer]:
        iterator = iter(trace)
        try:
            first = next(iterator)
        except StopIteration:
            return
        if isinstance(first, TraceBuffer):
            yield first
            for chunk in iterator:
                yield chunk
            return
        batch = [first]
        for access in iterator:
            batch.append(access)
            if len(batch) >= chunk_size:
                yield TraceBuffer.from_accesses(batch)
                batch = []
        if batch:
            yield TraceBuffer.from_accesses(batch)

    return batched()
