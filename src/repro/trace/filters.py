"""Trace slicing and recombination.

All functions are pure: they accept an iterable of
:class:`repro.common.request.Access` records and return a new list, never
mutating the input.  They compose naturally::

    hot_core = filter_by_core(trace, cores=[3])
    stores = filter_by_type(hot_core, stores=True, loads=False)
    sampled = sample_systematic(stores, period=10, unit_length=100)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.common.request import Access


def filter_by_core(trace: Iterable[Access], cores: Sequence[int]) -> List[Access]:
    """Keep only accesses issued by the listed cores."""
    wanted = set(cores)
    return [access for access in trace if access.core in wanted]


def filter_by_type(trace: Iterable[Access], loads: bool = True,
                   stores: bool = True) -> List[Access]:
    """Keep loads, stores or both."""
    return [
        access for access in trace
        if (stores if access.is_store else loads)
    ]


def filter_by_address_range(trace: Iterable[Access], start: int,
                            end: int) -> List[Access]:
    """Keep accesses whose byte address falls in ``[start, end)``."""
    if end <= start:
        raise ValueError("address range end must be greater than start")
    return [access for access in trace if start <= access.address < end]


def truncate(trace: Iterable[Access], count: int) -> List[Access]:
    """Keep the first ``count`` accesses."""
    if count < 0:
        raise ValueError("count must be non-negative")
    result = []
    for access in trace:
        if len(result) >= count:
            break
        result.append(access)
    return result


def split_by_core(trace: Iterable[Access]) -> Dict[int, List[Access]]:
    """Separate a merged trace into its per-core streams (order preserved)."""
    streams: Dict[int, List[Access]] = {}
    for access in trace:
        streams.setdefault(access.core, []).append(access)
    return streams


def interleave_round_robin(streams: Sequence[List[Access]]) -> List[Access]:
    """Merge several streams by round-robin, mirroring the generator's policy.

    Streams of different lengths are handled by skipping exhausted streams,
    so every input access appears exactly once in the output.
    """
    merged: List[Access] = []
    positions = [0] * len(streams)
    remaining = sum(len(stream) for stream in streams)
    index = 0
    while remaining > 0:
        stream = streams[index % len(streams)]
        position = positions[index % len(streams)]
        if position < len(stream):
            merged.append(stream[position])
            positions[index % len(streams)] += 1
            remaining -= 1
        index += 1
    return merged


def remap_cores(trace: Iterable[Access], mapping: Optional[Dict[int, int]] = None,
                num_cores: Optional[int] = None) -> List[Access]:
    """Reassign core ids, either through an explicit mapping or modulo folding.

    Folding (``num_cores``) is how a 16-core trace is replayed on a smaller
    simulated machine in the scalability study: core ``c`` becomes
    ``c % num_cores``.
    """
    if (mapping is None) == (num_cores is None):
        raise ValueError("provide exactly one of mapping or num_cores")
    result = []
    for access in trace:
        if mapping is not None:
            core = mapping.get(access.core, access.core)
        else:
            core = access.core % num_cores
        result.append(Access(core=core, pc=access.pc, address=access.address,
                             type=access.type, instructions=access.instructions))
    return result


def sample_systematic(trace: Iterable[Access], period: int,
                      unit_length: int) -> List[Access]:
    """SMARTS-style systematic sampling: one unit of ``unit_length`` accesses
    out of every ``period`` units.

    The measured units are taken at the *start* of each period (the detailed
    phase); the remainder of the period is skipped (the functional-warming
    phase in the original methodology).  Sampling a trace this way keeps its
    phase structure while shrinking simulation time by ``period``x.
    """
    if period < 1 or unit_length < 1:
        raise ValueError("period and unit length must be positive")
    sampled: List[Access] = []
    span = period * unit_length
    for index, access in enumerate(trace):
        if index % span < unit_length:
            sampled.append(access)
    return sampled
