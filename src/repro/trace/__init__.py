"""Trace tooling.

The workload generators (:mod:`repro.workloads`) produce in-memory streams of
:class:`repro.common.request.Access` records.  This package provides the
tooling a trace-driven methodology needs around those streams:

* :mod:`repro.trace.io` -- persist traces to disk (a human-readable CSV text
  format and a compact NumPy ``.npz`` binary format) and load them back, so
  expensive generator configurations can be produced once and replayed across
  system configurations or shared between machines.
* :mod:`repro.trace.stats` -- characterise a trace without simulating it:
  footprint, read/write mix, per-PC and per-region histograms, and a static
  region-density profile comparable to Figure 5.
* :mod:`repro.trace.filters` -- slice and recombine traces: filter by core,
  access type or address range, split per core, interleave per-core streams,
  systematic (SMARTS-style) sampling, and deterministic truncation.
* :mod:`repro.trace.capture` -- observe a simulation from the inside: an LLC
  agent that records the post-L1 request/eviction stream so the off-chip
  behaviour of a run can itself be saved, inspected and replayed.
"""

from repro.trace.capture import LLCTraceRecorder
from repro.trace.filters import (
    filter_by_address_range,
    filter_by_core,
    filter_by_type,
    interleave_round_robin,
    remap_cores,
    sample_systematic,
    split_by_core,
    truncate,
)
from repro.trace.io import load_trace, save_trace
from repro.trace.stats import TraceStatistics, characterize_trace

__all__ = [
    "LLCTraceRecorder",
    "TraceStatistics",
    "characterize_trace",
    "filter_by_address_range",
    "filter_by_core",
    "filter_by_type",
    "interleave_round_robin",
    "load_trace",
    "remap_cores",
    "sample_systematic",
    "save_trace",
    "split_by_core",
    "truncate",
]
