"""Trace tooling.

The workload generators (:mod:`repro.workloads`) produce traces as columnar
:class:`repro.trace.buffer.TraceBuffer` chunks.  This package provides the
columnar representation itself plus the tooling a trace-driven methodology
needs around those streams:

* :mod:`repro.trace.buffer` -- the structure-of-arrays trace representation
  (parallel ``core``/``pc``/``address``/``is_store``/``instructions`` NumPy
  columns) that flows from the generators through the artifact store into
  the simulator's row loop.
* :mod:`repro.trace.io` -- persist traces to disk (a human-readable CSV text
  format, a compact ``.npz`` binary format and a memory-mappable structured
  ``.npy`` format) and load them back, so expensive generator configurations
  can be produced once and replayed across system configurations or shared
  between machines.
* :mod:`repro.trace.stats` -- characterise a trace without simulating it:
  footprint, read/write mix, per-PC and per-region histograms, and a static
  region-density profile comparable to Figure 5.
* :mod:`repro.trace.filters` -- slice and recombine traces: filter by core,
  access type or address range, split per core, interleave per-core streams,
  systematic (SMARTS-style) sampling, and deterministic truncation.
* :mod:`repro.trace.capture` -- observe a simulation from the inside: an LLC
  agent that records the post-L1 request/eviction stream so the off-chip
  behaviour of a run can itself be saved, inspected and replayed.
* :mod:`repro.trace.source` -- the ``TraceSource`` protocol every producer
  speaks (``next_chunk(feedback)``): open-loop adapters over buffers and
  chunk iterators, the :class:`IngestSource` replay path for captured trace
  files, and the :class:`FeedbackSample` record closed-loop sources consume.
"""

from repro.trace.buffer import DEFAULT_CHUNK_SIZE, TraceBuffer, as_chunk_iterator
from repro.trace.capture import LLCTraceRecorder
from repro.trace.source import (
    FeedbackSample,
    IngestSource,
    IteratorSource,
    TraceSource,
    as_trace_source,
    resume_source,
)
from repro.trace.filters import (
    filter_by_address_range,
    filter_by_core,
    filter_by_type,
    interleave_round_robin,
    remap_cores,
    sample_systematic,
    split_by_core,
    truncate,
)
from repro.trace.io import load_trace, load_trace_buffer, save_trace
from repro.trace.stats import TraceStatistics, characterize_trace

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "FeedbackSample",
    "IngestSource",
    "IteratorSource",
    "LLCTraceRecorder",
    "TraceBuffer",
    "TraceSource",
    "TraceStatistics",
    "as_chunk_iterator",
    "as_trace_source",
    "characterize_trace",
    "resume_source",
    "filter_by_address_range",
    "filter_by_core",
    "filter_by_type",
    "interleave_round_robin",
    "load_trace",
    "load_trace_buffer",
    "remap_cores",
    "sample_systematic",
    "save_trace",
    "split_by_core",
    "truncate",
]
