"""Capture the post-L1 request stream of a simulation.

:class:`LLCTraceRecorder` is a passive :class:`repro.cache.agent.LLCAgent`: it
requests no traffic, it only records what it observes.  Attached to a
:class:`repro.sim.system.ServerSystem` (through the ``extra_agents`` hook of
the runner or by appending to ``system.agents`` before the run), it produces
the LLC-level trace -- demand requests with their PCs plus the eviction
stream -- which is exactly the input BuMP's structures see in hardware.

That makes two workflows possible without re-running the front half of the
simulator:

* replaying the recorded LLC miss stream directly against a memory-system
  model when iterating on controller policies;
* feeding recorded request/eviction streams to a predictor in isolation
  (the RDTT/BHT/DRT unit tests use hand-built streams; the integration tests
  use recorded ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.request import Access, AccessType, LLCRequest
from repro.common.stats import StatGroup
from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.set_assoc import EvictedLine


@dataclass
class RecordedAccess:
    """One observed LLC demand request."""

    core: int
    pc: int
    block_address: int
    is_store: bool
    hit: bool


@dataclass
class RecordedEviction:
    """One observed LLC eviction."""

    block_address: int
    dirty: bool
    prefetched: bool
    used: bool


class LLCTraceRecorder(LLCAgent):
    """Passive agent that records the LLC access, miss and eviction streams."""

    name = "llc_recorder"

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.accesses: List[RecordedAccess] = []
        self.misses: List[RecordedAccess] = []
        self.evictions: List[RecordedEviction] = []
        self.stats = StatGroup("llc_recorder")

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def _record(self, target: List, record) -> None:
        if len(target) < self.capacity:
            target.append(record)
        else:
            self.stats.inc("dropped_records")

    def on_access(self, request: LLCRequest, hit: bool) -> AgentActions:
        """Record a demand access."""
        self._record(self.accesses, RecordedAccess(
            core=request.core, pc=request.pc, block_address=request.block_address,
            is_store=request.is_store, hit=hit,
        ))
        self.stats.inc("accesses_recorded")
        return AgentActions()

    def on_miss(self, request: LLCRequest) -> AgentActions:
        """Record a demand miss."""
        self._record(self.misses, RecordedAccess(
            core=request.core, pc=request.pc, block_address=request.block_address,
            is_store=request.is_store, hit=False,
        ))
        self.stats.inc("misses_recorded")
        return AgentActions()

    def on_eviction(self, victim: EvictedLine) -> AgentActions:
        """Record an eviction."""
        self._record(self.evictions, RecordedEviction(
            block_address=victim.block_address, dirty=victim.dirty,
            prefetched=victim.prefetched, used=victim.used,
        ))
        self.stats.inc("evictions_recorded")
        return AgentActions()

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def miss_trace(self) -> List[Access]:
        """The recorded miss stream as processor-level ``Access`` records.

        Core, PC and block address are preserved; the instruction count is set
        to 1 because the spacing information lives in the original trace, not
        at the LLC.  The result can be saved with :func:`repro.trace.io.save_trace`
        and replayed against a memory-system model.
        """
        return [
            Access(core=record.core, pc=record.pc, address=record.block_address,
                   type=AccessType.STORE if record.is_store else AccessType.LOAD,
                   instructions=1)
            for record in self.misses
        ]

    @property
    def llc_miss_ratio(self) -> float:
        """Fraction of recorded demand accesses that missed."""
        if not self.accesses:
            return 0.0
        misses = sum(1 for record in self.accesses if not record.hit)
        return misses / len(self.accesses)

    def clear(self) -> None:
        """Drop everything recorded so far (the capacity budget resets too)."""
        self.accesses.clear()
        self.misses.clear()
        self.evictions.clear()
        self.stats.reset()
