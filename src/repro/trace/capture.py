"""Capture the post-L1 request stream of a simulation.

:class:`LLCTraceRecorder` is a passive :class:`repro.cache.agent.LLCAgent`: it
requests no traffic, it only records what it observes.  Attached to a
:class:`repro.sim.system.ServerSystem` (through the ``extra_agents`` hook of
the runner or by appending to ``system.agents`` before the run), it produces
the LLC-level trace -- demand requests with their PCs plus the eviction
stream -- which is exactly the input BuMP's structures see in hardware.

Recordings are held **columnar**: each stream accumulates into fixed-size
NumPy blocks (a few bytes per record instead of a boxed Python object), so a
million-access recording costs tens of megabytes, not gigabytes.  The boxed
``accesses`` / ``misses`` / ``evictions`` views materialize on demand for
inspection; the bounded-memory path is the columnar one --
:meth:`LLCTraceRecorder.miss_trace_buffer` yields the miss stream as a
:class:`~repro.trace.buffer.TraceBuffer` and
:meth:`LLCTraceRecorder.export` writes it through the ``trace/io`` codec,
ready for ``repro trace ingest`` / :class:`repro.trace.source.IngestSource`.

That makes two workflows possible without re-running the front half of the
simulator:

* replaying the recorded LLC miss stream directly against a memory-system
  model when iterating on controller policies;
* feeding recorded request/eviction streams to a predictor in isolation
  (the RDTT/BHT/DRT unit tests use hand-built streams; the integration tests
  use recorded ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.common.request import Access, AccessType, LLCRequest
from repro.common.stats import StatGroup
from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.set_assoc import EvictedLine
from repro.trace.buffer import TRACE_DTYPES, TraceBuffer


@dataclass
class RecordedAccess:
    """One observed LLC demand request."""

    core: int
    pc: int
    block_address: int
    is_store: bool
    hit: bool


@dataclass
class RecordedEviction:
    """One observed LLC eviction."""

    block_address: int
    dirty: bool
    prefetched: bool
    used: bool


#: Rows per storage block.  Blocks are allocated whole, so this is also the
#: minimum footprint of a non-empty stream; 8192 rows keep the allocation
#: rate negligible while wasting at most one partial block per stream.
_BLOCK_ROWS = 8192


class _ColumnarLog:
    """Append-only columnar record log, growing in fixed-size blocks.

    The per-record cost is a handful of NumPy scalar stores -- no object
    allocation -- and reading back a column concatenates the trimmed blocks.
    """

    def __init__(self, fields: Sequence[Tuple[str, type]],
                 block_rows: int = _BLOCK_ROWS) -> None:
        self._fields = tuple(fields)
        self._block_rows = block_rows
        self._blocks: List[Dict[str, np.ndarray]] = []
        self._cursor = block_rows  # forces a block on the first append
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def append(self, values: tuple) -> None:
        if self._cursor == self._block_rows:
            self._blocks.append({
                name: np.empty(self._block_rows, dtype=dtype)
                for name, dtype in self._fields
            })
            self._cursor = 0
        block = self._blocks[-1]
        cursor = self._cursor
        for (name, _), value in zip(self._fields, values):
            block[name][cursor] = value
        self._cursor = cursor + 1
        self._length += 1

    def column(self, name: str) -> np.ndarray:
        """One field over every record, oldest first (a fresh array)."""
        if not self._blocks:
            dtype = dict(self._fields)[name]
            return np.empty(0, dtype=dtype)
        parts = [block[name] for block in self._blocks[:-1]]
        parts.append(self._blocks[-1][name][:self._cursor])
        return np.concatenate(parts) if len(parts) > 1 else parts[0].copy()

    def clear(self) -> None:
        self._blocks.clear()
        self._cursor = self._block_rows
        self._length = 0


_ACCESS_FIELDS = (
    ("core", np.int32),
    ("pc", np.uint64),
    ("block_address", np.uint64),
    ("is_store", np.bool_),
    ("hit", np.bool_),
)
_EVICTION_FIELDS = (
    ("block_address", np.uint64),
    ("dirty", np.bool_),
    ("prefetched", np.bool_),
    ("used", np.bool_),
)


class LLCTraceRecorder(LLCAgent):
    """Passive agent that records the LLC access, miss and eviction streams.

    ``capacity`` bounds each stream independently; records beyond it are
    counted in ``stats["dropped_records"]`` instead of stored, so attaching a
    recorder can never make a run's memory unbounded.
    """

    name = "llc_recorder"

    def __init__(self, capacity: int = 1_000_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._accesses = _ColumnarLog(_ACCESS_FIELDS)
        self._misses = _ColumnarLog(_ACCESS_FIELDS)
        self._evictions = _ColumnarLog(_EVICTION_FIELDS)
        self._access_misses = 0
        self.stats = StatGroup("llc_recorder")

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def _record(self, target: _ColumnarLog, values: tuple) -> bool:
        if len(target) < self.capacity:
            target.append(values)
            return True
        self.stats.inc("dropped_records")
        return False

    def on_access(self, request: LLCRequest, hit: bool) -> AgentActions:
        """Record a demand access."""
        if self._record(self._accesses, (request.core, request.pc,
                                         request.block_address,
                                         request.is_store, hit)):
            if not hit:
                self._access_misses += 1
        self.stats.inc("accesses_recorded")
        return AgentActions()

    def on_miss(self, request: LLCRequest) -> AgentActions:
        """Record a demand miss."""
        self._record(self._misses, (request.core, request.pc,
                                    request.block_address,
                                    request.is_store, False))
        self.stats.inc("misses_recorded")
        return AgentActions()

    def on_eviction(self, victim: EvictedLine) -> AgentActions:
        """Record an eviction."""
        self._record(self._evictions, (victim.block_address, victim.dirty,
                                       victim.prefetched, victim.used))
        self.stats.inc("evictions_recorded")
        return AgentActions()

    # ------------------------------------------------------------------ #
    # Boxed views (materialized on demand; sized for inspection, not bulk)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _boxed_accesses(log: _ColumnarLog) -> List[RecordedAccess]:
        return [
            RecordedAccess(core=int(core), pc=int(pc),
                           block_address=int(address),
                           is_store=bool(store), hit=bool(hit))
            for core, pc, address, store, hit in zip(
                log.column("core"), log.column("pc"),
                log.column("block_address"), log.column("is_store"),
                log.column("hit"))
        ]

    @property
    def accesses(self) -> List[RecordedAccess]:
        """The recorded demand accesses as boxed records (a fresh list)."""
        return self._boxed_accesses(self._accesses)

    @property
    def misses(self) -> List[RecordedAccess]:
        """The recorded demand misses as boxed records (a fresh list)."""
        return self._boxed_accesses(self._misses)

    @property
    def evictions(self) -> List[RecordedEviction]:
        """The recorded evictions as boxed records (a fresh list)."""
        return [
            RecordedEviction(block_address=int(address), dirty=bool(dirty),
                             prefetched=bool(prefetched), used=bool(used))
            for address, dirty, prefetched, used in zip(
                self._evictions.column("block_address"),
                self._evictions.column("dirty"),
                self._evictions.column("prefetched"),
                self._evictions.column("used"))
        ]

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def miss_trace_buffer(self) -> TraceBuffer:
        """The recorded miss stream as a columnar :class:`TraceBuffer`.

        Core, PC and block address are preserved; the instruction count is
        set to 1 because the spacing information lives in the original
        trace, not at the LLC.  This is the bounded-memory export path: no
        boxed records are materialized.
        """
        count = len(self._misses)
        return TraceBuffer(
            core=self._misses.column("core").astype(TRACE_DTYPES["core"],
                                                    copy=False),
            pc=self._misses.column("pc").astype(TRACE_DTYPES["pc"],
                                                copy=False),
            address=self._misses.column("block_address").astype(
                TRACE_DTYPES["address"], copy=False),
            is_store=self._misses.column("is_store").astype(
                TRACE_DTYPES["is_store"], copy=False),
            instructions=np.ones(count, dtype=TRACE_DTYPES["instructions"]),
        )

    def export(self, path):
        """Write the miss stream through the trace codec; returns the path.

        The file round-trips through :func:`repro.trace.io.load_trace_buffer`
        and replays through :class:`repro.trace.source.IngestSource` (or
        ``repro trace ingest``) bit-for-bit.
        """
        from repro.trace.io import save_trace

        return save_trace(self.miss_trace_buffer(), path)

    def miss_trace(self) -> List[Access]:
        """The recorded miss stream as processor-level ``Access`` records.

        Boxed counterpart of :meth:`miss_trace_buffer`, kept for callers
        that feed per-record APIs; the result can be saved with
        :func:`repro.trace.io.save_trace` and replayed against a
        memory-system model.
        """
        return [
            Access(core=int(core), pc=int(pc), address=int(address),
                   type=AccessType.STORE if store else AccessType.LOAD,
                   instructions=1)
            for core, pc, address, store in zip(
                self._misses.column("core"), self._misses.column("pc"),
                self._misses.column("block_address"),
                self._misses.column("is_store"))
        ]

    @property
    def llc_miss_ratio(self) -> float:
        """Fraction of recorded demand accesses that missed."""
        if not len(self._accesses):
            return 0.0
        return self._access_misses / len(self._accesses)

    def clear(self) -> None:
        """Drop everything recorded so far (the capacity budget resets too)."""
        self._accesses.clear()
        self._misses.clear()
        self._evictions.clear()
        self._access_misses = 0
        self.stats.reset()
