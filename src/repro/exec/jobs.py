"""Declarative job grids for experiment campaigns.

Every figure, ablation and design-space sweep of the reproduction is an
embarrassingly parallel grid of (workload x system configuration x seed)
simulations.  A :class:`JobSpec` captures one cell of that grid -- everything
needed to regenerate its trace and run it deterministically -- and a
:class:`JobGrid` expands the cartesian product declaratively so the campaign
engine (:mod:`repro.exec.campaign`) can fan the cells out across worker
processes and key them into the on-disk artifact store.

Identity is structural, not nominal: two jobs are the same artifact when
their *content fingerprints* match, i.e. when the workload spec, trace
length, core count, seed, warmup fraction and the full system-configuration
dataclass (including the nested BuMP geometry and architectural parameters)
are field-for-field identical.  Renaming a configuration does not fake a new
artifact, and tweaking a nested knob never silently reuses a stale one.

Execution-engine knobs are deliberately **not** part of a job's identity:
the cache engines (``REPRO_CACHE_ENGINE=flat|dict``) and DRAM engines
(``REPRO_DRAM_ENGINE=flat|object``) produce bit-identical results, so an
artifact computed under any engine combination is *the* artifact for that
job -- a campaign resumed on a machine with a different engine setting
reuses it safely.  (Engine *behaviour* changes do invalidate artifacts, via
the package version embedded in every fingerprint.)
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro import __version__ as _PACKAGE_VERSION
from repro.common.fingerprint import canonical_data, fingerprint, workload_fingerprint
from repro.scenario.catalog import get_scenario
from repro.scenario.closed_loop import ClosedLoopSpec, as_closed_loop_spec
from repro.scenario.spec import Scenario
from repro.sim.config import SystemConfig, named_configs
from repro.sim.runner import (
    DEFAULT_NUM_CORES,
    DEFAULT_SEED,
    DEFAULT_TRACE_LENGTH,
    DEFAULT_WARMUP_FRACTION,
)
from repro.sim.snapshot import snapshot_fingerprint
from repro.workloads.catalog import get_workload
from repro.workloads.spec import WorkloadSpec


# --------------------------------------------------------------------- #
# Content fingerprints
# --------------------------------------------------------------------- #
# ``canonical_data``, ``fingerprint`` and ``workload_fingerprint`` live in
# :mod:`repro.common.fingerprint` (the runner's trace cache keys on them
# too); they are re-exported here as the historical public surface.
__all__ = [
    "JobGrid", "JobSpec", "ScenarioGrid", "canonical_data",
    "config_fingerprint", "expand_grid", "expand_scenario_grid",
    "fingerprint", "workload_fingerprint",
]


def config_fingerprint(config: SystemConfig) -> str:
    """Content fingerprint of a system configuration (name excluded).

    Two differently named configurations that build the identical system
    (e.g. ``bump`` and ``bump`` with its default scheduler spelled out) map to
    the same artifact; the display name is presentation, not identity.
    """
    data = canonical_data(config)
    data.pop("name", None)
    data.pop("description", None)
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


# --------------------------------------------------------------------- #
# Job specification
# --------------------------------------------------------------------- #
@dataclass
class JobSpec:
    """One (workload, configuration, trace geometry, seed) simulation.

    ``workload`` is usually a :class:`WorkloadSpec`, but a
    :class:`repro.scenario.spec.Scenario` slots in unchanged: both carry a
    ``name``, both reduce canonically for fingerprinting, and the worker
    pool dispatches trace construction on the type.  Scenario jobs must
    declare the scenario's own geometry (``num_accesses ==
    scenario.total_accesses``, ``num_cores == scenario.num_cores``) --
    :class:`ScenarioGrid` takes care of that.

    ``closed_loop`` (scenario jobs only) runs the cell through the
    feedback-driven :class:`repro.scenario.closed_loop.ClosedLoopSource`
    instead of the open-loop compiled stream.  The spec becomes part of the
    job's identity -- a closed-loop cell is a different artifact from its
    open-loop twin -- but open-loop jobs fingerprint exactly as before.
    """

    workload: Union[WorkloadSpec, Scenario]
    config: SystemConfig
    num_accesses: int = DEFAULT_TRACE_LENGTH
    num_cores: int = DEFAULT_NUM_CORES
    seed: int = DEFAULT_SEED
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION
    closed_loop: Optional[ClosedLoopSpec] = None

    def __post_init__(self) -> None:
        if isinstance(self.workload, str):
            self.workload = get_workload(self.workload)
        self.closed_loop = as_closed_loop_spec(self.closed_loop)
        if self.closed_loop is not None and not isinstance(self.workload, Scenario):
            raise ValueError(
                "closed_loop applies to scenario jobs only; "
                f"{self.workload.name!r} is a single workload")
        if isinstance(self.workload, Scenario):
            if self.num_accesses != self.workload.total_accesses:
                raise ValueError(
                    f"scenario job length {self.num_accesses} disagrees with "
                    f"the scenario's {self.workload.total_accesses} accesses")
            if self.num_cores != self.workload.num_cores:
                raise ValueError(
                    f"scenario job cores {self.num_cores} disagree with the "
                    f"scenario's {self.workload.num_cores}")
        if self.num_accesses < 1:
            raise ValueError("num_accesses must be positive")
        if self.num_cores < 1:
            raise ValueError("num_cores must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        # Fingerprints are requested several times per job (grid dedup, store
        # pre-check, worker get/put); jobs are treated as immutable once
        # built, so the digests are computed once and memoized.
        self._trace_fingerprint: Optional[str] = None
        self._result_fingerprint: Optional[str] = None

    # -- identity ------------------------------------------------------ #
    def trace_fingerprint(self) -> str:
        """Content address of this job's input trace.

        The package version is part of the address: an artifact is only
        reusable while the code that produced it is unchanged, so a simulator
        or generator fix (which bumps the version) invalidates persisted
        artifacts instead of silently serving stale ones.
        """
        if self._trace_fingerprint is None:
            self._trace_fingerprint = fingerprint({
                "kind": "trace",
                "version": _PACKAGE_VERSION,
                "workload": canonical_data(self.workload),
                "num_accesses": self.num_accesses,
                "num_cores": self.num_cores,
                "seed": self.seed,
            })
        return self._trace_fingerprint

    def result_fingerprint(self) -> str:
        """Content address of this job's :class:`SimulationResult` artifact.

        The closed-loop spec enters the digest only when set, so every
        open-loop job keeps the address it always had.
        """
        if self._result_fingerprint is None:
            data = {
                "kind": "result",
                "version": _PACKAGE_VERSION,
                "trace": self.trace_fingerprint(),
                "config": config_fingerprint(self.config),
                "warmup_fraction": self.warmup_fraction,
            }
            if self.closed_loop is not None:
                data["closed_loop"] = canonical_data(self.closed_loop)
            self._result_fingerprint = fingerprint(data)
        return self._result_fingerprint

    def warmup_fingerprint(self) -> str:
        """Content address of this job's warm-state snapshot.

        Jobs that agree on workload, configuration (content, not name),
        warmup length, core count and seed share one warm snapshot: the
        measure phase differs only in what runs *after* warmup.  Engine
        knobs enter this fingerprint (unlike :meth:`result_fingerprint`)
        because a snapshot stores engine-specific array layouts; the
        defaults resolve deterministically inside
        :func:`repro.sim.snapshot.snapshot_fingerprint`.
        """
        return snapshot_fingerprint(
            self.workload, self.config,
            int(self.num_accesses * self.warmup_fraction),
            num_cores=self.num_cores, seed=self.seed,
            closed_loop=self.closed_loop)

    @property
    def label(self) -> str:
        """Human-readable job identifier used by progress reporting."""
        base = f"{self.workload.name}/{self.config.name}/n{self.num_accesses}/s{self.seed}"
        return base + "/closed-loop" if self.closed_loop is not None else base


# --------------------------------------------------------------------- #
# Grid expansion
# --------------------------------------------------------------------- #
WorkloadLike = Union[str, WorkloadSpec]
ConfigLike = Union[str, SystemConfig]


def _resolve_workloads(workloads: Iterable[WorkloadLike]) -> List[WorkloadSpec]:
    return [get_workload(w) if isinstance(w, str) else w for w in workloads]


def _resolve_configs(configs: Iterable[ConfigLike]) -> List[SystemConfig]:
    resolved: List[SystemConfig] = []
    for config in configs:
        if isinstance(config, str):
            resolved.append(named_configs([config])[config])
        else:
            resolved.append(config)
    return resolved


@dataclass
class JobGrid:
    """Declarative cartesian product of workloads x configurations x seeds.

    The grid is the campaign engine's input language: experiments state *what*
    has to run and the engine decides where and whether (a store hit skips the
    simulation entirely).  Duplicate cells -- e.g. two named configurations
    that fingerprint identically -- are dropped at expansion, keeping first
    occurrence order.
    """

    workloads: Sequence[WorkloadLike]
    configs: Sequence[ConfigLike]
    seeds: Sequence[int] = (DEFAULT_SEED,)
    num_accesses: int = DEFAULT_TRACE_LENGTH
    num_cores: int = DEFAULT_NUM_CORES
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION

    def expand(self, dedup: bool = True) -> List[JobSpec]:
        """Materialise the grid as a flat, optionally deduplicated, job list."""
        jobs: List[JobSpec] = []
        seen: Dict[str, None] = {}
        configs = _resolve_configs(self.configs)
        for workload in _resolve_workloads(self.workloads):
            for config in configs:
                for seed in self.seeds:
                    job = JobSpec(
                        workload=workload,
                        config=config,
                        num_accesses=self.num_accesses,
                        num_cores=self.num_cores,
                        seed=seed,
                        warmup_fraction=self.warmup_fraction,
                    )
                    if dedup:
                        digest = job.result_fingerprint()
                        if digest in seen:
                            continue
                        seen[digest] = None
                    jobs.append(job)
        return jobs

    def __len__(self) -> int:
        return len(self.expand())


@dataclass
class ScenarioGrid:
    """Cartesian product of scenarios x configurations x seeds.

    The scenario analogue of :class:`JobGrid`: scenarios are resolved from
    the catalog by name (scaled by ``scale``) or passed as ready
    :class:`~repro.scenario.spec.Scenario` instances, and each cell's trace
    geometry is taken from the scenario itself.  The expanded
    :class:`JobSpec` list runs through the unchanged campaign engine --
    store hits, sharding and the parity guard all behave exactly as for
    single-workload grids, because a compiled scenario is just a trace.

    ``closed_loop`` (a :class:`~repro.scenario.closed_loop.ClosedLoopSpec`
    or parameter dict) applies one feedback controller to every cell of the
    grid, turning the whole sweep closed-loop.
    """

    scenarios: Sequence[Union[str, Scenario]]
    configs: Sequence[ConfigLike]
    seeds: Sequence[int] = (DEFAULT_SEED,)
    scale: float = 1.0
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION
    closed_loop: Optional[ClosedLoopSpec] = None

    def expand(self, dedup: bool = True) -> List[JobSpec]:
        """Materialise the grid as a flat, optionally deduplicated, job list."""
        jobs: List[JobSpec] = []
        seen: Dict[str, None] = {}
        configs = _resolve_configs(self.configs)
        closed_loop = as_closed_loop_spec(self.closed_loop)
        for scenario in self.scenarios:
            resolved = get_scenario(scenario, scale=self.scale)
            for config in configs:
                for seed in self.seeds:
                    job = JobSpec(
                        workload=resolved,
                        config=config,
                        num_accesses=resolved.total_accesses,
                        num_cores=resolved.num_cores,
                        seed=seed,
                        warmup_fraction=self.warmup_fraction,
                        closed_loop=closed_loop,
                    )
                    if dedup:
                        digest = job.result_fingerprint()
                        if digest in seen:
                            continue
                        seen[digest] = None
                    jobs.append(job)
        return jobs

    def __len__(self) -> int:
        return len(self.expand())


def expand_scenario_grid(scenarios: Sequence[Union[str, Scenario]],
                         configs: Sequence[ConfigLike],
                         seeds: Sequence[int] = (DEFAULT_SEED,),
                         scale: float = 1.0,
                         warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                         closed_loop: Optional[ClosedLoopSpec] = None
                         ) -> List[JobSpec]:
    """Functional shorthand for ``ScenarioGrid(...).expand()``."""
    return ScenarioGrid(scenarios, configs, seeds, scale,
                        warmup_fraction, closed_loop).expand()


def expand_grid(workloads: Sequence[WorkloadLike],
                configs: Sequence[ConfigLike],
                seeds: Sequence[int] = (DEFAULT_SEED,),
                num_accesses: int = DEFAULT_TRACE_LENGTH,
                num_cores: int = DEFAULT_NUM_CORES,
                warmup_fraction: float = DEFAULT_WARMUP_FRACTION) -> List[JobSpec]:
    """Functional shorthand for ``JobGrid(...).expand()``."""
    return JobGrid(workloads, configs, seeds, num_accesses, num_cores,
                   warmup_fraction).expand()
