"""Worker-process execution of campaign jobs.

The campaign engine groups pending jobs into *shards* -- all jobs of a shard
share one input trace -- and submits each shard to a
:class:`concurrent.futures.ProcessPoolExecutor`.  Whichever worker picks a
shard up builds (or loads) its trace exactly once, runs every configuration
of the shard over the identical access stream, and returns the pickled
:class:`SimulationResult` bundles.  The trace is additionally published to
the shared content-addressed store -- as a compact columnar ``.npy`` that
sibling workers (and future campaign invocations) map back in zero-copy --
so it is never regenerated or shipped as pickled object lists.

Everything here is deliberately a thin composition of the single-run API
(:func:`repro.sim.runner.run_trace` over :func:`generate_trace_buffer`
output): a worker executes byte-for-byte the same code path as a serial run,
which is what makes the serial/parallel parity guarantee hold.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.jobs import JobSpec
from repro.exec.store import ArtifactStore
from repro.scenario.compiler import generate_scenario_buffer
from repro.scenario.spec import Scenario
from repro.sim.results import SimulationResult
from repro.sim.runner import run_trace
from repro.telemetry.metrics import peak_rss_bytes
from repro.trace.buffer import TraceBuffer
from repro.workloads.generator import generate_trace_buffer

__all__ = [
    "TRACE_MEMO_MAX_ENTRIES",
    "clear_trace_memo",
    "execute_job",
    "execute_job_sourced",
    "job_cost_metrics",
    "job_trace",
    "run_shard",
    "shard_jobs",
]

#: Bound on the per-process trace memo.  Columnar buffers are compact
#: (~29 bytes per access) but the bound must cover the six paper workloads
#: at once -- config-outer sweeps cycle through all six traces per
#: configuration, and a smaller memo would regenerate every one of them on
#: every lap (mirrors ``repro.sim.runner.TRACE_CACHE_MAX_ENTRIES``).
TRACE_MEMO_MAX_ENTRIES = 8

#: Per-worker state installed by :func:`_init_worker` (fork- and spawn-safe).
_WORKER_STORE: Optional[ArtifactStore] = None
#: Whether workers reuse warm-state snapshots from the shared store
#: (campaign ``warmup_snapshots=True``): the first worker to simulate a
#: given warmup fingerprint captures it, siblings restore instead of
#: re-simulating the warmup prefix.
_WORKER_WARMUP_SNAPSHOTS: bool = False
#: Deliberately separate from ``repro.sim.runner``'s trace cache: this memo
#: additionally sits behind the shared artifact store, so a campaign-wide
#: trace is built once per store, then mapped (not regenerated) per worker.
_TRACE_MEMO: "OrderedDict[str, TraceBuffer]" = OrderedDict()


def clear_trace_memo() -> None:
    """Drop this process's memoized traces (frees memory between campaigns)."""
    _TRACE_MEMO.clear()


def _init_worker(store_root: Optional[str],
                 max_entries: Optional[int],
                 max_bytes: Optional[int],
                 warmup_snapshots: bool = False) -> None:
    """Executor initializer: open the shared store inside the worker."""
    global _WORKER_STORE, _WORKER_WARMUP_SNAPSHOTS
    _TRACE_MEMO.clear()
    _WORKER_STORE = (
        ArtifactStore(store_root, max_entries=max_entries, max_bytes=max_bytes)
        if store_root else None
    )
    _WORKER_WARMUP_SNAPSHOTS = bool(warmup_snapshots)


def _memoize_trace(digest: str, trace: TraceBuffer) -> None:
    _TRACE_MEMO[digest] = trace
    _TRACE_MEMO.move_to_end(digest)
    while len(_TRACE_MEMO) > TRACE_MEMO_MAX_ENTRIES:
        _TRACE_MEMO.popitem(last=False)


def job_trace(job: JobSpec, store: Optional[ArtifactStore] = None) -> TraceBuffer:
    """Build (or fetch) the columnar input trace of ``job``.

    Resolution order: per-process memo, shared artifact store (memory-mapped
    ``.npy`` columns), fresh generation (which is then published to both).
    Generation is deterministic in (spec, length, cores, seed), so every
    source yields the identical access stream.  Scenario jobs compile
    through :mod:`repro.scenario.compiler` instead of the single-workload
    generator; everything downstream (store format, memoization, sharding)
    is identical because a compiled scenario is an ordinary columnar trace.
    """
    digest = job.trace_fingerprint()
    cached = _TRACE_MEMO.get(digest)
    if cached is not None:
        _TRACE_MEMO.move_to_end(digest)
        return cached
    if store is not None:
        stored = store.get_trace(digest)
        if stored is not None:
            _memoize_trace(digest, stored)
            return stored
    if isinstance(job.workload, Scenario):
        trace = generate_scenario_buffer(job.workload, seed=job.seed)
    else:
        trace = generate_trace_buffer(job.workload, job.num_accesses,
                                      num_cores=job.num_cores, seed=job.seed)
    _memoize_trace(digest, trace)
    if store is not None:
        store.put_trace(digest, trace)
    return trace


def execute_job_sourced(job: JobSpec, store: Optional[ArtifactStore] = None,
                        warmup_snapshots: bool = False
                        ) -> Tuple[SimulationResult, bool]:
    """Run one job end to end; the flag reports whether a simulation ran.

    This is *the* execution primitive: the serial path, the worker processes
    and the analysis layer's single-run helper all funnel through it.  The
    store is consulted even here (not only in the campaign's pre-check) so a
    concurrent campaign's artifacts are picked up, and such hits are reported
    as cached, not simulated.

    With ``warmup_snapshots`` (and a store), the run goes through the
    warm-state snapshot path: the warmup prefix is restored from the store
    when a sibling job already captured it, or simulated once and captured
    for the siblings.  Restored runs are bit-identical to cold ones, so the
    result artifact is the same either way; such runs still count as
    simulated (their measure phase ran).

    Closed-loop jobs have no pregeneratable trace -- the stream depends on
    simulator feedback -- so they bypass the trace store and run through
    :func:`repro.scenario.runner.run_scenario` with the job's spec; result
    caching and warm-state snapshots work unchanged (the closed-loop spec is
    part of both fingerprints).
    """
    if store is not None:
        cached = store.get_result(job.result_fingerprint())
        if cached is not None:
            return cached, False
    if job.closed_loop is not None:
        from repro.scenario.runner import run_scenario

        result = run_scenario(
            job.workload, job.config, seed=job.seed,
            warmup_fraction=job.warmup_fraction,
            closed_loop=job.closed_loop,
            warmup_snapshot=(store if warmup_snapshots and store is not None
                             and job.warmup_fraction > 0 else None))
        if store is not None:
            store.put_result(job.result_fingerprint(), result)
        return result, True
    trace = job_trace(job, store)
    if warmup_snapshots and store is not None and job.warmup_fraction > 0:
        result = run_trace(trace, job.config, workload_name=job.workload.name,
                           warmup_fraction=job.warmup_fraction,
                           warmup_snapshot=store,
                           snapshot_key=job.warmup_fingerprint())
    else:
        result = run_trace(trace, job.config, workload_name=job.workload.name,
                           warmup_fraction=job.warmup_fraction)
    if store is not None:
        store.put_result(job.result_fingerprint(), result)
    return result, True


def execute_job(job: JobSpec, store: Optional[ArtifactStore] = None) -> SimulationResult:
    """Run one job end to end (provenance-free convenience wrapper)."""
    return execute_job_sourced(job, store)[0]


def job_cost_metrics(wall_seconds: float) -> Dict[str, float]:
    """Cost provenance of one finished job in the *current* process.

    Small plain dict (pickle-cheap across the pool boundary); the campaign
    folds it into a :class:`repro.telemetry.metrics.JobMetrics` record.
    """
    return {
        "wall_seconds": wall_seconds,
        "peak_rss_bytes": peak_rss_bytes(),
        "pid": os.getpid(),
    }


def run_shard(indexed_jobs: Sequence[Tuple[int, JobSpec]]
              ) -> List[Tuple[int, SimulationResult, bool, Dict[str, float]]]:
    """Worker entry point: execute one shard of (index, job) pairs.

    All jobs of a shard share a trace fingerprint, so the trace is resolved
    once and every configuration replays the identical stream.  Each entry
    carries the worker-side cost metrics (:func:`job_cost_metrics`) so the
    campaign can account wall time and memory per producing process.
    """
    results = []
    for index, job in indexed_jobs:
        started = time.perf_counter()
        result, simulated = execute_job_sourced(
            job, _WORKER_STORE, warmup_snapshots=_WORKER_WARMUP_SNAPSHOTS)
        metrics = job_cost_metrics(time.perf_counter() - started)
        results.append((index, result, simulated, metrics))
    return results


def shard_jobs(indexed_jobs: Sequence[Tuple[int, JobSpec]],
               workers: int = 1) -> List[List[Tuple[int, JobSpec]]]:
    """Group pending jobs by input trace, preserving submission order.

    One shard per distinct trace keeps trace construction to once per shard
    regardless of how many configurations sweep over it, while still letting
    the executor balance whole shards across workers.  When the grid has
    fewer distinct traces than ``workers`` -- e.g. eight configurations over
    a single workload -- the largest shards are split so no worker idles; the
    sibling shards then share the trace through the artifact store (or, at
    worst, regenerate it deterministically).
    """
    groups: "OrderedDict[str, List[Tuple[int, JobSpec]]]" = OrderedDict()
    for index, job in indexed_jobs:
        groups.setdefault(job.trace_fingerprint(), []).append((index, job))
    shards = list(groups.values())
    while len(shards) < workers:
        largest = max(shards, key=len)
        if len(largest) < 2:
            break
        half = len(largest) // 2
        shards.remove(largest)
        shards.extend([largest[:half], largest[half:]])
    return shards
