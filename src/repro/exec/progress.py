"""Campaign progress streaming.

A campaign can run for minutes to hours; callers want to see jobs complete
as they finish, not a single summary at the end.  The engine reports through
the tiny observer interface below: :class:`NullProgress` for library use,
:class:`ConsoleProgress` for the CLI and the examples, and
:class:`RecordingProgress` for tests that assert on the exact event stream.
"""

from __future__ import annotations

import sys
import time
from typing import IO, List, Optional, Tuple

from repro.exec.jobs import JobSpec

__all__ = [
    "SOURCE_SIMULATED",
    "SOURCE_STORE",
    "CampaignProgress",
    "ConsoleProgress",
    "NullProgress",
    "RecordingProgress",
]

#: Job-completion provenance tags reported to observers.
SOURCE_STORE = "store"
SOURCE_SIMULATED = "simulated"


class CampaignProgress:
    """Observer interface; the default implementation ignores every event."""

    def on_start(self, total_jobs: int, cached_jobs: int, workers: int) -> None:
        """Campaign admitted ``total_jobs``, of which ``cached_jobs`` hit the store."""

    def on_job_done(self, job: JobSpec, source: str,
                    completed: int, total: int) -> None:
        """One job finished (``source`` is one of the ``SOURCE_*`` tags)."""

    def on_finish(self, simulated: int, cached: int, elapsed_seconds: float) -> None:
        """Campaign completed."""


class NullProgress(CampaignProgress):
    """Explicitly silent observer (alias of the base class, reads better)."""


class ConsoleProgress(CampaignProgress):
    """Line-per-job progress printer for interactive use."""

    def __init__(self, stream: Optional[IO[str]] = None, every: int = 1) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.every = max(1, every)
        self._start = 0.0

    def _write(self, text: str) -> None:
        self.stream.write(text + "\n")
        self.stream.flush()

    def on_start(self, total_jobs: int, cached_jobs: int, workers: int) -> None:
        self._start = time.perf_counter()
        self._write(
            f"campaign: {total_jobs} jobs ({cached_jobs} already in store), "
            f"{workers} worker{'s' if workers != 1 else ''}"
        )

    def on_job_done(self, job: JobSpec, source: str,
                    completed: int, total: int) -> None:
        if completed % self.every and completed != total:
            return
        elapsed = time.perf_counter() - self._start
        line = f"[{completed:>4}/{total}] {job.label} ({source}, {elapsed:.1f}s)"
        # Rate and ETA need a nonzero elapsed interval: when every job was
        # satisfied from the store the whole campaign can complete in the
        # clock's same instant, and a division there would blow up.
        if elapsed > 0.0 and completed > 0:
            rate = completed / elapsed
            remaining = total - completed
            line += f" | {rate:.1f} job/s"
            if remaining:
                line += f", eta {remaining / rate:.1f}s"
        self._write(line)

    def on_finish(self, simulated: int, cached: int, elapsed_seconds: float) -> None:
        self._write(
            f"campaign done: {simulated} simulated, {cached} from store, "
            f"{elapsed_seconds:.1f}s"
        )


class RecordingProgress(CampaignProgress):
    """Captures the event stream for assertions in tests."""

    def __init__(self) -> None:
        self.started: Optional[Tuple[int, int, int]] = None
        self.events: List[Tuple[str, str]] = []
        self.finished: Optional[Tuple[int, int]] = None

    def on_start(self, total_jobs: int, cached_jobs: int, workers: int) -> None:
        self.started = (total_jobs, cached_jobs, workers)

    def on_job_done(self, job: JobSpec, source: str,
                    completed: int, total: int) -> None:
        self.events.append((job.label, source))

    def on_finish(self, simulated: int, cached: int, elapsed_seconds: float) -> None:
        self.finished = (simulated, cached)
