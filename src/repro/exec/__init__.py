"""Parallel experiment-campaign engine with an on-disk artifact store.

The reproduction's figures, ablations and design-space sweeps are all grids
of independent (workload x system configuration x seed) simulations.  This
package turns those grids into *campaigns*:

* :mod:`repro.exec.jobs` -- declarative job grids (workload grids and
  scenario grids) and the content fingerprints that give every simulation a
  stable identity;
* :mod:`repro.exec.store` -- a content-addressed on-disk cache of traces and
  :class:`~repro.sim.results.SimulationResult` bundles, so re-runs and
  crashed sweeps resume for free;
* :mod:`repro.exec.pool` -- worker-process execution, sharded so each input
  trace is built once and shared through the store;
* :mod:`repro.exec.campaign` -- orchestration, aggregation and the
  serial-vs-parallel parity guard;
* :mod:`repro.exec.progress` -- streaming progress observers.

Typical use::

    from repro.exec import ArtifactStore, Campaign, JobGrid

    grid = JobGrid(workloads=["web_search", "web_serving"],
                   configs=["base_open", "bump"], num_accesses=60_000)
    store = ArtifactStore(".repro-artifacts")
    outcome = Campaign(grid.expand(), store=store, workers=4).run()
    print(outcome.get("web_search", "bump").row_buffer_hit_ratio)
"""

from repro.exec.campaign import (
    Campaign,
    CampaignError,
    CampaignResult,
    JobOutcome,
    ParityError,
    result_fingerprint,
    run_campaign,
    run_job,
    verify_parity,
)
from repro.exec.jobs import (
    JobGrid,
    JobSpec,
    ScenarioGrid,
    config_fingerprint,
    expand_grid,
    expand_scenario_grid,
    fingerprint,
    workload_fingerprint,
)
from repro.exec.progress import (
    CampaignProgress,
    ConsoleProgress,
    NullProgress,
    RecordingProgress,
)
from repro.exec.store import ArtifactStore, default_store

__all__ = [
    "ArtifactStore",
    "Campaign",
    "CampaignError",
    "CampaignProgress",
    "CampaignResult",
    "ConsoleProgress",
    "JobGrid",
    "JobOutcome",
    "JobSpec",
    "NullProgress",
    "ParityError",
    "RecordingProgress",
    "ScenarioGrid",
    "config_fingerprint",
    "default_store",
    "expand_grid",
    "expand_scenario_grid",
    "fingerprint",
    "result_fingerprint",
    "run_campaign",
    "run_job",
    "verify_parity",
    "workload_fingerprint",
]
