"""Campaign orchestration: run a job grid serially or across worker processes.

A :class:`Campaign` takes the jobs of a :class:`repro.exec.jobs.JobGrid`,
satisfies what it can from the artifact store, shards the remainder by input
trace and fans the shards out over a ``ProcessPoolExecutor``.  Results stream
back through a :class:`repro.exec.progress.CampaignProgress` observer and are
returned as a :class:`CampaignResult` that callers index by (workload,
configuration, seed).

Two properties are load-bearing and guarded by tests:

* **Determinism/parity** -- a worker executes the identical code path as a
  serial run (:func:`repro.exec.pool.execute_job`), so for the same trace and
  seed the parallel campaign's ``SimulationResult`` is bit-identical to the
  serial one.  :func:`verify_parity` proves it on demand.
* **Resumability** -- every completed job is persisted before the campaign
  moves on, so a crashed sweep re-run against the same store only simulates
  the missing cells.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec import pool
from repro.exec.jobs import JobSpec, fingerprint
from repro.telemetry.metrics import (
    JobMetrics,
    campaign_metrics,
    snapshot_cache_info,
    write_campaign_metrics,
)
from repro.exec.progress import (
    SOURCE_SIMULATED,
    SOURCE_STORE,
    CampaignProgress,
    NullProgress,
)
from repro.exec.store import ArtifactStore
from repro.sim.results import SimulationResult

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignResult",
    "JobOutcome",
    "ParityError",
    "result_fingerprint",
    "run_campaign",
    "run_job",
    "verify_parity",
]


class CampaignError(RuntimeError):
    """One or more campaign jobs failed."""


class ParityError(AssertionError):
    """Serial and parallel executions of the same jobs disagreed."""


def result_fingerprint(result: SimulationResult) -> str:
    """Content digest over every field of a result (used by the parity guard).

    The digest covers the full measurement bundle -- counters, DRAM/LLC/NOC
    statistics, timing, energy and density -- so two results fingerprinting
    equal are observationally identical.
    """
    return fingerprint(result)


def _job_metrics(job: JobSpec, source: str, cost: Dict[str, float]) -> JobMetrics:
    """Fold a job's identity and a :func:`pool.job_cost_metrics` dict together."""
    return JobMetrics(
        label=job.label,
        workload=job.workload.name,
        config=job.config.name,
        seed=job.seed,
        source=source,
        wall_seconds=float(cost["wall_seconds"]),
        peak_rss_bytes=int(cost["peak_rss_bytes"]),
        pid=int(cost["pid"]),
    )


@dataclass
class JobOutcome:
    """One job's result plus where it came from."""

    job: JobSpec
    result: SimulationResult
    source: str  # SOURCE_STORE or SOURCE_SIMULATED


@dataclass
class CampaignResult:
    """Everything a finished campaign produced."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Cost provenance per outcome, in outcome order (wall time, peak RSS,
    #: producing pid); see :mod:`repro.telemetry.metrics`.
    job_metrics: List[JobMetrics] = field(default_factory=list)
    #: The fleet-level campaign metrics document (always built).
    metrics: Dict[str, object] = field(default_factory=dict)
    #: Where the metrics document was persisted (``None`` without a store).
    metrics_path: Optional[Path] = None

    @property
    def simulated_count(self) -> int:
        """Jobs that actually ran a simulation this invocation."""
        return sum(1 for o in self.outcomes if o.source == SOURCE_SIMULATED)

    @property
    def cached_count(self) -> int:
        """Jobs satisfied from the artifact store without simulating."""
        return sum(1 for o in self.outcomes if o.source == SOURCE_STORE)

    def __len__(self) -> int:
        return len(self.outcomes)

    def results(self) -> Dict[Tuple[str, str, int], SimulationResult]:
        """Results keyed by (workload name, configuration name, seed)."""
        return {
            (o.job.workload.name, o.job.config.name, o.job.seed): o.result
            for o in self.outcomes
        }

    def get(self, workload: str, config_name: str,
            seed: Optional[int] = None) -> SimulationResult:
        """Look one result up; ``seed=None`` matches a unique-seeded cell."""
        matches = [
            o.result for o in self.outcomes
            if o.job.workload.name == workload
            and o.job.config.name == config_name
            and (seed is None or o.job.seed == seed)
        ]
        if not matches:
            raise KeyError(f"no campaign result for ({workload}, {config_name}, {seed})")
        if seed is None and len(matches) > 1:
            raise KeyError(
                f"({workload}, {config_name}) ran under several seeds; pass seed="
            )
        return matches[0]


class Campaign:
    """Orchestrates one sweep of jobs over an optional store and worker pool."""

    def __init__(self, jobs: Sequence[JobSpec],
                 store: Optional[ArtifactStore] = None,
                 workers: int = 1,
                 progress: Optional[CampaignProgress] = None,
                 warmup_snapshots: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        if warmup_snapshots and store is None:
            raise ValueError("warmup_snapshots requires an artifact store")
        self.jobs = list(jobs)
        self.store = store
        self.workers = workers
        self.progress = progress if progress is not None else NullProgress()
        #: Share warm-state snapshots across measure-phase jobs: all jobs
        #: agreeing on :meth:`JobSpec.warmup_fingerprint` warm up once; the
        #: rest fork from the stored snapshot (bit-identical results).
        self.warmup_snapshots = warmup_snapshots

    # ------------------------------------------------------------------ #
    def run(self) -> CampaignResult:
        """Execute every job, satisfying as many as possible from the store."""
        start = time.perf_counter()
        outcomes: List[Optional[JobOutcome]] = [None] * len(self.jobs)
        metrics_rows: List[Optional[JobMetrics]] = [None] * len(self.jobs)

        pending: List[Tuple[int, JobSpec]] = []
        for index, job in enumerate(self.jobs):
            cached = (self.store.get_result(job.result_fingerprint())
                      if self.store is not None else None)
            if cached is not None:
                outcomes[index] = JobOutcome(job, cached, SOURCE_STORE)
                metrics_rows[index] = _job_metrics(
                    job, SOURCE_STORE, pool.job_cost_metrics(0.0))
            else:
                pending.append((index, job))

        cached_jobs = len(self.jobs) - len(pending)
        self.progress.on_start(len(self.jobs), cached_jobs, self.workers)
        completed = 0
        for outcome in outcomes:
            if outcome is not None:
                completed += 1
                self.progress.on_job_done(outcome.job, outcome.source,
                                          completed, len(self.jobs))

        if pending:
            if self.workers == 1:
                completed = self._run_serial(pending, outcomes, metrics_rows,
                                             completed)
            else:
                completed = self._run_parallel(pending, outcomes, metrics_rows,
                                               completed)

        elapsed = time.perf_counter() - start
        job_metrics = [m for m in metrics_rows if m is not None]
        document = campaign_metrics(
            job_metrics, elapsed_seconds=elapsed, workers=self.workers,
            store_stats=self.store.stats() if self.store is not None else None,
            snapshot_cache=(snapshot_cache_info()
                            if self.warmup_snapshots else None),
        )
        result = CampaignResult(
            outcomes=[o for o in outcomes if o is not None],
            elapsed_seconds=elapsed,
            job_metrics=job_metrics,
            metrics=document,
            metrics_path=self._persist_metrics(document),
        )
        self.progress.on_finish(result.simulated_count, result.cached_count,
                                result.elapsed_seconds)
        return result

    def _persist_metrics(self, document: Dict[str, object]) -> Optional[Path]:
        """Write the fleet metrics file next to the artifacts (store runs only).

        The filename is content-addressed over the campaign's job
        fingerprints, so re-running the same sweep overwrites its own
        metrics document instead of accumulating duplicates, while distinct
        sweeps sharing a store keep distinct files.
        """
        if self.store is None:
            return None
        digest = fingerprint([job.result_fingerprint() for job in self.jobs])[:16]
        path = self.store.root / "metrics" / f"campaign-{digest}.json"
        return write_campaign_metrics(document, path)

    # ------------------------------------------------------------------ #
    def _run_serial(self, pending: List[Tuple[int, JobSpec]],
                    outcomes: List[Optional[JobOutcome]],
                    metrics_rows: List[Optional[JobMetrics]],
                    completed: int) -> int:
        for index, job in pending:
            started = time.perf_counter()
            result, simulated = pool.execute_job_sourced(
                job, self.store, warmup_snapshots=self.warmup_snapshots)
            cost = pool.job_cost_metrics(time.perf_counter() - started)
            source = SOURCE_SIMULATED if simulated else SOURCE_STORE
            outcomes[index] = JobOutcome(job, result, source)
            metrics_rows[index] = _job_metrics(job, source, cost)
            completed += 1
            self.progress.on_job_done(job, source, completed, len(self.jobs))
        return completed

    def _run_parallel(self, pending: List[Tuple[int, JobSpec]],
                      outcomes: List[Optional[JobOutcome]],
                      metrics_rows: List[Optional[JobMetrics]],
                      completed: int) -> int:
        shards = pool.shard_jobs(pending, workers=self.workers)
        store = self.store
        initargs = (
            str(store.root) if store is not None else None,
            store.max_entries if store is not None else None,
            store.max_bytes if store is not None else None,
            self.warmup_snapshots,
        )
        errors: List[str] = []
        with ProcessPoolExecutor(max_workers=self.workers,
                                 initializer=pool._init_worker,
                                 initargs=initargs) as executor:
            futures = {executor.submit(pool.run_shard, shard): shard
                       for shard in shards}
            for future in as_completed(futures):
                shard = futures[future]
                try:
                    shard_results = future.result()
                except Exception as exc:  # worker died or job raised
                    labels = ", ".join(job.label for _, job in shard)
                    errors.append(f"shard [{labels}]: {exc!r}")
                    continue
                for index, result, simulated, cost in shard_results:
                    job = self.jobs[index]
                    source = SOURCE_SIMULATED if simulated else SOURCE_STORE
                    outcomes[index] = JobOutcome(job, result, source)
                    metrics_rows[index] = _job_metrics(job, source, cost)
                    completed += 1
                    self.progress.on_job_done(job, source,
                                              completed, len(self.jobs))
        if errors:
            raise CampaignError("campaign jobs failed:\n" + "\n".join(errors))
        return completed


# --------------------------------------------------------------------- #
# Convenience entry points
# --------------------------------------------------------------------- #
def run_campaign(jobs: Sequence[JobSpec],
                 store: Optional[ArtifactStore] = None,
                 workers: int = 1,
                 progress: Optional[CampaignProgress] = None,
                 warmup_snapshots: bool = False) -> CampaignResult:
    """Build and run a :class:`Campaign` in one call."""
    return Campaign(jobs, store=store, workers=workers, progress=progress,
                    warmup_snapshots=warmup_snapshots).run()


def run_job(job: JobSpec, store: Optional[ArtifactStore] = None) -> SimulationResult:
    """Run a single job through the engine (store-aware, in-process)."""
    return pool.execute_job(job, store)


def verify_parity(jobs: Sequence[JobSpec], workers: int = 2) -> Dict[str, str]:
    """Prove parallel execution is bit-identical to serial execution.

    Runs ``jobs`` twice from scratch -- once serially in this process, once
    across ``workers`` processes, both without a store so nothing can be
    reused -- and compares full result fingerprints.  Returns the mapping of
    job label to fingerprint on success; raises :class:`ParityError` with the
    offending jobs otherwise.
    """
    serial = Campaign(jobs, store=None, workers=1).run()
    parallel = Campaign(jobs, store=None, workers=workers).run()
    mismatches = []
    digests: Dict[str, str] = {}
    for left, right in zip(serial.outcomes, parallel.outcomes):
        left_digest = result_fingerprint(left.result)
        right_digest = result_fingerprint(right.result)
        if left_digest != right_digest:
            mismatches.append(left.job.label)
        digests[left.job.label] = left_digest
    if mismatches:
        raise ParityError(
            "serial and parallel results diverged for: " + ", ".join(mismatches)
        )
    return digests
