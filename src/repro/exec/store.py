"""Content-addressed on-disk artifact store for campaign outputs.

The store persists the two expensive artifacts a campaign produces -- workload
traces and :class:`repro.sim.results.SimulationResult` bundles -- keyed by the
content fingerprints of :mod:`repro.exec.jobs`.  Because the key covers the
full workload spec, trace geometry, seed, system-configuration contents and
the package version (so artifacts from an older simulator are never reused
after a code change), a hit is *guaranteed* to be the byte-equivalent
artifact of re-running the simulation, so crashed or interrupted sweeps
resume for free and repeated invocations of the same campaign cost only
disk reads.

Formats: results are small and stay pickled; traces are stored as compact
structured ``.npy`` column files through the :mod:`repro.trace.io` codec and
read back **memory-mapped** as :class:`repro.trace.buffer.TraceBuffer`
bundles -- no per-access objects are ever serialised, so shipping a trace to
a worker costs page-cache reads instead of unpickling hundreds of thousands
of boxed records.

Concurrency model: many worker processes share one store directory.  Writers
stage into a temporary file and ``os.replace`` it into place, so readers never
observe partial artifacts and concurrent writers of the same key harmlessly
race to publish identical bytes.  Reads refresh the artifact's mtime so the
size-bounded eviction (:meth:`ArtifactStore.prune`) discards least-recently
*used* entries first.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.trace.buffer import TraceBuffer
from repro.trace.io import load_trace_buffer, save_trace

__all__ = [
    "SNAPSHOT_STORE_ENV_VAR",
    "STORE_ENV_VAR",
    "STORE_FORMAT_VERSION",
    "ArtifactStore",
    "default_snapshot_store",
    "default_store",
]

#: On-disk format version, embedded in every artifact; bump it whenever the
#: serialised payload layout changes, so mismatching artifacts are treated
#: as misses and rewritten rather than unpickled into garbage.  History:
#:
#: * **1** -- results and traces both pickled (traces as ``Access`` lists).
#: * **2** (current) -- traces moved to structured ``.npy`` record files
#:   (``repro.trace.buffer.TRACE_RECORD_DTYPE`` schema, loaded back
#:   memory-mapped); results remain pickled ``(version, payload)`` tuples.
#:
#: The format version guards the *container* layout; artifact *content*
#: freshness is separately guarded by the package version inside every
#: fingerprint (see :meth:`repro.exec.jobs.JobSpec.trace_fingerprint`).
STORE_FORMAT_VERSION = 2

#: Environment variable consulted by :func:`default_store`.
STORE_ENV_VAR = "REPRO_ARTIFACT_DIR"

#: Environment variable consulted by :func:`default_snapshot_store`; when
#: unset, warm-state snapshots share the ``$REPRO_ARTIFACT_DIR`` store.
SNAPSHOT_STORE_ENV_VAR = "REPRO_SNAPSHOT_DIR"

_KINDS = ("traces", "results", "snapshots")
#: On-disk suffix per artifact kind: columnar traces are ``.npy`` record
#: files (mmap-able, schema-checked by dtype); warm-state snapshots are
#: ``.npz`` containers (the :mod:`repro.sim.snapshot` codec, which carries
#: its own format version inside the container); everything else is pickled.
_SUFFIXES = {"traces": ".npy", "results": ".pkl", "snapshots": ".npz"}


def _fsync_path(path) -> None:
    """Flush a file (or directory) to stable storage; best-effort.

    Filesystems that reject directory fsync (or files that vanished under a
    racing pruner) degrade to the pre-fsync behaviour rather than failing
    the publish -- durability hygiene must never break a working store.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync-less filesystem
        pass
    finally:
        os.close(fd)


class ArtifactStore:
    """A directory of content-addressed pickled artifacts with LRU pruning."""

    def __init__(self, root, max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        self.root = Path(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        for kind in _KINDS:
            (self.root / kind).mkdir(parents=True, exist_ok=True)
        self.counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "stores": 0, "puts": 0, "evictions": 0,
            "corrupt": 0, "prune_bytes_reclaimed": 0, "touch_failures": 0,
        }
        # Approximate occupancy, maintained incrementally so bounded stores
        # do not stat-scan the whole directory on every put; prune() resyncs
        # the numbers with the filesystem (other processes write here too).
        self._bounded = max_entries is not None or max_bytes is not None
        if self._bounded:
            entries = self._entries()
            self._approx_entries = len(entries)
            self._approx_bytes = sum(size for _, size, _ in entries)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    def _path(self, kind: str, digest: str) -> Path:
        if kind not in _KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        return self.root / kind / f"{digest}{_SUFFIXES[kind]}"

    # ------------------------------------------------------------------ #
    # Generic get/put
    # ------------------------------------------------------------------ #
    def _get(self, kind: str, digest: str):
        path = self._path(kind, digest)
        try:
            with path.open("rb") as handle:
                version, payload = pickle.load(handle)
                size = os.fstat(handle.fileno()).st_size
        except FileNotFoundError:
            self.counters["misses"] += 1
            return None
        except (pickle.UnpicklingError, EOFError, ValueError, AttributeError,
                ImportError, IndexError, TypeError):
            # A torn or stale-format artifact is indistinguishable from a
            # miss; drop it so the rewritten artifact replaces it.
            self.counters["corrupt"] += 1
            self.counters["misses"] += 1
            self._remove(path)
            return None
        if version != STORE_FORMAT_VERSION:
            self.counters["corrupt"] += 1
            self.counters["misses"] += 1
            self._remove(path)
            return None
        self.counters["hits"] += 1
        self._touch(path, size)
        return payload

    def _put(self, kind: str, digest: str, payload) -> Path:
        blob = pickle.dumps((STORE_FORMAT_VERSION, payload),
                            protocol=pickle.HIGHEST_PROTOCOL)
        return self._publish(self._path(kind, digest),
                             lambda staging: staging.write_bytes(blob))

    def _publish(self, path: Path, writer) -> Path:
        """Atomically publish an artifact: stage, write, fsync, ``os.replace``.

        ``writer`` receives the staging path (same directory and suffix as
        the final artifact, so codecs that dispatch on extension work) and
        must leave the complete payload there.  The staging file is fsynced
        before the rename and the containing directory after it, closing the
        crash window in which a published name could point at unflushed data
        (applies uniformly to every kind -- traces, results and snapshots).
        """
        handle = tempfile.NamedTemporaryFile(
            mode="wb", dir=str(path.parent), prefix=f".{path.stem}.",
            suffix=path.suffix, delete=False
        )
        staging = Path(handle.name)
        handle.close()
        try:
            writer(staging)
            _fsync_path(staging)
            try:
                replaced_size = path.stat().st_size
            except OSError:
                replaced_size = None
            written_size = os.path.getsize(staging)
            os.replace(staging, path)
            _fsync_path(path.parent)
        except BaseException:
            self._remove(staging)
            raise
        # "stores" predates "puts"; both count successful publishes so older
        # consumers keep working while the campaign metrics file uses "puts".
        self.counters["stores"] += 1
        self.counters["puts"] += 1
        if self._bounded:
            # Approximate on purpose: concurrent writers can skew these
            # numbers slightly, and prune() resyncs them with the filesystem.
            if replaced_size is None:
                self._approx_entries += 1
            else:
                self._approx_bytes -= replaced_size
            self._approx_bytes += written_size
            if ((self.max_entries is not None
                 and self._approx_entries > self.max_entries)
                    or (self.max_bytes is not None
                        and self._approx_bytes > self.max_bytes)):
                self.prune()
        return path

    def _touch(self, path: Path, size: int = 0) -> None:
        """Refresh an artifact's mtime after a hit (LRU recency signal).

        A touch that fails because the file vanished means a racing pruner
        or writer removed the artifact between our read and now; the entry
        this store handle still counts no longer exists, so the approximate
        occupancy is decremented (by ``size`` bytes and one entry) to stay
        consistent -- otherwise repeated races would inflate
        ``_approx_bytes`` until every put triggered a full prune rescan.
        Other failures (e.g. EACCES on an artifact owned by another worker)
        leave the counters alone: the artifact still exists.
        """
        try:
            os.utime(path, None)
        except FileNotFoundError:
            self.counters["touch_failures"] += 1
            if self._bounded:
                self._approx_entries = max(self._approx_entries - 1, 0)
                self._approx_bytes = max(self._approx_bytes - size, 0)
        except OSError:
            self.counters["touch_failures"] += 1

    @staticmethod
    def _remove(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing writer/eviction
            pass

    # ------------------------------------------------------------------ #
    # Typed accessors
    # ------------------------------------------------------------------ #
    def get_trace(self, digest: str) -> Optional[TraceBuffer]:
        """Return the stored trace for ``digest`` or ``None``.

        Hits come back as memory-mapped :class:`TraceBuffer` columns, so a
        worker that replays a shared trace reads it zero-copy from the page
        cache rather than unpickling per-access objects.
        """
        path = self._path("traces", digest)
        try:
            size = path.stat().st_size
            buffer = load_trace_buffer(path, mmap=True)
        except FileNotFoundError:
            self.counters["misses"] += 1
            return None
        except (ValueError, OSError, EOFError):
            # Torn writes and stale/foreign schemas both fail the codec's
            # dtype check; either way the artifact is useless -- drop it so
            # the rewritten one replaces it.
            self.counters["corrupt"] += 1
            self.counters["misses"] += 1
            self._remove(path)
            return None
        self.counters["hits"] += 1
        self._touch(path, size)
        return buffer

    def put_trace(self, digest: str, trace) -> Path:
        """Persist a trace (a :class:`TraceBuffer` or ``Access`` iterable)."""
        buffer = TraceBuffer.coerce(trace)
        return self._publish(self._path("traces", digest),
                             lambda staging: save_trace(buffer, staging))

    def get_result(self, digest: str):
        """Return the stored :class:`SimulationResult` for ``digest`` or ``None``."""
        return self._get("results", digest)

    def put_result(self, digest: str, result) -> Path:
        """Persist one simulation result."""
        return self._put("results", digest, result)

    def get_snapshot(self, digest: str):
        """Return the stored warm-state snapshot for ``digest`` or ``None``.

        Corrupt containers and unsupported snapshot format versions are
        treated like any other torn artifact: counted, removed, reported as
        a miss so the caller re-captures.  Hits and misses are additionally
        recorded in the process-wide snapshot telemetry counters.
        """
        # Imported lazily: repro.sim must stay importable without the exec
        # layer, so the dependency runs strictly downward and only on use.
        from repro.sim.snapshot import load_snapshot
        from repro.telemetry.metrics import (
            record_snapshot_hit,
            record_snapshot_miss,
        )

        path = self._path("snapshots", digest)
        try:
            size = path.stat().st_size
            snapshot = load_snapshot(path)
        except FileNotFoundError:
            self.counters["misses"] += 1
            record_snapshot_miss()
            return None
        except (ValueError, OSError, EOFError, KeyError):
            self.counters["corrupt"] += 1
            self.counters["misses"] += 1
            record_snapshot_miss()
            self._remove(path)
            return None
        self.counters["hits"] += 1
        record_snapshot_hit()
        self._touch(path, size)
        return snapshot

    def put_snapshot(self, digest: str, snapshot) -> Path:
        """Persist one :class:`repro.sim.snapshot.SystemSnapshot`."""
        from repro.sim.snapshot import save_snapshot

        return self._publish(self._path("snapshots", digest),
                             lambda staging: save_snapshot(snapshot, staging))

    # ------------------------------------------------------------------ #
    # Introspection and eviction
    # ------------------------------------------------------------------ #
    def _entries(self) -> List[Tuple[int, int, Path]]:
        """(mtime_ns, size, path) for every artifact, oldest first.

        Recency is ordered on ``st_mtime_ns``: the float ``st_mtime`` loses
        sub-second precision (and some filesystems only store whole
        seconds), which made the LRU order among artifacts touched within
        the same second nondeterministic.  The path string breaks exact
        timestamp ties so eviction order is total and reproducible.
        """
        entries = []
        for kind in _KINDS:
            # Every suffix is scanned in every kind so stale artifacts from
            # an older layout (e.g. pickled traces) still age out via LRU.
            for pattern in ("*.pkl", "*.npy", "*.npz"):
                for path in (self.root / kind).glob(pattern):
                    if path.name.startswith("."):
                        # A dot-prefixed name is a concurrent writer's staging
                        # file; counting or pruning it would tear an in-flight
                        # publish (pathlib's glob matches hidden files).
                        continue
                    try:
                        stat = path.stat()
                    except OSError:  # pragma: no cover - racing eviction
                        continue
                    entries.append((stat.st_mtime_ns, stat.st_size, path))
        entries.sort(key=lambda item: (item[0], str(item[2])))
        return entries

    def entry_count(self) -> int:
        """Number of artifacts currently stored."""
        return len(self._entries())

    def total_bytes(self) -> int:
        """Total artifact payload size on disk."""
        return sum(size for _, size, _ in self._entries())

    def prune(self) -> int:
        """Evict least-recently-used artifacts beyond the configured bounds."""
        if not self._bounded:
            return 0
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        evicted = 0
        reclaimed = 0
        while entries and (
            (self.max_entries is not None and len(entries) > self.max_entries)
            or (self.max_bytes is not None and total > self.max_bytes)
        ):
            _, size, path = entries.pop(0)
            self._remove(path)
            total -= size
            evicted += 1
            reclaimed += size
        self.counters["evictions"] += evicted
        self.counters["prune_bytes_reclaimed"] += reclaimed
        self._approx_entries = len(entries)
        self._approx_bytes = total
        return evicted

    def clear(self) -> None:
        """Delete every stored artifact (the directory itself is kept)."""
        for _, _, path in self._entries():
            self._remove(path)
        if self._bounded:
            self._approx_entries = 0
            self._approx_bytes = 0

    def stats(self) -> Dict[str, object]:
        """Hit/miss/store/eviction counters plus occupancy, total and per kind."""
        snapshot: Dict[str, object] = dict(self.counters)
        entries = self._entries()
        snapshot["entries"] = len(entries)
        snapshot["bytes"] = sum(size for _, size, _ in entries)
        kinds: Dict[str, Dict[str, int]] = {
            kind: {"entries": 0, "bytes": 0} for kind in _KINDS
        }
        for _, size, path in entries:
            bucket = kinds.get(path.parent.name)
            if bucket is not None:
                bucket["entries"] += 1
                bucket["bytes"] += size
        snapshot["kinds"] = kinds
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r}, entries={self.entry_count()})"


#: Memoized stores handed out by :func:`default_store`, keyed by root path so
#: the hot analysis path (one call per simulation) neither re-runs the mkdir
#: handshake nor discards hit/miss counters on every lookup.
_DEFAULT_STORES: Dict[str, ArtifactStore] = {}


def default_store() -> Optional[ArtifactStore]:
    """Store rooted at ``$REPRO_ARTIFACT_DIR``, or ``None`` when unset.

    This is how the analysis layer, the benchmark harness and the CLI opt
    into persistence without plumbing a store handle through every call.
    The environment is re-read on every call (so tests and long-lived
    sessions can repoint it), but store handles are memoized per root.
    """
    root = os.environ.get(STORE_ENV_VAR, "").strip()
    if not root:
        return None
    store = _DEFAULT_STORES.get(root)
    if store is None or not store.root.is_dir():
        # Rebuild the handle when the directory vanished underneath us (its
        # constructor recreates the layout); one stat per call otherwise.
        store = ArtifactStore(root)
        _DEFAULT_STORES[root] = store
    return store


def default_snapshot_store() -> Optional[ArtifactStore]:
    """Store for warm-state snapshots: ``$REPRO_SNAPSHOT_DIR``, else the
    :func:`default_store`.

    Snapshots invalidate on every package release (their fingerprints carry
    the version) and can be large, so fleets often want them on scratch
    space separate from the long-lived trace/result store; pointing
    ``REPRO_SNAPSHOT_DIR`` elsewhere does that without touching
    ``REPRO_ARTIFACT_DIR``.  Handles are memoized per root like
    :func:`default_store`.
    """
    root = os.environ.get(SNAPSHOT_STORE_ENV_VAR, "").strip()
    if not root:
        return default_store()
    store = _DEFAULT_STORES.get(root)
    if store is None or not store.root.is_dir():
        store = ArtifactStore(root)
        _DEFAULT_STORES[root] = store
    return store
