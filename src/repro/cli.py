"""Command-line interface.

Installed as ``repro`` (with ``repro-bump`` kept as an alias, and reachable
as ``python -m repro``), the CLI exposes the library's main entry points
without writing any Python:

=====================  =====================================================
Command                Purpose
=====================  =====================================================
``workloads``          list the available synthetic server workloads
``characterize``       static trace statistics for one workload
``run``                simulate one workload under one system configuration
``compare``            simulate one workload under several configurations
``campaign``           run a (workload x system x seed) grid across worker
                       processes, resumable via the on-disk artifact store
``scenario``           list/describe/run the multi-tenant scenario catalog
                       (``repro scenario list|describe|run``); ``scenario
                       run --closed-loop`` drives the run through the
                       feedback controller of
                       :mod:`repro.scenario.closed_loop`
``experiment``         regenerate one paper figure/table and print its rows
``scaling``            print the Section VI storage-scaling tables
``trace``              trace files on disk: ``trace generate`` writes a
                       workload trace, ``trace ingest`` replays a stored
                       trace file (e.g. an ``LLCTraceRecorder`` export)
                       through the simulator
``snapshot``           create/inspect/list warm-state snapshots
                       (``repro snapshot create|info|list``); ``run``,
                       ``compare`` and ``scenario run`` reuse them via
                       ``--snapshot`` / ``--warmup-snapshot``
``report``             render telemetry artifacts: run timelines and span
                       tables from JSONL event logs, campaign metrics files,
                       and the in-process trace/snapshot-cache counters
``fuzz``               scenario fuzzer + differential verification engine:
                       generate random valid scenario/config specs and prove
                       engine-cube / chunk-size / telemetry / snapshot
                       bit-identity on each (``--budget``, ``--seed``,
                       ``--corpus``); failures are shrunk to minimal
                       replayable reproducers
=====================  =====================================================

Every command prints plain text to stdout; exit status is zero on success,
two on argument errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro import __version__
from repro.analysis import experiments
from repro.analysis.reporting import format_table
from repro.analysis.scalability import storage_scaling_table, virtualization_storage_table
from repro.exec.campaign import run_campaign, verify_parity
from repro.exec.jobs import JobGrid
from repro.exec.progress import ConsoleProgress, NullProgress
from repro.exec.store import ArtifactStore, default_snapshot_store, default_store
from repro.scenario.catalog import get_scenario, scenario_names
from repro.scenario.runner import run_scenario
from repro.sim.config import extended_configs, named_configs
from repro.sim.interp import INTERPS
from repro.sim.runner import build_trace, run_trace, trace_cache_info
from repro.sim.snapshot import (
    capture_warmup,
    load_snapshot,
    save_snapshot,
    snapshot_fingerprint,
)
from repro.telemetry import MODES as TELEMETRY_MODES
from repro.telemetry import (
    read_campaign_metrics,
    read_events_jsonl,
    resolve_telemetry,
    timeline_from_events,
)
from repro.telemetry.report import (
    render_campaign,
    render_spans,
    render_timeline,
    summarize_events,
)
from repro.trace.io import save_trace
from repro.trace.stats import characterize_trace
from repro.workloads.catalog import display_name, get_workload, workload_names
from repro.workloads.generator import generate_trace_buffer

#: Experiment functions reachable through ``repro-bump experiment <name>``.
EXPERIMENTS: Dict[str, Callable] = {
    "figure1": experiments.figure1_energy_breakdown,
    "figure2": experiments.figure2_row_buffer_hit,
    "figure3": experiments.figure3_traffic_breakdown,
    "figure5": experiments.figure5_region_density,
    "figure8": experiments.figure8_prediction_accuracy,
    "figure9": experiments.figure9_energy_per_access,
    "figure10": experiments.figure10_performance,
    "figure11": experiments.figure11_design_space,
    "figure12": experiments.figure12_onchip_overheads,
    "figure13": experiments.figure13_summary,
    "table1": experiments.table1_late_writes,
    "table4": experiments.table4_bump_row_hits,
}


def _all_config_names() -> List[str]:
    return sorted(set(named_configs()) | set(extended_configs()))


def _resolve_config(name: str):
    try:
        return named_configs([name])[name]
    except KeyError:
        known = ", ".join(_all_config_names())
        raise SystemExit(f"unknown system {name!r}; known systems: {known}")


def _print(text: str) -> None:
    sys.stdout.write(text + "\n")


# --------------------------------------------------------------------- #
# Sub-command implementations
# --------------------------------------------------------------------- #
def cmd_workloads(args: argparse.Namespace) -> int:
    rows = [[name, display_name(name)] for name in workload_names()]
    _print(format_table(rows, headers=["name", "description"]))
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    trace = build_trace(args.workload, args.accesses, num_cores=args.cores,
                        seed=args.seed)
    stats = characterize_trace(trace)
    rows = [[key, f"{value:.4g}"] for key, value in stats.summary().items()]
    _print(format_table(rows, headers=["metric", "value"]))
    histogram = stats.region_density_histogram()
    rows = [[bucket, f"{share:.1%}"] for bucket, share in histogram.items()]
    _print(format_table(rows, headers=["region density (static)", "share of regions"]))
    return 0


def _result_rows(result) -> List[List[str]]:
    summary = result.summary()
    return [[key, f"{value:.4g}"] for key, value in summary.items()]


def _setup_telemetry(args: argparse.Namespace):
    """Resolve the run/scenario-run telemetry flags to a recorder (or None).

    ``--events`` without an explicit ``--telemetry`` implies ``full`` --
    asking for an event log is asking for telemetry.
    """
    mode = getattr(args, "telemetry", None)
    if getattr(args, "events", None) and mode is None:
        mode = "full"
    if mode is None:
        return None  # fall back to REPRO_TELEMETRY inside the runner
    return resolve_telemetry(mode)


def _finish_telemetry(recorder, args: argparse.Namespace) -> None:
    """Print the recorder summary and write the JSONL log if requested."""
    if recorder is None:
        return
    samples = len(recorder.timeline) if recorder.timeline is not None else 0
    events = len(recorder.tracer.events) if recorder.tracer is not None else 0
    _print(f"telemetry[{recorder.mode}]: {samples} sample(s), "
           f"{events} span/mark event(s)")
    if getattr(args, "events", None):
        path = recorder.write_jsonl(args.events)
        _print(f"wrote telemetry events to {path}")


def _warmup_snapshot_key(args: argparse.Namespace, config) -> Optional[str]:
    """Fingerprint of the warm state a ``run``/``compare`` invocation needs."""
    if getattr(args, "warmup_snapshot", None) is None:
        return None
    return snapshot_fingerprint(
        get_workload(args.workload), config,
        int(args.accesses * args.warmup),
        num_cores=args.cores, seed=args.seed,
        dram_engine=getattr(args, "dram_engine", None))


def cmd_run(args: argparse.Namespace) -> int:
    config = _resolve_config(args.system)
    trace = build_trace(args.workload, args.accesses, num_cores=args.cores,
                        seed=args.seed)
    recorder = _setup_telemetry(args)
    try:
        result = run_trace(trace, config, workload_name=args.workload,
                           warmup_fraction=args.warmup,
                           dram_engine=args.dram_engine,
                           interp=args.interp,
                           telemetry=recorder,
                           snapshot=args.snapshot or None,
                           warmup_snapshot=args.warmup_snapshot,
                           snapshot_key=_warmup_snapshot_key(args, config))
    except (ValueError, OSError) as exc:
        raise SystemExit(str(exc))
    _print(f"{display_name(args.workload)} under {config.name}")
    _print(format_table(_result_rows(result), headers=["metric", "value"]))
    _finish_telemetry(recorder, args)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    systems = [name.strip() for name in args.systems.split(",") if name.strip()]
    if not systems:
        raise SystemExit("no systems requested")
    configs = [_resolve_config(name) for name in systems]
    trace = build_trace(args.workload, args.accesses, num_cores=args.cores,
                        seed=args.seed)
    metrics = ["row_buffer_hit_ratio", "read_coverage", "write_coverage",
               "energy_per_access_nj", "throughput_ipc"]
    rows = []
    for config in configs:
        try:
            result = run_trace(trace, config, workload_name=args.workload,
                               warmup_fraction=args.warmup,
                               dram_engine=args.dram_engine,
                               interp=args.interp,
                               warmup_snapshot=args.warmup_snapshot,
                               snapshot_key=_warmup_snapshot_key(args, config))
        except (ValueError, OSError) as exc:
            raise SystemExit(str(exc))
        summary = result.summary()
        rows.append([config.name] + [f"{summary[metric]:.4g}" for metric in metrics])
    _print(f"{display_name(args.workload)} ({args.accesses} accesses)")
    _print(format_table(rows, headers=["system"] + metrics))
    return 0


def _parse_workload_list(raw: str) -> List[str]:
    if not raw.strip() or raw.strip().lower() == "all":
        return workload_names()
    requested = [name.strip() for name in raw.split(",") if name.strip()]
    known = set(workload_names())
    unknown = [name for name in requested if name not in known]
    if unknown:
        raise SystemExit(f"unknown workloads: {unknown}; known: {sorted(known)}")
    return requested


def cmd_campaign(args: argparse.Namespace) -> int:
    workloads = _parse_workload_list(args.workloads)
    systems = [name.strip() for name in args.systems.split(",") if name.strip()]
    if not systems:
        raise SystemExit("no systems requested")
    configs = [_resolve_config(name) for name in systems]
    try:
        seeds = [int(seed) for seed in args.seeds.split(",") if seed.strip()]
    except ValueError:
        raise SystemExit(f"seeds must be integers: {args.seeds!r}")
    if not seeds:
        raise SystemExit("no seeds requested")
    if args.workers < 1:
        raise SystemExit("--workers must be at least 1")
    if args.accesses < 1:
        raise SystemExit("--accesses must be positive")
    if args.cores < 1:
        raise SystemExit("--cores must be positive")
    if not 0.0 <= args.warmup < 1.0:
        raise SystemExit("--warmup must be in [0, 1)")

    grid = JobGrid(workloads=workloads, configs=configs, seeds=seeds,
                   num_accesses=args.accesses, num_cores=args.cores,
                   warmup_fraction=args.warmup)
    jobs = grid.expand()
    try:
        store = ArtifactStore(args.store) if args.store else default_store()
    except OSError as exc:
        raise SystemExit(f"cannot open artifact store at {args.store!r}: {exc}")

    if args.verify_parity:
        # Parity is a code-path property, not a fidelity one: run the sample
        # at a reduced trace length so the guard stays cheap even for
        # paper-sized campaigns (the sample simulates twice and is not
        # persisted, so nothing here is reusable by the campaign proper).
        sample_accesses = min(args.accesses, 10_000)
        sample = [dataclasses.replace(job, num_accesses=sample_accesses)
                  for job in jobs[:2]]
        verify_parity(sample, workers=max(args.workers, 2))
        _print(f"parity verified on {len(sample)} job(s) at {sample_accesses} "
               "accesses: parallel results are identical to serial")

    progress = NullProgress() if args.quiet else ConsoleProgress()
    if args.warmup_snapshots and store is None:
        raise SystemExit("--warmup-snapshots needs an artifact store: pass "
                         "--store or set REPRO_ARTIFACT_DIR")
    outcome = run_campaign(jobs, store=store, workers=args.workers,
                           progress=progress,
                           warmup_snapshots=args.warmup_snapshots)

    metrics = ["row_buffer_hit_ratio", "read_coverage", "write_coverage",
               "energy_per_access_nj", "throughput_ipc"]
    rows = []
    for job_outcome in outcome.outcomes:
        job = job_outcome.job
        summary = job_outcome.result.summary()
        rows.append([job.workload.name, job.config.name, str(job.seed),
                     job_outcome.source]
                    + [f"{summary[metric]:.4g}" for metric in metrics])
    _print(format_table(rows, headers=["workload", "system", "seed", "source"]
                        + metrics))
    _print(
        f"{len(outcome)} jobs: {outcome.simulated_count} simulated, "
        f"{outcome.cached_count} from store, {outcome.elapsed_seconds:.1f}s"
        + (f" (store: {store.root})" if store is not None else "")
    )
    if outcome.metrics_path is not None:
        _print(f"campaign metrics: {outcome.metrics_path} "
               f"(render with: repro report {outcome.metrics_path})")
    return 0


def cmd_scenario_list(args: argparse.Namespace) -> int:
    rows = []
    for name in scenario_names():
        scenario = get_scenario(name)
        rows.append([name, str(len(scenario.phases)),
                     str(scenario.total_accesses),
                     ",".join(scenario.tenant_names)])
    _print(format_table(rows, headers=["name", "phases", "accesses", "tenants"]))
    return 0


def _resolve_scenario(name: str, scale: float):
    try:
        return get_scenario(name, scale=scale)
    except KeyError:
        known = ", ".join(scenario_names())
        raise SystemExit(f"unknown scenario {name!r}; known scenarios: {known}")
    except ValueError as exc:
        raise SystemExit(str(exc))


def cmd_scenario_describe(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args.name, args.scale)
    _print(f"{scenario.name}: {scenario.description}")
    _print(f"{scenario.num_cores} cores, {scenario.total_accesses} accesses, "
           f"{len(scenario.phases)} phase(s)")
    _print(format_table(scenario.describe(),
                        headers=["phase", "accesses", "intensity", "tenants",
                                 "bursts", "idle cores"]))
    return 0


def _sample_rows(rows: List[List[str]], limit: int = 12) -> List[List[str]]:
    """Evenly thin a long table, always keeping the first and last row."""
    if len(rows) <= limit:
        return rows
    step = (len(rows) - 1) / (limit - 1)
    picked = sorted({round(index * step) for index in range(limit)})
    return [rows[index] for index in picked]


def cmd_scenario_run(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args.name, args.scale)
    config = _resolve_config(args.system)
    if args.chunk_size < 1:
        raise SystemExit("--chunk-size must be positive")
    if not 0.0 <= args.warmup < 1.0:
        raise SystemExit("--warmup must be in [0, 1)")
    recorder = _setup_telemetry(args)
    source = None
    if args.closed_loop:
        from repro.scenario.closed_loop import ClosedLoopSource, ClosedLoopSpec

        try:
            loop_spec = ClosedLoopSpec(target_latency=args.target_latency,
                                       interval=args.control_interval,
                                       gain=args.loop_gain,
                                       min_intensity=args.min_intensity,
                                       max_intensity=args.max_intensity)
        except ValueError as exc:
            raise SystemExit(str(exc))
        source = ClosedLoopSource(scenario, loop_spec, seed=args.seed,
                                  chunk_size=args.chunk_size)
    try:
        result = run_scenario(scenario, config, seed=args.seed,
                              warmup_fraction=args.warmup,
                              chunk_size=args.chunk_size,
                              cache_engine=args.engine,
                              dram_engine=args.dram_engine,
                              interp=args.interp,
                              telemetry=recorder,
                              snapshot=args.snapshot or None,
                              warmup_snapshot=args.warmup_snapshot,
                              closed_loop=source)
    except (ValueError, OSError) as exc:
        raise SystemExit(str(exc))
    _print(f"{scenario.name} ({scenario.total_accesses} accesses) "
           f"under {config.name}"
           + (" [closed-loop]" if source is not None else ""))
    _print(format_table(_result_rows(result), headers=["metric", "value"]))
    if source is not None:
        _print(f"closed loop: target {source.spec.target_latency:.4g} cycles, "
               f"interval {source.spec.interval}, {source.updates} update(s), "
               f"final intensity {source.current_intensity:.4g}")
        rows = [[str(position), f"{intensity:.4g}",
                 "-" if observed is None else f"{observed:.4g}"]
                for position, intensity, observed in source.history]
        _print(format_table(_sample_rows(rows),
                            headers=["position", "intensity",
                                     "observed latency"]))
    _finish_telemetry(recorder, args)
    return 0


def _render_experiment(name: str, table) -> str:
    if name == "figure11":
        rows = [[f"{region}B", f"{threshold:.0%}", f"{value:.3f}"]
                for (region, threshold), value in sorted(table.items())]
        return format_table(rows, headers=["region size", "threshold", "energy improvement"])
    if isinstance(table, dict) and table and not isinstance(next(iter(table.values())), dict):
        rows = [[key, f"{value:.4g}"] for key, value in table.items()]
        return format_table(rows, headers=["workload", "value"])
    # Nested mappings: one row per outer key, one column per inner key.
    rows = []
    columns: List[str] = []
    for outer, inner in table.items():
        flattened = {}
        for key, value in inner.items():
            if isinstance(value, dict):
                for subkey, subvalue in value.items():
                    flattened[f"{key}.{subkey}"] = subvalue
            else:
                flattened[key] = value
        if not columns:
            columns = list(flattened)
        rows.append([outer] + [f"{flattened.get(column, 0.0):.4g}" for column in columns])
    return format_table(rows, headers=["workload/system"] + columns)


def cmd_experiment(args: argparse.Namespace) -> int:
    function = EXPERIMENTS.get(args.name)
    if function is None:
        known = ", ".join(sorted(EXPERIMENTS))
        raise SystemExit(f"unknown experiment {args.name!r}; known experiments: {known}")
    workloads = args.workloads.split(",") if args.workloads else None
    table = function(workloads=workloads, num_accesses=args.accesses)
    _print(f"Experiment {args.name}")
    _print(_render_experiment(args.name, table))
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    rows = [
        [str(entry.cores), f"{entry.llc_mib:.0f}", f"{entry.rdtt_kib:.1f}",
         f"{entry.bht_kib:.1f}", f"{entry.drt_kib:.1f}", f"{entry.total_kib:.1f}",
         f"{entry.per_core_kib:.2f}"]
        for entry in storage_scaling_table()
    ]
    _print("BuMP storage versus CMP size (Section VI)")
    _print(format_table(rows, headers=["cores", "LLC MiB", "RDTT KiB", "BHT KiB",
                                       "DRT KiB", "total KiB", "KiB/core"]))
    rows = [
        [str(entry.workloads_sharing), f"{entry.bht_kib:.1f}",
         f"{entry.total_kib:.1f}", f"{entry.per_core_kib:.2f}"]
        for entry in virtualization_storage_table()
    ]
    _print("BuMP storage versus consolidated workloads (virtualization)")
    _print(format_table(rows, headers=["workloads", "BHT KiB", "total KiB", "KiB/core"]))
    return 0


def cmd_trace_generate(args: argparse.Namespace) -> int:
    if args.chunk_size < 1:
        raise SystemExit("--chunk-size must be positive")
    trace = generate_trace_buffer(get_workload(args.workload), args.accesses,
                                  num_cores=args.cores, seed=args.seed,
                                  chunk_size=args.chunk_size)
    path = save_trace(trace, args.output)
    rows = [
        ["accesses", f"{len(trace)}"],
        ["store_fraction", f"{trace.store_fraction:.4g}"],
        ["instructions", f"{trace.total_instructions}"],
        ["columnar_bytes", f"{trace.nbytes}"],
        ["file_bytes", f"{path.stat().st_size}"],
        ["format", path.suffix.lstrip(".")],
    ]
    _print(f"wrote {len(trace)} accesses to {path}")
    _print(format_table(rows, headers=["metric", "value"]))
    return 0


def cmd_trace_ingest(args: argparse.Namespace) -> int:
    from repro.trace.source import IngestSource

    config = _resolve_config(args.system)
    if args.chunk_size < 1:
        raise SystemExit("--chunk-size must be positive")
    if not 0.0 <= args.warmup < 1.0:
        raise SystemExit("--warmup must be in [0, 1)")
    try:
        source = IngestSource(args.path, chunk_size=args.chunk_size,
                              mmap=args.mmap)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"cannot read trace {args.path!r}: {exc}")
    try:
        result = run_trace(source, config,
                           workload_name=f"ingest:{args.path}",
                           warmup_fraction=args.warmup,
                           num_accesses=source.total_accesses,
                           dram_engine=args.dram_engine,
                           interp=args.interp)
    except (ValueError, OSError) as exc:
        raise SystemExit(str(exc))
    _print(f"replayed {source.total_accesses} accesses from {args.path} "
           f"under {config.name}")
    _print(format_table(_result_rows(result), headers=["metric", "value"]))
    return 0


def _snapshot_store_or_exit(root: str) -> ArtifactStore:
    """Open the snapshot store named on the command line (or the default)."""
    if root:
        try:
            return ArtifactStore(root)
        except OSError as exc:
            raise SystemExit(f"cannot open snapshot store at {root!r}: {exc}")
    store = default_snapshot_store()
    if store is None:
        raise SystemExit("no snapshot store configured: pass --store or set "
                         "REPRO_SNAPSHOT_DIR / REPRO_ARTIFACT_DIR")
    return store


def cmd_snapshot_create(args: argparse.Namespace) -> int:
    from repro.sim.system import ServerSystem

    config = _resolve_config(args.system)
    if not 0.0 < args.warmup < 1.0:
        raise SystemExit("--warmup must be in (0, 1)")
    warmup = int(args.accesses * args.warmup)
    if warmup < 1:
        raise SystemExit("warmup interval is empty; raise --accesses or --warmup")
    spec = get_workload(args.workload)
    trace = build_trace(args.workload, args.accesses, num_cores=args.cores,
                        seed=args.seed)
    system = ServerSystem(config, workload_name=args.workload,
                          cache_engine=args.engine,
                          dram_engine=args.dram_engine)
    try:
        snapshot, _, _ = capture_warmup(system, trace, warmup)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.output:
        save_snapshot(snapshot, args.output)
        _print(f"wrote snapshot to {args.output}")
    else:
        store = _snapshot_store_or_exit(args.store)
        digest = snapshot_fingerprint(spec, config, warmup,
                                      num_cores=args.cores, seed=args.seed,
                                      cache_engine=args.engine,
                                      dram_engine=args.dram_engine)
        store.put_snapshot(digest, snapshot)
        _print(f"stored snapshot {digest} in {store.root}")
    rows = [[key, str(value)] for key, value in snapshot.describe().items()]
    _print(format_table(rows, headers=["field", "value"]))
    return 0


def cmd_snapshot_info(args: argparse.Namespace) -> int:
    try:
        snapshot = load_snapshot(args.path)
    except (OSError, ValueError, KeyError) as exc:
        raise SystemExit(f"cannot read snapshot {args.path!r}: {exc}")
    rows = [[key, str(value)] for key, value in snapshot.describe().items()]
    _print(format_table(rows, headers=["field", "value"]))
    return 0


def cmd_snapshot_list(args: argparse.Namespace) -> int:
    store = _snapshot_store_or_exit(args.store)
    paths = sorted((store.root / "snapshots").glob("*.npz"))
    if not paths:
        _print(f"no snapshots in {store.root}")
        return 0
    rows = []
    for path in paths:
        try:
            snapshot = load_snapshot(path)
        except (OSError, ValueError, KeyError):
            rows.append([path.stem, "(unreadable)", "", "", "", ""])
            continue
        rows.append([path.stem, snapshot.workload_name,
                     snapshot.cache_engine, snapshot.dram_engine,
                     str(snapshot.processed), str(snapshot.nbytes)])
    _print(format_table(rows, headers=["digest", "workload", "cache", "dram",
                                       "warmed accesses", "bytes"]))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    import json
    import time
    from pathlib import Path

    from repro.fuzz import (
        corpus_paths,
        generate_spec,
        load_spec,
        run_oracle,
        save_spec,
        shrink,
        spec_fingerprint,
    )

    if args.budget < 0:
        raise SystemExit("--budget must be non-negative")
    if args.shrink_attempts < 0:
        raise SystemExit("--shrink-attempts must be non-negative")
    deadline = None
    if args.time_budget:
        if args.time_budget <= 0:
            raise SystemExit("--time-budget must be positive (seconds)")
        deadline = time.monotonic() + args.time_budget

    artifacts = Path(args.artifacts)
    started = time.monotonic()
    examined = corpus_examined = 0
    truncated = False
    failures: List[Dict[str, object]] = []

    def _examine(spec, origin: str) -> None:
        """Oracle one spec; on failure shrink it and write the reproducer."""
        label = spec.get("label", "fuzz")
        try:
            report = run_oracle(spec)
        except Exception as exc:  # a crash on a valid spec is a finding
            artifact = save_spec(
                spec, artifacts / f"{label}-crash.json")
            failures.append({
                "label": label, "origin": origin, "kind": "crash",
                "error": f"{type(exc).__name__}: {exc}",
                "artifact": str(artifact),
            })
            _print(f"CRASH {label} [{origin}]: {type(exc).__name__}: {exc} "
                   f"-> {artifact}")
            return
        if report.ok:
            if args.verbose:
                _print(report.describe())
            return
        record: Dict[str, object] = {
            "label": label, "origin": origin, "kind": "parity",
            "failed_checks": report.failed_checks,
            "cells": [c.describe() for c in report.failures],
        }
        if args.shrink_attempts:
            result = shrink(spec, checks=report.failed_checks,
                            max_attempts=args.shrink_attempts)
            minimal = result.spec
            record["shrink_attempts"] = result.attempts
            record["shrink_steps"] = result.steps
        else:
            minimal = spec
        artifact = save_spec(
            minimal,
            artifacts / f"{label}-{spec_fingerprint(minimal)[:12]}.json")
        record["artifact"] = str(artifact)
        failures.append(record)
        _print(f"{report.describe()} -> reproducer {artifact}")

    if args.corpus:
        paths = corpus_paths(args.corpus)
        if not paths and not Path(args.corpus).is_dir():
            raise SystemExit(f"corpus directory not found: {args.corpus!r}")
        for path in paths:
            try:
                spec = load_spec(path)
            except ValueError as exc:
                raise SystemExit(str(exc))
            _examine(spec, origin=f"corpus:{path.name}")
            corpus_examined += 1

    for index in range(args.budget):
        if deadline is not None and time.monotonic() >= deadline:
            truncated = True
            _print(f"time budget exhausted after {examined} of "
                   f"{args.budget} generated sample(s)")
            break
        _examine(generate_spec(args.seed, index), origin="generated")
        examined += 1

    elapsed = time.monotonic() - started
    summary = {
        "seed": args.seed,
        "budget": args.budget,
        "generated_examined": examined,
        "corpus_examined": corpus_examined,
        "truncated": truncated,
        "elapsed_seconds": round(elapsed, 3),
        "failures": failures,
    }
    if args.summary:
        Path(args.summary).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        _print(f"wrote fuzz summary to {args.summary}")
    _print(f"fuzz: {corpus_examined} corpus + {examined} generated sample(s) "
           f"in {elapsed:.1f}s, {len(failures)} failure(s)")
    return 1 if failures else 0


def cmd_report(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry.metrics import snapshot_cache_info

    emitted = False
    if args.caches:
        info = trace_cache_info()
        snapshots = snapshot_cache_info()
        if args.json:
            _print(json.dumps({"trace_cache": info,
                               "snapshot_cache": snapshots},
                              indent=2, sort_keys=True))
        else:
            rows = [[key, f"{value:.4g}" if isinstance(value, float) else str(value)]
                    for key, value in info.items()]
            _print("trace cache (this process)")
            _print(format_table(rows, headers=["metric", "value"]))
            rows = [[key, f"{value:.4g}" if isinstance(value, float) else str(value)]
                    for key, value in snapshots.items()]
            _print("snapshot cache (this process)")
            _print(format_table(rows, headers=["metric", "value"]))
        emitted = True
    if args.path:
        if args.path.endswith(".jsonl"):
            try:
                events = read_events_jsonl(args.path)
            except (OSError, ValueError) as exc:
                raise SystemExit(f"cannot read event log {args.path!r}: {exc}")
            if args.json:
                _print(json.dumps(summarize_events(events), indent=2,
                                  sort_keys=True))
            else:
                _print(render_timeline(timeline_from_events(events)))
                _print("")
                _print(render_spans(events))
        else:
            try:
                document = read_campaign_metrics(args.path)
            except (OSError, ValueError) as exc:
                raise SystemExit(
                    f"cannot read campaign metrics {args.path!r}: {exc}")
            if args.json:
                _print(json.dumps(document, indent=2, sort_keys=True))
            else:
                _print(render_campaign(document))
        emitted = True
    if not emitted:
        raise SystemExit("nothing to report: pass a telemetry .jsonl event "
                         "log, a campaign metrics .json file, or --caches")
    return 0


# --------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------- #
def _add_trace_arguments(parser: argparse.ArgumentParser, accesses: int = 60_000) -> None:
    parser.add_argument("workload", choices=workload_names(),
                        help="synthetic server workload")
    parser.add_argument("--accesses", type=int, default=accesses,
                        help="trace length (memory accesses)")
    parser.add_argument("--cores", type=int, default=16, help="simulated cores")
    parser.add_argument("--seed", type=int, default=42, help="generator seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BuMP (MICRO 2014) reproduction: simulate, characterise, "
                    "and regenerate the paper's experiments.",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    workloads = subparsers.add_parser("workloads", help="list available workloads")
    workloads.set_defaults(handler=cmd_workloads)

    characterize = subparsers.add_parser("characterize",
                                         help="static statistics of a workload trace")
    _add_trace_arguments(characterize)
    characterize.set_defaults(handler=cmd_characterize)

    run = subparsers.add_parser("run", help="simulate one workload on one system")
    _add_trace_arguments(run)
    run.add_argument("--system", default="bump", help="system configuration name")
    run.add_argument("--warmup", type=float, default=0.5,
                     help="fraction of the trace used for warmup")
    run.add_argument("--dram-engine", choices=["flat", "object"], default=None,
                     help="DRAM engine (default: REPRO_DRAM_ENGINE or flat; "
                          "results are bit-identical)")
    run.add_argument("--interp", choices=list(INTERPS), default=None,
                     help="batch interpreter (default: REPRO_INTERP or "
                          "vector; results are bit-identical)")
    run.add_argument("--telemetry", choices=list(TELEMETRY_MODES), default=None,
                     help="observability mode (default: REPRO_TELEMETRY or "
                          "off; results are bit-identical)")
    run.add_argument("--events", default="",
                     help="write the telemetry JSONL event log here "
                          "(implies --telemetry full)")
    run.add_argument("--snapshot", default="",
                     help="restore the warm state from this snapshot file and "
                          "simulate only the measured tail")
    run.add_argument("--warmup-snapshot", nargs="?", const=True, default=None,
                     metavar="DIR",
                     help="reuse the warmup through a snapshot store (default "
                          "directory: $REPRO_SNAPSHOT_DIR or "
                          "$REPRO_ARTIFACT_DIR); first run captures, "
                          "later runs restore")
    run.set_defaults(handler=cmd_run)

    compare = subparsers.add_parser("compare",
                                    help="simulate one workload on several systems")
    _add_trace_arguments(compare)
    compare.add_argument("--systems", default="base_open,bump",
                         help="comma-separated system names")
    compare.add_argument("--warmup", type=float, default=0.5,
                         help="fraction of the trace used for warmup")
    compare.add_argument("--dram-engine", choices=["flat", "object"], default=None,
                         help="DRAM engine (default: REPRO_DRAM_ENGINE or "
                              "flat; results are bit-identical)")
    compare.add_argument("--interp", choices=list(INTERPS), default=None,
                         help="batch interpreter (default: REPRO_INTERP or "
                              "vector; results are bit-identical)")
    compare.add_argument("--warmup-snapshot", nargs="?", const=True,
                         default=None, metavar="DIR",
                         help="reuse each system's warmup through a snapshot "
                              "store (default directory: $REPRO_SNAPSHOT_DIR "
                              "or $REPRO_ARTIFACT_DIR)")
    compare.set_defaults(handler=cmd_compare)

    campaign = subparsers.add_parser(
        "campaign",
        help="run a (workload x system x seed) grid, in parallel and resumably")
    campaign.add_argument("--workloads", default="all",
                          help="comma-separated workloads, or 'all' (default)")
    campaign.add_argument("--systems", default="base_open,bump",
                          help="comma-separated system names")
    campaign.add_argument("--seeds", default="42",
                          help="comma-separated generator seeds")
    campaign.add_argument("--accesses", type=int, default=60_000,
                          help="trace length per job")
    campaign.add_argument("--cores", type=int, default=16, help="simulated cores")
    campaign.add_argument("--warmup", type=float, default=0.5,
                          help="fraction of each trace used for warmup")
    campaign.add_argument("--workers", type=int, default=1,
                          help="worker processes (1 = serial)")
    campaign.add_argument("--store", default="",
                          help="artifact store directory (default: "
                               "$REPRO_ARTIFACT_DIR, or no persistence)")
    campaign.add_argument("--warmup-snapshots", action="store_true",
                          help="share warm-state snapshots across jobs that "
                               "agree on workload, system, warmup, cores and "
                               "seed (requires a store)")
    campaign.add_argument("--verify-parity", action="store_true",
                          help="first prove serial/parallel bit-identity on a "
                               "job sample")
    campaign.add_argument("--quiet", action="store_true",
                          help="suppress per-job progress lines")
    campaign.set_defaults(handler=cmd_campaign)

    scenario = subparsers.add_parser(
        "scenario",
        help="multi-tenant scenario catalog (list, describe, run)")
    scenario_actions = scenario.add_subparsers(dest="action", required=True)

    scenario_list = scenario_actions.add_parser(
        "list", help="list the shipped scenarios")
    scenario_list.set_defaults(handler=cmd_scenario_list)

    scenario_describe = scenario_actions.add_parser(
        "describe", help="print a scenario's phase/tenant/burst table")
    scenario_describe.add_argument("name", help="scenario name")
    scenario_describe.add_argument("--scale", type=float, default=1.0,
                                   help="phase-length scale factor")
    scenario_describe.set_defaults(handler=cmd_scenario_describe)

    scenario_run = scenario_actions.add_parser(
        "run", help="simulate one scenario, streaming at bounded memory")
    scenario_run.add_argument("name", help="scenario name")
    scenario_run.add_argument("--system", default="bump",
                              help="system configuration name")
    scenario_run.add_argument("--seed", type=int, default=42,
                              help="generator seed")
    scenario_run.add_argument("--scale", type=float, default=1.0,
                              help="phase-length scale factor")
    scenario_run.add_argument("--warmup", type=float, default=0.5,
                              help="fraction of the trace used for warmup")
    scenario_run.add_argument("--chunk-size", type=int, default=65_536,
                              help="streaming chunk granularity (accesses)")
    scenario_run.add_argument("--engine", choices=["flat", "dict"], default=None,
                              help="cache engine (default: REPRO_CACHE_ENGINE "
                                   "or flat)")
    scenario_run.add_argument("--dram-engine", choices=["flat", "object"],
                              default=None,
                              help="DRAM engine (default: REPRO_DRAM_ENGINE "
                                   "or flat; results are bit-identical)")
    scenario_run.add_argument("--interp", choices=list(INTERPS), default=None,
                              help="batch interpreter (default: REPRO_INTERP "
                                   "or vector; results are bit-identical)")
    scenario_run.add_argument("--telemetry", choices=list(TELEMETRY_MODES),
                              default=None,
                              help="observability mode (default: "
                                   "REPRO_TELEMETRY or off; results are "
                                   "bit-identical)")
    scenario_run.add_argument("--events", default="",
                              help="write the telemetry JSONL event log here "
                                   "(implies --telemetry full)")
    scenario_run.add_argument("--snapshot", default="",
                              help="restore the warm state from this snapshot "
                                   "file and simulate only the measured tail")
    scenario_run.add_argument("--warmup-snapshot", nargs="?", const=True,
                              default=None, metavar="DIR",
                              help="reuse the warmup through a snapshot store "
                                   "(default directory: $REPRO_SNAPSHOT_DIR "
                                   "or $REPRO_ARTIFACT_DIR)")
    scenario_run.add_argument("--closed-loop", action="store_true",
                              help="drive the run through the feedback "
                                   "controller: per-phase intensity is "
                                   "rescaled at control-interval boundaries "
                                   "toward --target-latency (deterministic, "
                                   "chunk-size invariant)")
    scenario_run.add_argument("--target-latency", type=float, default=60.0,
                              metavar="CYCLES",
                              help="closed-loop mean demand-read latency "
                                   "target per control interval "
                                   "(default: 60)")
    scenario_run.add_argument("--control-interval", type=int, default=4096,
                              metavar="ACCESSES",
                              help="closed-loop controller update period "
                                   "(default: 4096)")
    scenario_run.add_argument("--loop-gain", type=float, default=0.5,
                              help="closed-loop proportional gain "
                                   "(default: 0.5)")
    scenario_run.add_argument("--min-intensity", type=float, default=0.25,
                              help="closed-loop intensity floor "
                                   "(default: 0.25)")
    scenario_run.add_argument("--max-intensity", type=float, default=4.0,
                              help="closed-loop intensity ceiling "
                                   "(default: 4.0)")
    scenario_run.set_defaults(handler=cmd_scenario_run)

    experiment = subparsers.add_parser("experiment",
                                       help="regenerate one paper figure/table")
    experiment.add_argument("name", help="experiment name, e.g. figure9 or table4")
    experiment.add_argument("--workloads", default="",
                            help="comma-separated workload subset (default: all)")
    experiment.add_argument("--accesses", type=int, default=None,
                            help="trace length per run (default: harness default)")
    experiment.set_defaults(handler=cmd_experiment)

    scaling = subparsers.add_parser("scaling",
                                    help="Section VI storage-scaling tables")
    scaling.set_defaults(handler=cmd_scaling)

    trace = subparsers.add_parser(
        "trace", help="trace files: generate to disk, ingest and replay")
    trace_actions = trace.add_subparsers(dest="action", required=True)

    trace_generate = trace_actions.add_parser(
        "generate", help="generate a workload trace and save it")
    _add_trace_arguments(trace_generate, accesses=100_000)
    trace_generate.add_argument("--output", "-o", required=True,
                                help="output file (.csv, .txt, .npz or .npy)")
    trace_generate.add_argument("--chunk-size", type=int, default=65_536,
                                help="generator chunk granularity (accesses)")
    trace_generate.set_defaults(handler=cmd_trace_generate)

    trace_ingest = trace_actions.add_parser(
        "ingest",
        help="replay a stored trace file (trace generate output or an "
             "LLCTraceRecorder export) through the simulator")
    trace_ingest.add_argument("path",
                              help="trace file (.csv, .txt, .npz or .npy)")
    trace_ingest.add_argument("--system", default="bump",
                              help="system configuration name")
    trace_ingest.add_argument("--warmup", type=float, default=0.0,
                              help="fraction of the trace used for warmup "
                                   "(default: 0, captured streams are "
                                   "usually post-warm)")
    trace_ingest.add_argument("--chunk-size", type=int, default=65_536,
                              help="replay chunk granularity (accesses)")
    trace_ingest.add_argument("--mmap", action="store_true",
                              help="memory-map .npy traces instead of "
                                   "loading them")
    trace_ingest.add_argument("--dram-engine", choices=["flat", "object"],
                              default=None,
                              help="DRAM engine (default: REPRO_DRAM_ENGINE "
                                   "or flat; results are bit-identical)")
    trace_ingest.add_argument("--interp", choices=list(INTERPS), default=None,
                              help="batch interpreter (default: REPRO_INTERP "
                                   "or vector; results are bit-identical)")
    trace_ingest.set_defaults(handler=cmd_trace_ingest)

    snapshot = subparsers.add_parser(
        "snapshot",
        help="warm-state snapshots: create, inspect, list")
    snapshot_actions = snapshot.add_subparsers(dest="action", required=True)

    snapshot_create = snapshot_actions.add_parser(
        "create", help="simulate a warmup and persist the warm state")
    _add_trace_arguments(snapshot_create)
    snapshot_create.add_argument("--system", default="bump",
                                 help="system configuration name")
    snapshot_create.add_argument("--warmup", type=float, default=0.5,
                                 help="fraction of the trace to warm up over")
    snapshot_create.add_argument("--engine", choices=["flat", "dict"],
                                 default=None,
                                 help="cache engine (default: "
                                      "REPRO_CACHE_ENGINE or flat)")
    snapshot_create.add_argument("--dram-engine", choices=["flat", "object"],
                                 default=None,
                                 help="DRAM engine (default: "
                                      "REPRO_DRAM_ENGINE or flat)")
    snapshot_create.add_argument("--output", "-o", default="",
                                 help="write the snapshot to this .npz file "
                                      "instead of the store")
    snapshot_create.add_argument("--store", default="",
                                 help="snapshot store directory (default: "
                                      "$REPRO_SNAPSHOT_DIR or "
                                      "$REPRO_ARTIFACT_DIR)")
    snapshot_create.set_defaults(handler=cmd_snapshot_create)

    snapshot_info = snapshot_actions.add_parser(
        "info", help="describe one snapshot file")
    snapshot_info.add_argument("path", help="snapshot .npz file")
    snapshot_info.set_defaults(handler=cmd_snapshot_info)

    snapshot_list = snapshot_actions.add_parser(
        "list", help="list the snapshots in a store")
    snapshot_list.add_argument("--store", default="",
                               help="snapshot store directory (default: "
                                    "$REPRO_SNAPSHOT_DIR or "
                                    "$REPRO_ARTIFACT_DIR)")
    snapshot_list.set_defaults(handler=cmd_snapshot_list)

    fuzz = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing: random scenario/config specs proven "
             "bit-identical across the engine cube, chunk sizes, telemetry "
             "and snapshot resume")
    fuzz.add_argument("--budget", type=int, default=100,
                      help="number of generated samples to examine "
                           "(default: 100)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="spec-generator stream seed (default: 0)")
    fuzz.add_argument("--corpus", default="",
                      help="replay every .json spec in this directory before "
                           "generating new samples")
    fuzz.add_argument("--artifacts", default="fuzz-artifacts",
                      help="directory for shrunk reproducer artifacts "
                           "(default: fuzz-artifacts)")
    fuzz.add_argument("--time-budget", type=float, default=0.0,
                      metavar="SECONDS",
                      help="stop generating new samples after this many "
                           "seconds (corpus replay always completes)")
    fuzz.add_argument("--summary", default="",
                      help="write a machine-readable JSON run summary here")
    fuzz.add_argument("--shrink-attempts", type=int, default=200,
                      help="max candidate evaluations while shrinking a "
                           "failure (0 writes the unshrunk spec)")
    fuzz.add_argument("--verbose", action="store_true",
                      help="print a line per passing sample, not only "
                           "failures")
    fuzz.set_defaults(handler=cmd_fuzz)

    report = subparsers.add_parser(
        "report",
        help="render telemetry artifacts (event logs, campaign metrics, "
             "cache counters)")
    report.add_argument("path", nargs="?", default="",
                        help="telemetry .jsonl event log or campaign metrics "
                             ".json file")
    report.add_argument("--caches", action="store_true",
                        help="show the in-process trace-cache counters "
                             "(entries, hits, misses, hit ratio)")
    report.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")
    report.set_defaults(handler=cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
