"""Stealth-prefetching-style region prefetcher (Cantin, Lipasti & Smith).

The related-work comparison point of Section VII: a scheme that keeps
*address-indexed* metadata about coarse regions and fetches the rest of a
region only after a configurable number of its blocks have been touched.
Compared with BuMP it differs in exactly the two ways the paper calls out:

* it correlates with **addresses** rather than code, so its tables must cover
  the (enormous) region working set of a server application rather than the
  handful of triggering instructions, which is why its storage requirement is
  two orders of magnitude larger for the same reach;
* it waits for ``trigger_count`` accesses to a region before streaming it, so
  the first ``trigger_count`` blocks of every region are always demand misses
  and the activation they could have shared is already spent.

The implementation keeps a bounded region table (default sized to match the
hundreds-of-kilobytes-per-core budget the original proposal assumes, but
configurable down to BuMP-comparable sizes for the ablation benchmark) whose
entries remember the footprint observed during the region's previous
generation; once the current generation reaches the trigger count, the blocks
of the remembered footprint (or the whole region, if no history exists) are
fetched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.common.assoc_table import AssociativeTable
from repro.common.request import LLCRequest
from repro.common.stats import StatGroup
from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.set_assoc import EvictedLine


@dataclass
class _RegionHistory:
    """Per-region metadata: last generation's footprint and the live one."""

    #: Footprint observed during the previous generation (bit per block).
    learned_pattern: int = 0
    #: Footprint of the generation currently being observed.
    live_pattern: int = 0
    #: Demand accesses observed in the current generation.
    live_accesses: int = 0
    #: Whether the current generation already triggered a bulk fetch.
    streamed: bool = False


class StealthPrefetcher(LLCAgent):
    """Address-correlated region prefetcher with an access-count trigger."""

    name = "stealth"

    def __init__(self, trigger_count: int = 4, entries: int = 32768,
                 associativity: int = 16, region_size: int = REGION_SIZE) -> None:
        if trigger_count < 1:
            raise ValueError("trigger count must be at least 1")
        if region_size % BLOCK_SIZE != 0:
            raise ValueError("region size must be a whole number of blocks")
        self.trigger_count = trigger_count
        self.region_size = region_size
        self.blocks_per_region = region_size // BLOCK_SIZE
        self.table: AssociativeTable[int, _RegionHistory] = AssociativeTable(
            entries, associativity, name="stealth_regions"
        )
        self.stats = StatGroup("stealth")

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def _region(self, block_address: int) -> int:
        return block_address // self.region_size

    def _offset(self, block_address: int) -> int:
        return (block_address % self.region_size) // BLOCK_SIZE

    def _region_blocks(self, region: int, pattern: int, exclude: int) -> list:
        base = region * self.region_size
        blocks = []
        for index in range(self.blocks_per_region):
            if pattern & (1 << index):
                block = base + index * BLOCK_SIZE
                if block != exclude:
                    blocks.append(block)
        return blocks

    # ------------------------------------------------------------------ #
    # LLC streams
    # ------------------------------------------------------------------ #
    def on_access(self, request: LLCRequest, hit: bool) -> AgentActions:
        """Track the live footprint and stream once the trigger count is hit."""
        actions = AgentActions()
        region = self._region(request.block_address)
        offset = self._offset(request.block_address)

        history = self.table.lookup(region)
        if history is None:
            history = _RegionHistory()
            victim = self.table.insert(region, history)
            if victim is not None:
                self.stats.inc("table_conflicts")
        bit = 1 << offset
        if not history.live_pattern & bit:
            history.live_accesses += 1
        history.live_pattern |= bit

        if history.streamed or history.live_accesses < self.trigger_count:
            return actions

        history.streamed = True
        pattern = history.learned_pattern
        if pattern == 0:
            # No previous generation: fetch the whole region.
            pattern = (1 << self.blocks_per_region) - 1
        fetch = self._region_blocks(region, pattern & ~history.live_pattern,
                                    exclude=request.block_address)
        actions.fetch_blocks.extend(fetch)
        self.stats.inc("streams_triggered")
        self.stats.inc("blocks_requested", len(fetch))
        return actions

    def on_eviction(self, victim: EvictedLine) -> AgentActions:
        """Close the region's generation when one of its blocks is evicted."""
        region = self._region(victim.block_address)
        history = self.table.lookup(region, touch=False)
        if history is None or history.live_pattern == 0:
            return AgentActions()
        history.learned_pattern = history.live_pattern
        history.live_pattern = 0
        history.live_accesses = 0
        history.streamed = False
        self.stats.inc("generations_closed")
        return AgentActions()

    # ------------------------------------------------------------------ #
    # Overheads
    # ------------------------------------------------------------------ #
    def storage_bits(self) -> int:
        """Region tag plus two footprints plus a counter per entry.

        At the default 32K-entry sizing this is several hundred kilobytes --
        the storage disadvantage versus BuMP that Section VII highlights.
        """
        tag_bits = 30
        per_entry = tag_bits + 2 * self.blocks_per_region + 5 + 1
        return self.table.entries * per_entry
