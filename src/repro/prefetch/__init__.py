"""Prefetcher baselines.

The paper compares BuMP against two read-side prefetching baselines:

* :class:`repro.prefetch.stride.StridePrefetcher` -- the conventional stride
  prefetcher integrated in both baseline systems (Table II): when two
  consecutive accesses from the same instruction are separated by the same
  stride, it prefetches the next four blocks into the LLC.
* :class:`repro.prefetch.sms.SpatialMemoryStreaming` -- Spatial Memory
  Streaming [Somogyi et al., ISCA 2006], the state-of-the-art spatial
  footprint prefetcher the paper evaluates next to the LLC.  SMS learns the
  per-(PC, offset) footprint of spatial regions and, on a trigger access that
  hits in its pattern history table, fetches exactly the previously observed
  footprint.  As in the paper, SMS observes and predicts only load-triggered
  traffic.

Both are :class:`repro.cache.agent.LLCAgent` implementations, so the system
model treats them uniformly with BuMP.
"""

from repro.prefetch.nextline import NextLinePrefetcher
from repro.prefetch.sms import SpatialMemoryStreaming
from repro.prefetch.stealth import StealthPrefetcher
from repro.prefetch.stride import StridePrefetcher

__all__ = [
    "NextLinePrefetcher",
    "SpatialMemoryStreaming",
    "StealthPrefetcher",
    "StridePrefetcher",
]
