"""Conventional stride prefetcher (the baseline prefetcher of Table II).

The reference-prediction-table design: each entry, indexed by the accessing
instruction's PC, remembers the last block address it touched and the last
observed stride.  When the same PC produces the same stride twice in a row,
the prefetcher becomes confident and issues prefetches for the next
``degree`` blocks along that stride.
"""

from __future__ import annotations

from repro.common.addressing import BLOCK_SIZE
from repro.common.assoc_table import AssociativeTable
from repro.common.request import LLCRequest
from repro.common.stats import StatGroup
from repro.cache.agent import AgentActions, LLCAgent


class _StrideEntry:
    __slots__ = ("last_block", "stride", "confident")

    def __init__(self, last_block: int, stride: int = 0,
                 confident: bool = False) -> None:
        self.last_block = last_block
        self.stride = stride
        self.confident = confident


class StridePrefetcher(LLCAgent):
    """Stride prefetcher with a configurable degree.

    Entries are indexed by (core, PC): the structure is shared at the LLC but
    each core's instruction streams train their own entries, so the
    interleaving of requests from sixteen cores does not destroy stride
    detection (mirroring the per-core training of commercial designs).
    """

    name = "stride"

    def __init__(self, degree: int = 4, entries: int = 1024, associativity: int = 4) -> None:
        if degree < 1:
            raise ValueError("prefetch degree must be at least 1")
        self.degree = degree
        self.table: AssociativeTable[tuple, _StrideEntry] = AssociativeTable(
            entries, associativity, name="stride_rpt"
        )
        self.stats = StatGroup("stride")

    def on_access(self, request: LLCRequest, hit: bool) -> AgentActions:
        """Observe a demand access and emit prefetches on a confirmed stride."""
        actions = AgentActions()
        block = request.block_address
        key = (request.core, request.pc)
        entry = self.table.lookup(key)
        if entry is None:
            self.table.insert(key, _StrideEntry(last_block=block))
            return actions

        stride = block - entry.last_block
        if stride == 0:
            # Same-block re-reference (mostly filtered by the L1); ignore it
            # rather than tearing down an established stride.
            return actions
        if stride == entry.stride:
            if entry.confident:
                for step in range(1, self.degree + 1):
                    actions.fetch_blocks.append(block + step * stride)
                self.stats.inc("prefetch_bursts")
                self.stats.inc("prefetches_issued", self.degree)
            entry.confident = True
        else:
            entry.confident = False
        entry.stride = stride
        entry.last_block = block
        return actions

    def storage_bits(self) -> int:
        """Storage of the reference prediction table (tag + address + stride)."""
        bits_per_entry = 16 + 42 + 16 + 1
        return self.table.entries * bits_per_entry

    @property
    def issued(self) -> int:
        """Total prefetches issued so far."""
        return int(self.stats["prefetches_issued"])


def aligned_stride_blocks(base_block: int, stride_blocks: int, degree: int) -> list:
    """Utility: the block addresses a stride prefetch burst would cover."""
    return [base_block + step * stride_blocks * BLOCK_SIZE for step in range(1, degree + 1)]
