"""Spatial Memory Streaming (SMS) prefetcher baseline.

SMS [Somogyi et al., ISCA 2006; Kumar & Wilkerson, ISCA 1998] learns, per
*(trigger PC, offset-in-region)*, the exact *footprint* -- the bit-vector of
blocks touched -- of spatial regions, and on a later trigger access that hits
in the pattern history prefetches precisely that footprint.

Two structures:

* the **active generation table** (AGT) records the footprint of regions that
  currently have blocks live on chip; a generation starts at the first
  (trigger) access to the region and ends at the first eviction of one of its
  blocks or at an AGT conflict, at which point the footprint is copied into
  the pattern history table;
* the **pattern history table** (PHT), indexed by (trigger PC, trigger
  offset), holds the most recent footprint observed for that code point.

Per the paper's configuration (Section V.A), SMS is placed next to the LLC so
its metadata is shared by all cores, and -- crucially for the comparison with
BuMP -- it observes and predicts only *load-triggered* traffic: store misses
and LLC writebacks pass it by, which caps the row-buffer locality it can
recover (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.addressing import (
    BLOCK_SIZE,
    BLOCKS_PER_REGION,
    REGION_SIZE,
    block_index_in_region,
    region_address,
)
from repro.common.assoc_table import AssociativeTable
from repro.common.request import LLCRequest
from repro.common.stats import StatGroup
from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.set_assoc import EvictedLine


@dataclass
class _Generation:
    """Footprint of one active spatial region generation."""

    trigger_pc: int
    trigger_offset: int
    pattern: int


class SpatialMemoryStreaming(LLCAgent):
    """SMS spatial footprint prefetcher attached to the LLC."""

    name = "sms"

    def __init__(self, agt_entries: int = 1024, pht_entries: int = 16384,
                 associativity: int = 16, region_size: int = REGION_SIZE) -> None:
        self.region_size = region_size
        self.blocks_per_region = region_size // BLOCK_SIZE
        self.agt: AssociativeTable[int, _Generation] = AssociativeTable(
            agt_entries, associativity, name="sms_agt"
        )
        self.pht: AssociativeTable[tuple, int] = AssociativeTable(
            pht_entries, associativity, name="sms_pht"
        )
        self.stats = StatGroup("sms")

    # ------------------------------------------------------------------ #
    # Region helpers
    # ------------------------------------------------------------------ #
    def _region(self, block_address: int) -> int:
        return block_address // self.region_size

    def _offset(self, block_address: int) -> int:
        return (block_address % self.region_size) // BLOCK_SIZE

    def _region_blocks(self, region: int) -> list:
        base = region * self.region_size
        return [base + i * BLOCK_SIZE for i in range(self.blocks_per_region)]

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def on_access(self, request: LLCRequest, hit: bool) -> AgentActions:
        """Track load footprints of active regions; trigger predictions on new ones."""
        actions = AgentActions()
        if request.is_store:
            return actions

        region = self._region(request.block_address)
        offset = self._offset(request.block_address)
        generation = self.agt.lookup(region)
        if generation is not None:
            generation.pattern |= 1 << offset
            return actions

        # First (trigger) access of a new generation: consult the PHT and
        # start tracking the footprint.
        prediction = self.pht.lookup((request.pc, offset))
        if prediction is not None:
            self.stats.inc("pht_hits")
            for index in range(self.blocks_per_region):
                if index == offset or not (prediction >> index) & 1:
                    continue
                actions.fetch_blocks.append(region * self.region_size + index * BLOCK_SIZE)
            self.stats.inc("prefetches_issued", len(actions.fetch_blocks))
        else:
            self.stats.inc("pht_misses")

        victim = self.agt.insert(
            region, _Generation(trigger_pc=request.pc, trigger_offset=offset,
                                pattern=1 << offset)
        )
        if victim is not None:
            self._end_generation(victim[1])
        return actions

    def on_eviction(self, victim: EvictedLine) -> AgentActions:
        """The first eviction of a block of an active region ends its generation."""
        region = self._region(victim.block_address)
        generation = self.agt.remove(region)
        if generation is not None:
            self._end_generation(generation)
        return AgentActions()

    def _end_generation(self, generation: _Generation) -> None:
        """Commit a finished generation's footprint into the pattern history."""
        if bin(generation.pattern).count("1") > 1:
            self.pht.insert((generation.trigger_pc, generation.trigger_offset),
                            generation.pattern)
            self.stats.inc("generations_trained")
        else:
            self.stats.inc("generations_single_block")

    # ------------------------------------------------------------------ #
    # Overheads
    # ------------------------------------------------------------------ #
    def storage_bits(self) -> int:
        """Approximate storage: PHT footprints dominate (the paper cites ~60KB/core
        for the original per-core design; sharing it at the LLC divides that cost)."""
        pht_bits = self.pht.entries * (32 + self.blocks_per_region)
        agt_bits = self.agt.entries * (32 + 4 + self.blocks_per_region)
        return pht_bits + agt_bits


def footprint_to_blocks(region: int, pattern: int,
                        region_size: int = REGION_SIZE) -> list:
    """Expand a footprint bit-vector into the block addresses it covers."""
    blocks_per_region = region_size // BLOCK_SIZE
    base = region * region_size
    return [
        base + index * BLOCK_SIZE
        for index in range(blocks_per_region)
        if (pattern >> index) & 1
    ]


def pattern_from_offsets(offsets, blocks_per_region: int = BLOCKS_PER_REGION) -> int:
    """Build a footprint bit-vector from a list of block offsets (test helper)."""
    pattern = 0
    for offset in offsets:
        if not 0 <= offset < blocks_per_region:
            raise ValueError(f"offset {offset} outside region")
        pattern |= 1 << offset
    return pattern


def region_of(address: int) -> int:
    """Region number of a byte address at the default 1KB region size."""
    return region_address(address)


def offset_of(address: int) -> int:
    """Block offset of a byte address inside its default-size region."""
    return block_index_in_region(address)
