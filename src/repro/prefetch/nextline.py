"""Next-N-line prefetcher.

The simplest spatial prefetcher: on every demand LLC miss, fetch the next
``degree`` sequential cache blocks.  It needs no state at all, which makes it
a useful lower bound in the prefetcher ablation: it captures strictly
sequential scans (media streaming buffers) but pays overfetch on everything
else and is blind to the data-dependent visiting orders that spatial
footprint schemes (SMS) and BuMP capture.
"""

from __future__ import annotations

from repro.common.addressing import BLOCK_SIZE
from repro.common.request import LLCRequest
from repro.common.stats import StatGroup
from repro.cache.agent import AgentActions, LLCAgent


class NextLinePrefetcher(LLCAgent):
    """Fetch the next ``degree`` sequential blocks on every LLC miss."""

    name = "nextline"

    def __init__(self, degree: int = 1, miss_triggered: bool = True) -> None:
        if degree < 1:
            raise ValueError("prefetch degree must be at least 1")
        self.degree = degree
        #: When False the prefetcher also triggers on LLC hits (more aggressive).
        self.miss_triggered = miss_triggered
        self.stats = StatGroup("nextline")

    def _emit(self, block_address: int) -> AgentActions:
        actions = AgentActions()
        for step in range(1, self.degree + 1):
            actions.fetch_blocks.append(block_address + step * BLOCK_SIZE)
        self.stats.inc("prefetch_bursts")
        self.stats.inc("prefetches_issued", self.degree)
        return actions

    def on_access(self, request: LLCRequest, hit: bool) -> AgentActions:
        """Optionally trigger on hits as well as misses."""
        if self.miss_triggered or hit:
            return AgentActions()
        return self._emit(request.block_address)

    def on_miss(self, request: LLCRequest) -> AgentActions:
        """Trigger a sequential burst on a demand miss."""
        if not self.miss_triggered:
            return AgentActions()
        return self._emit(request.block_address)

    def storage_bits(self) -> int:
        """The next-line prefetcher holds no prediction state."""
        return 0
