"""Virtual Write Queue (VWQ) eager-writeback baseline.

On every dirty LLC eviction the engine probes the LLC for the neighbouring
cache blocks in the same DRAM row (the paper configures three adjacent
blocks, Section V.A) and asks the system to write back the dirty ones
eagerly, so that the memory controller sees them back-to-back and can serve
them from a single activation.

Two properties matter for the comparison with BuMP (Section II.C and V.G):

* VWQ only improves *write* row-buffer locality; reads keep the baseline's
  poor locality.
* It probes only a small neighbourhood around the evicted block (to bound
  extra LLC traffic), so even for writes it recovers only part of the
  region-level locality BuMP's dirty-region table exposes.
"""

from __future__ import annotations

from repro.common.addressing import BLOCK_SIZE, REGION_SIZE
from repro.common.stats import StatGroup
from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.set_assoc import EvictedLine


class VirtualWriteQueue(LLCAgent):
    """Eager writeback of adjacent dirty blocks on LLC dirty evictions."""

    name = "vwq"

    def __init__(self, lookahead_blocks: int = 3, region_size: int = REGION_SIZE) -> None:
        if lookahead_blocks < 1:
            raise ValueError("lookahead must cover at least one adjacent block")
        self.lookahead_blocks = lookahead_blocks
        self.region_size = region_size
        self.stats = StatGroup("vwq")

    def on_eviction(self, victim: EvictedLine) -> AgentActions:
        """Request eager writebacks of the blocks adjacent to a dirty victim."""
        actions = AgentActions()
        if not victim.dirty:
            return actions

        self.stats.inc("dirty_evictions_seen")
        region_base = victim.block_address - (victim.block_address % self.region_size)
        region_limit = region_base + self.region_size
        for step in range(1, self.lookahead_blocks + 1):
            for candidate in (victim.block_address + step * BLOCK_SIZE,
                              victim.block_address - step * BLOCK_SIZE):
                if region_base <= candidate < region_limit:
                    actions.writeback_blocks.append(candidate)
        # Keep only the closest `lookahead_blocks` candidates so the engine
        # matches the paper's "three adjacent cache blocks" budget.
        actions.writeback_blocks = actions.writeback_blocks[: self.lookahead_blocks]
        self.stats.inc("probes_issued", len(actions.writeback_blocks))
        return actions

    def storage_bits(self) -> int:
        """VWQ proper reuses LLC state; its queue metadata is negligible."""
        return 1024 * 8
