"""Classic eager writeback (Lee, Tyson & Farrens, MICRO 2000).

The original eager-writeback proposal cleans dirty blocks *before* they reach
the eviction point so the write traffic is off the critical path and spread
over idle bus slots.  The hardware tracks dirty lines approaching the LRU
position; this agent-level model approximates that with a bounded FIFO of
dirty blocks observed at the LLC: once the FIFO holds more than
``pending_limit`` candidates, the oldest ones are eagerly written back (the
system model only issues a DRAM write if the block is still resident and
dirty, so stale candidates cost nothing).

It differs from VWQ (:mod:`repro.writeback.vwq`) in that it has no notion of
spatial adjacency -- it cleans *old* dirty blocks, not *neighbouring* ones --
so it recovers write bandwidth headroom but almost no row-buffer locality.
The writeback-mechanism ablation benchmark quantifies exactly that gap.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.common.request import LLCRequest
from repro.common.stats import StatGroup
from repro.cache.agent import AgentActions, LLCAgent
from repro.cache.set_assoc import EvictedLine


class EagerWriteback(LLCAgent):
    """Age-based eager writeback of dirty LLC blocks."""

    name = "eager_writeback"

    def __init__(self, pending_limit: int = 512, drain_batch: int = 4) -> None:
        if pending_limit < 1:
            raise ValueError("pending limit must be positive")
        if drain_batch < 1:
            raise ValueError("drain batch must be positive")
        self.pending_limit = pending_limit
        self.drain_batch = drain_batch
        #: Dirty blocks in the order they became dirty (oldest first).
        self._dirty: "OrderedDict[int, None]" = OrderedDict()
        self.stats = StatGroup("eager_writeback")

    # ------------------------------------------------------------------ #
    # LLC streams
    # ------------------------------------------------------------------ #
    def on_access(self, request: LLCRequest, hit: bool) -> AgentActions:
        """Record stores as new dirty blocks; drain the oldest past the limit."""
        actions = AgentActions()
        if request.is_store:
            block = request.block_address
            # Re-dirtied blocks move to the young end of the queue.
            self._dirty.pop(block, None)
            self._dirty[block] = None
            self.stats.inc("dirty_blocks_tracked")

        while len(self._dirty) > self.pending_limit and \
                len(actions.writeback_blocks) < self.drain_batch:
            oldest, _ = self._dirty.popitem(last=False)
            actions.writeback_blocks.append(oldest)
        if actions.writeback_blocks:
            self.stats.inc("eager_drains")
            self.stats.inc("blocks_drained", len(actions.writeback_blocks))
        return actions

    def on_eviction(self, victim: EvictedLine) -> AgentActions:
        """Forget blocks that left the cache on their own."""
        self._dirty.pop(victim.block_address, None)
        return AgentActions()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def tracked_dirty_blocks(self) -> int:
        """Number of dirty blocks currently queued for eager cleaning."""
        return len(self._dirty)

    def storage_bits(self) -> int:
        """One block address per tracked entry."""
        return self.pending_limit * 42
