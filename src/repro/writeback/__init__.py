"""Eager-writeback baselines.

The paper's write-side baseline is the Virtual Write Queue [Stuecheli et al.,
ISCA 2010], a state-of-the-art eager-writeback mechanism: when the LLC evicts
a dirty block, the engine probes the LLC for a small number of *adjacent*
blocks and, if they are dirty, schedules their writebacks together with the
triggering one so the memory controller can coalesce them into row-buffer
hits.  :class:`repro.writeback.vwq.VirtualWriteQueue` implements that engine
as an :class:`repro.cache.agent.LLCAgent`.
"""

from repro.writeback.eager import EagerWriteback
from repro.writeback.vwq import VirtualWriteQueue

__all__ = ["EagerWriteback", "VirtualWriteQueue"]
