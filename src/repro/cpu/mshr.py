"""Miss Status Holding Register (MSHR) file.

Each L1 data cache has a bounded number of MSHRs (Table II: 10).  An MSHR is
allocated for every outstanding (primary) miss; further accesses to the same
block while it is outstanding merge into the existing entry as secondary
misses instead of issuing another memory request.  When every MSHR is in use
the core can expose no further misses -- the structural bound on memory-level
parallelism that the interval timing model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class MSHREntry:
    """One in-flight miss."""

    block_address: int
    #: Cycle (or logical time) at which the primary miss was issued.
    issue_time: float
    #: Number of secondary (merged) misses to the same block.
    merged: int = 0
    #: PCs of the merged accesses, kept for debugging and tests.
    merged_pcs: List[int] = field(default_factory=list)


class MSHRFile:
    """Bounded file of outstanding misses with secondary-miss merging."""

    def __init__(self, entries: int = 10) -> None:
        if entries < 1:
            raise ValueError("an MSHR file needs at least one entry")
        self.entries = entries
        self._active: Dict[int, MSHREntry] = {}
        self.primary_misses = 0
        self.secondary_misses = 0
        self.rejected_misses = 0
        #: Running sum of occupancy observed at every allocate attempt, for
        #: the average-occupancy statistic.
        self._occupancy_sum = 0.0
        self._occupancy_samples = 0

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def allocate(self, block_address: int, issue_time: float = 0.0,
                 pc: int = 0) -> Optional[MSHREntry]:
        """Try to track a miss to ``block_address``.

        Returns the entry when the miss is tracked (newly allocated or merged
        into an existing entry) and ``None`` when the file is full and the
        miss would have to stall the core.
        """
        self._occupancy_sum += len(self._active)
        self._occupancy_samples += 1

        entry = self._active.get(block_address)
        if entry is not None:
            entry.merged += 1
            entry.merged_pcs.append(pc)
            self.secondary_misses += 1
            return entry
        if len(self._active) >= self.entries:
            self.rejected_misses += 1
            return None
        entry = MSHREntry(block_address=block_address, issue_time=issue_time)
        self._active[block_address] = entry
        self.primary_misses += 1
        return entry

    def complete(self, block_address: int) -> Optional[MSHREntry]:
        """Retire the outstanding miss to ``block_address`` (fill arrived)."""
        return self._active.pop(block_address, None)

    def is_outstanding(self, block_address: int) -> bool:
        """Whether a miss to ``block_address`` is currently in flight."""
        return block_address in self._active

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def occupancy(self) -> int:
        """Number of MSHRs currently in use."""
        return len(self._active)

    @property
    def full(self) -> bool:
        """True when no further primary miss can be tracked."""
        return len(self._active) >= self.entries

    @property
    def average_occupancy(self) -> float:
        """Mean occupancy observed across allocate attempts."""
        if self._occupancy_samples == 0:
            return 0.0
        return self._occupancy_sum / self._occupancy_samples

    @property
    def merge_ratio(self) -> float:
        """Secondary misses per tracked miss (how much merging helps)."""
        tracked = self.primary_misses + self.secondary_misses
        if tracked == 0:
            return 0.0
        return self.secondary_misses / tracked

    def reset_statistics(self) -> None:
        """Zero the counters while keeping in-flight entries."""
        self.primary_misses = 0
        self.secondary_misses = 0
        self.rejected_misses = 0
        self._occupancy_sum = 0.0
        self._occupancy_samples = 0
