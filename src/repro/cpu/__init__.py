"""Core (CPU) microarchitecture models.

The paper's cores are 3-way out-of-order with 48-entry ROB/LSQ (Table II) and
are simulated cycle-accurately in Flexus.  The reproduction's default timing
model (:mod:`repro.sim.timing`) treats the core analytically with a *fixed*
memory-level-parallelism factor; this package provides the first-order
microarchitectural models needed to derive that factor instead of assuming
it, plus the structures the derivation depends on:

* :mod:`repro.cpu.mshr` -- a miss-status-holding-register file: bounds the
  number of outstanding off-chip misses and merges secondary misses to the
  same block.
* :mod:`repro.cpu.rob` -- a first-order ROB-occupancy model (in the spirit of
  Karkhanis & Smith's interval analysis): how many independent misses a
  48-entry-ROB core can expose under a given miss density and latency.
* :mod:`repro.cpu.interval` -- an alternative timing model with the same
  interface as :class:`repro.sim.timing.TimingModel`, selectable through
  ``SystemConfig.timing_model = "interval"``, that derives the exposed-stall
  divisor from the ROB/MSHR models rather than a fixed constant.
"""

from repro.cpu.interval import IntervalTimingModel
from repro.cpu.mshr import MSHRFile
from repro.cpu.rob import ROBModel

__all__ = ["IntervalTimingModel", "MSHRFile", "ROBModel"]
