"""First-order reorder-buffer model of memory-level parallelism.

Follows the interval-analysis observation (Karkhanis & Smith; Chou, Fahs &
Abraham): when a long-latency load blocks retirement, the out-of-order core
keeps fetching until the ROB fills; any *independent* long-latency loads among
the instructions that fit behind the blocking one overlap their latency with
it.  The achievable memory-level parallelism is therefore bounded by

* how many additional misses appear in one ROB's worth of instructions
  (``rob_entries / instructions_per_miss``),
* how many of those are independent (server pointer chases are not), and
* the number of L1 MSHRs.

The model is deliberately simple -- every quantity is an average -- but it
turns the fixed MLP constant of the default timing model into a derived,
workload-dependent value, which is what the timing-sensitivity ablation
exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.params import CoreParams


@dataclass
class ROBModel:
    """Derives sustainable memory-level parallelism from core structure."""

    core: CoreParams = None
    #: Fraction of off-chip misses that are independent of the previous miss
    #: (the rest are pointer-chase style dependent accesses that cannot
    #: overlap).  Server workloads sit low; streaming workloads high.
    independence: float = 0.5
    #: L1 MSHR entries (structural cap on outstanding misses).
    mshr_entries: int = 10

    def __post_init__(self) -> None:
        if self.core is None:
            self.core = CoreParams()
        if not 0.0 <= self.independence <= 1.0:
            raise ValueError("independence must be a fraction")
        if self.mshr_entries < 1:
            raise ValueError("mshr_entries must be positive")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def misses_per_rob_window(self, instructions_per_miss: float) -> float:
        """Average number of off-chip misses among one ROB's worth of instructions."""
        if instructions_per_miss <= 0:
            return float(self.core.rob_entries)
        return self.core.rob_entries / instructions_per_miss

    def memory_level_parallelism(self, instructions_per_miss: float) -> float:
        """Sustainable overlapping off-chip misses (>= 1).

        The blocking miss itself always counts; additional overlap comes from
        the independent fraction of the misses that fit in the ROB window
        behind it, capped by the MSHR file.
        """
        window_misses = self.misses_per_rob_window(instructions_per_miss)
        overlapping = 1.0 + max(window_misses - 1.0, 0.0) * self.independence
        return min(max(overlapping, 1.0), float(self.mshr_entries))

    def rob_fill_cycles(self, base_cpi: float) -> float:
        """Cycles the front-end needs to fill the ROB behind a blocking miss.

        During this time the core still makes forward progress, so only the
        part of the miss latency beyond the fill time is truly exposed.
        """
        if base_cpi <= 0:
            raise ValueError("base CPI must be positive")
        return self.core.rob_entries * base_cpi / self.core.issue_width

    def exposed_miss_latency(self, miss_latency_cycles: float,
                             instructions_per_miss: float,
                             base_cpi: float = None) -> float:
        """Exposed (non-overlapped) stall cycles of one average off-chip miss."""
        base_cpi = base_cpi if base_cpi is not None else self.core.base_cpi
        mlp = self.memory_level_parallelism(instructions_per_miss)
        hidden_by_fill = min(self.rob_fill_cycles(base_cpi), miss_latency_cycles)
        exposed = (miss_latency_cycles - hidden_by_fill) / mlp
        return max(exposed, 0.0)
