"""Interval-analysis timing model.

A drop-in alternative to :class:`repro.sim.timing.TimingModel` (same
``summarize`` signature, selected with ``SystemConfig.timing_model =
"interval"``).  Instead of charging every exposed load miss a fixed
``latency / MLP`` penalty, it derives the overlap from the core's structure:

* the instructions-per-miss density of the measured run determines how many
  misses fall inside one ROB window;
* the :class:`repro.cpu.rob.ROBModel` turns that density into a sustainable
  memory-level parallelism (bounded by the miss-independence fraction and the
  L1 MSHRs);
* the ROB-fill time hides the first chunk of every blocking miss's latency.

Relative orderings between systems match the default model (both reward
configurations that convert demand misses into covered hits); the interval
model additionally captures that prefetch-rich runs with few remaining misses
cannot overlap them, which the timing-sensitivity ablation examines.
"""

from __future__ import annotations

from typing import Optional

from repro.common.params import SystemParams
from repro.cpu.rob import ROBModel
from repro.sim.timing import TimingSummary


class IntervalTimingModel:
    """First-order interval-analysis replacement for the analytic timing model.

    ``independence`` is the fraction of off-chip misses independent of the
    previous miss; it must lie in ``(0, 1]`` (a zero fraction would deny
    even the blocking miss itself and is always a configuration mistake).
    ``mshr_entries`` is the structural cap on outstanding misses and must be
    at least 1.
    """

    def __init__(self, params: Optional[SystemParams] = None,
                 independence: float = 0.5, mshr_entries: int = 10) -> None:
        if not 0.0 < independence <= 1.0:
            raise ValueError(
                f"independence must be in (0, 1], got {independence!r}")
        if mshr_entries < 1:
            raise ValueError(
                f"mshr_entries must be at least 1, got {mshr_entries!r}")
        self.params = params if params is not None else SystemParams()
        self.rob = ROBModel(core=self.params.core, independence=independence,
                            mshr_entries=mshr_entries)

    def summarize(self, *, instructions: float, load_demand_misses: float,
                  covered_loads: float, llc_load_hits: float,
                  average_dram_latency_bus_cycles: float,
                  dram_elapsed_bus_cycles: float) -> TimingSummary:
        """Compute cycles and throughput with ROB/MSHR-derived overlap."""
        params = self.params
        core = params.core
        num_cores = params.num_cores
        to_core_cycles = params.core_cycles_per_dram_cycle

        base_cycles = instructions * core.base_cpi / num_cores

        per_core_instructions = instructions / num_cores
        per_core_misses = load_demand_misses / num_cores
        instructions_per_miss = (
            per_core_instructions / per_core_misses if per_core_misses > 0 else float("inf")
        )

        miss_latency = (
            params.noc_latency_cycles
            + params.llc.hit_latency_cycles
            + average_dram_latency_bus_cycles * to_core_cycles
        )
        exposed_per_miss = self.rob.exposed_miss_latency(
            miss_latency, instructions_per_miss, base_cpi=core.base_cpi
        )

        onchip_penalty = params.noc_latency_cycles + params.llc.hit_latency_cycles
        onchip_mlp = self.rob.memory_level_parallelism(instructions_per_miss)

        stall_cycles = (
            load_demand_misses * exposed_per_miss
            + covered_loads * onchip_penalty / onchip_mlp
            + llc_load_hits * params.llc.hit_latency_cycles / onchip_mlp
        ) / num_cores

        core_cycles = base_cycles + stall_cycles
        dram_bound_cycles = dram_elapsed_bus_cycles * to_core_cycles
        cycles = max(core_cycles, dram_bound_cycles)

        throughput = instructions / cycles if cycles > 0 else 0.0
        elapsed_seconds = cycles * core.cycle_time_ns * 1e-9
        return TimingSummary(
            instructions=instructions,
            base_cycles=base_cycles,
            stall_cycles=stall_cycles,
            dram_bound_cycles=dram_bound_cycles,
            cycles=cycles,
            throughput_ipc=throughput,
            elapsed_seconds=elapsed_seconds,
        )
