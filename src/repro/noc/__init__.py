"""Network-on-chip substrate.

The simulated CMP connects its sixteen cores to the eight LLC banks and two
memory controllers through a 16x8 crossbar (Table II).  For the purposes of
the paper's evaluation the NOC matters only as a bandwidth/energy accounting
point (Figure 12): BuMP adds traffic because L1-to-LLC requests carry the
triggering PC, because LLC access/eviction streams are forwarded to BuMP's
tables, and because bulk requests and overfetched data cross the crossbar.

:class:`repro.noc.crossbar.Crossbar` counts messages by type and converts
them into link utilisation and dynamic energy.
"""

from repro.noc.crossbar import Crossbar, MessageType

__all__ = ["Crossbar", "MessageType"]
