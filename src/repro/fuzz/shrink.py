"""Reduce a failing fuzz spec to a minimal replayable reproducer.

Delta-debugging over the declarative spec surface: each pass proposes a
structurally smaller candidate (drop a phase, drop a tenant, halve a
phase's accesses, strip bursts and intensity scaling, clear configuration
overrides, fall back to the ``base_open`` configuration, compact the core
numbering), keeps it only if the failure **still reproduces**, and repeats
until no proposal sticks.  The result is the spec a human wants to read in
a bug report -- typically one phase, one or two tenants and a few hundred
accesses -- and, serialized through :mod:`repro.fuzz.corpus`, the artifact
the regression corpus replays forever after.

Only the originally failing oracle checks are re-run while shrinking (a
chunk-invariance bug does not need the full cube re-simulated per
candidate), which keeps a shrink to a few dozen short simulations.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.fuzz.corpus import materialize
from repro.fuzz.oracle import run_oracle

__all__ = [
    "ShrinkResult",
    "shrink",
]

#: Never shrink a phase below this many accesses: the failure must stay
#: observable, and sub-64-access runs stop exercising the machinery at all.
_MIN_ACCESSES = 64


@dataclass
class ShrinkResult:
    """A minimized spec plus the bookkeeping of how it got there."""

    spec: Dict
    #: Candidate specs evaluated (accepted + rejected), for budget reporting.
    attempts: int
    #: Accepted reduction steps, in order, e.g. ``"drop-phase(1)"``.
    steps: List[str]

    @property
    def phases(self) -> int:
        return len(self.spec["scenario"]["phases"])

    @property
    def tenants(self) -> int:
        return max(len(p["tenants"])
                   for p in self.spec["scenario"]["phases"])

    @property
    def total_accesses(self) -> int:
        return sum(int(p["accesses"])
                   for p in self.spec["scenario"]["phases"])


def _candidates(spec: Dict) -> Iterator[tuple]:
    """Yield ``(description, candidate_spec)`` reductions, biggest cuts first."""
    scenario = spec["scenario"]
    phases = scenario["phases"]

    # 1. Whole phases (largest first so one acceptance removes the most).
    if len(phases) > 1:
        order = sorted(range(len(phases)),
                       key=lambda i: -int(phases[i]["accesses"]))
        for index in order:
            candidate = copy.deepcopy(spec)
            del candidate["scenario"]["phases"][index]
            yield f"drop-phase({index})", candidate

    # 2. Tenants within each phase.
    for pi, phase in enumerate(phases):
        if len(phase["tenants"]) > 1:
            for ti in range(len(phase["tenants"])):
                candidate = copy.deepcopy(spec)
                del candidate["scenario"]["phases"][pi]["tenants"][ti]
                yield f"drop-tenant({pi},{ti})", candidate

    # 3. Halve phase lengths.
    for pi, phase in enumerate(phases):
        accesses = int(phase["accesses"])
        if accesses >= 2 * _MIN_ACCESSES:
            candidate = copy.deepcopy(spec)
            candidate["scenario"]["phases"][pi]["accesses"] = accesses // 2
            yield f"halve-accesses({pi})", candidate

    # 4. Strip bursts and intensity scaling.
    for pi, phase in enumerate(phases):
        if phase.get("bursts"):
            candidate = copy.deepcopy(spec)
            candidate["scenario"]["phases"][pi].pop("bursts", None)
            yield f"drop-bursts({pi})", candidate
        if phase.get("intensity", 1.0) != 1.0:
            candidate = copy.deepcopy(spec)
            candidate["scenario"]["phases"][pi].pop("intensity", None)
            yield f"reset-phase-intensity({pi})", candidate
        for ti, tenant in enumerate(phase["tenants"]):
            if tenant.get("intensity", 1.0) != 1.0:
                candidate = copy.deepcopy(spec)
                candidate["scenario"]["phases"][pi]["tenants"][ti].pop(
                    "intensity", None)
                yield f"reset-tenant-intensity({pi},{ti})", candidate

    # 5. Simplify the configuration: overrides first, then the base.
    config = spec.get("config", {})
    for key in sorted(config.get("overrides") or {}):
        candidate = copy.deepcopy(spec)
        candidate["config"]["overrides"].pop(key)
        if not candidate["config"]["overrides"]:
            candidate["config"].pop("overrides")
        yield f"drop-override({key})", candidate
    if config.get("base", "base_open") != "base_open":
        candidate = copy.deepcopy(spec)
        candidate["config"] = {"base": "base_open"}
        yield "simplify-config(base_open)", candidate

    # 6. Drop the warmup split (halves most oracle cells' simulated work).
    if spec.get("warmup_fraction", 0.5):
        candidate = copy.deepcopy(spec)
        candidate["warmup_fraction"] = 0.0
        yield "drop-warmup", candidate

    # 7. Compact the core numbering: shrink the machine to the used cores.
    used = sorted({core for phase in phases
                   for tenant in phase["tenants"]
                   for core in tenant["cores"]})
    if len(used) < int(scenario["num_cores"]):
        remap = {core: slot for slot, core in enumerate(used)}
        candidate = copy.deepcopy(spec)
        candidate["scenario"]["num_cores"] = len(used)
        for phase in candidate["scenario"]["phases"]:
            for tenant in phase["tenants"]:
                tenant["cores"] = [remap[core] for core in tenant["cores"]]
        yield "compact-cores", candidate


def shrink(spec: Dict, is_failing: Optional[Callable[[Dict], bool]] = None,
           checks: Optional[Sequence[str]] = None,
           max_attempts: int = 200) -> ShrinkResult:
    """Minimize ``spec`` while ``is_failing`` keeps returning ``True``.

    Without an explicit predicate the oracle itself is the judge: an initial
    full run determines the failing checks, and every candidate re-runs only
    those (or the ``checks`` argument's subset).  Candidates that fail to
    materialize -- a mutation can produce an invalid spec -- are discarded,
    never counted as reproducing.

    ``spec`` is never mutated; raises ``ValueError`` if the input does not
    fail in the first place (shrinking a passing spec is a caller bug).
    """
    if is_failing is None:
        if checks is None:
            initial = run_oracle(spec)
            if initial.ok:
                raise ValueError(
                    f"spec {spec.get('label', '?')!r} passes the oracle; "
                    "nothing to shrink")
            checks = tuple(initial.failed_checks)
        failing_checks = tuple(checks)

        def is_failing(candidate: Dict) -> bool:
            return not run_oracle(candidate, checks=failing_checks).ok

    if not is_failing(spec):
        raise ValueError(
            f"spec {spec.get('label', '?')!r} does not fail the failure "
            "predicate; nothing to shrink")

    current = copy.deepcopy(spec)
    attempts = 0
    steps: List[str] = []
    reduced = True
    while reduced and attempts < max_attempts:
        reduced = False
        for description, candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            try:
                materialize(candidate)
            except (ValueError, KeyError):
                continue
            if is_failing(candidate):
                current = candidate
                steps.append(description)
                reduced = True
                break  # restart the pass from the biggest cuts
    current["label"] = f"{spec.get('label', 'fuzz')}-min"
    return ShrinkResult(spec=current, attempts=attempts, steps=steps)
