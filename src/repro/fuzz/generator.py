"""Seeded sampling of random valid fuzz specs.

The generator walks the whole declarative surface the scenario engine and
configuration layer expose -- multi-tenant core partitions with idle cores,
1-3 phases with independent tenant layouts, per-phase and per-tenant
intensity scaling, stacked burst windows, every named system configuration
(paper and extended sets) with page-policy / interleaving / timing-model /
arrival-CPI overrides, randomized warmup fractions, streaming chunk sizes
and (on about a third of samples) closed-loop feedback-controller
parameters -- while staying inside the validated envelope: every sample
materializes without error and simulates in well under a second, so a
200-sample differential sweep fits a CI smoke budget.

Determinism contract: ``generate_spec(seed, index)`` depends on nothing but
its arguments.  :func:`corpus_fingerprint` digests the first N specs of a
seed so the test suite can pin the generator's output -- spec-generation
drift then shows up as an explicit, reviewed fingerprint change instead of
silent corpus rot.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List

from repro.common.fingerprint import fingerprint
from repro.fuzz.corpus import SPEC_FORMAT_VERSION, spec_fingerprint
from repro.sim.config import extended_configs, named_configs
from repro.workloads.catalog import workload_names

__all__ = [
    "corpus_fingerprint",
    "generate_spec",
    "iter_specs",
]

#: Per-phase access budget.  The floor keeps warmup splits and burst windows
#: meaningful; the ceiling keeps a full differential oracle per sample (about
#: a dozen simulations) around half a second.
_MIN_PHASE_ACCESSES = 150
_MAX_PHASE_ACCESSES = 900

#: Streaming chunk sizes worth distinguishing: small enough that chunk
#: boundaries fall mid-phase and mid-warmup, large enough to exercise the
#: one-chunk case for short scenarios.
_CHUNK_SIZES = (64, 128, 256, 512, 1024, 2048)

_CORE_COUNTS = (2, 4, 8, 16)


def _mix(seed: int, index: int) -> random.Random:
    """One private RNG per (seed, index); samples never share draw streams."""
    return random.Random((int(seed) & 0xFFFFFFFF) * 0x9E3779B1 + int(index))


def _sample_tenants(rng: random.Random, num_cores: int,
                    workloads: List[str]) -> List[Dict]:
    """A random disjoint core partition with optional idle cores."""
    cores = list(range(num_cores))
    rng.shuffle(cores)
    # Leave 0..half the machine idle (biased toward fully loaded).
    idle = rng.choice((0, 0, 0, 1, num_cores // 4, num_cores // 2))
    active = cores[:max(1, num_cores - idle)]
    tenant_count = rng.randint(1, min(3, len(active)))
    # Random split points carve the active cores into disjoint groups.
    bounds = sorted(rng.sample(range(1, len(active)), tenant_count - 1)) \
        if tenant_count > 1 else []
    groups, start = [], 0
    for bound in bounds + [len(active)]:
        groups.append(sorted(active[start:bound]))
        start = bound
    tenants = []
    for group in groups:
        tenant = {
            "workload": rng.choice(workloads),
            "cores": group,
        }
        if rng.random() < 0.4:
            tenant["intensity"] = round(rng.uniform(0.4, 2.5), 3)
        tenants.append(tenant)
    return tenants


def _sample_bursts(rng: random.Random) -> List[List[float]]:
    bursts = []
    for _ in range(rng.choice((0, 0, 0, 1, 1, 2))):
        start = round(rng.uniform(0.0, 0.75), 3)
        stop = round(min(1.0, start + rng.uniform(0.05, 0.25)), 3)
        if stop <= start:
            continue
        bursts.append([start, stop, round(rng.uniform(1.2, 3.0), 3)])
    return bursts


def _sample_closed_loop(rng: random.Random) -> Dict:
    """Random valid closed-loop controller parameters.

    Intervals are small relative to the phase budget so several control
    decisions land inside every run; the latency target spans from easily
    met to unreachable (a saturated small-scale system observes thousands of
    cycles), so samples cover intensity ramp-up, ramp-down and clamping.
    """
    low = round(rng.uniform(0.2, 0.6), 3)
    return {
        "target_latency": round(rng.uniform(20.0, 4000.0), 1),
        "interval": rng.choice((96, 128, 160, 224, 320)),
        "gain": round(rng.uniform(0.1, 0.9), 3),
        "min_intensity": low,
        "max_intensity": round(rng.uniform(1.5, 4.0), 3),
    }


def _sample_config(rng: random.Random) -> Dict:
    names = sorted(set(named_configs()) | set(extended_configs()))
    config: Dict = {"base": rng.choice(names)}
    overrides: Dict = {}
    if rng.random() < 0.25:
        overrides["page_policy"] = rng.choice(("open", "close"))
    if rng.random() < 0.25:
        overrides["interleaving"] = rng.choice(("block", "region"))
    if rng.random() < 0.20:
        overrides["timing_model"] = "interval"
    if rng.random() < 0.30:
        overrides["arrival_cpi"] = round(rng.uniform(1.0, 4.0), 3)
    if overrides:
        config["overrides"] = overrides
    return config


def generate_spec(seed: int, index: int) -> Dict:
    """The ``index``-th random valid fuzz spec of stream ``seed``.

    Pure function of its arguments: the same (seed, index) pair produces the
    same spec on every machine and every run (pinned by the corpus-stability
    test).  The returned dict follows the :mod:`repro.fuzz.corpus` schema
    and always materializes successfully.
    """
    rng = _mix(seed, index)
    workloads = workload_names()
    num_cores = rng.choice(_CORE_COUNTS)
    phases = []
    for phase_index in range(rng.randint(1, 3)):
        phase: Dict = {
            "name": f"phase{phase_index}",
            "accesses": rng.randint(_MIN_PHASE_ACCESSES, _MAX_PHASE_ACCESSES),
            "tenants": _sample_tenants(rng, num_cores, workloads),
        }
        if rng.random() < 0.5:
            phase["intensity"] = round(rng.uniform(0.25, 2.0), 3)
        bursts = _sample_bursts(rng)
        if bursts:
            phase["bursts"] = bursts
        phases.append(phase)
    # Warmup: usually a split somewhere inside the run (which doubles as the
    # snapshot boundary the oracle splits at), occasionally none at all.
    warmup_fraction = 0.0 if rng.random() < 0.15 \
        else round(rng.uniform(0.1, 0.6), 3)
    spec = {
        "format": SPEC_FORMAT_VERSION,
        "label": f"fuzz-{seed}-{index}",
        "seed": rng.randrange(2 ** 31),
        "warmup_fraction": warmup_fraction,
        "chunk_size": rng.choice(_CHUNK_SIZES),
        "scenario": {
            "num_cores": num_cores,
            "phases": phases,
        },
        "config": _sample_config(rng),
    }
    # A third of the stream drives the run through the feedback controller,
    # so the closed-loop path gets the same differential scrutiny (cube,
    # chunk-size, telemetry, snapshot resume) as the open-loop engine.
    if rng.random() < 0.35:
        spec["closed_loop"] = _sample_closed_loop(rng)
    return spec


def iter_specs(seed: int, count: int, start: int = 0) -> Iterator[Dict]:
    """Stream ``count`` specs of stream ``seed`` starting at ``start``."""
    for index in range(start, start + count):
        yield generate_spec(seed, index)


def corpus_fingerprint(seed: int, count: int = 5) -> str:
    """Digest of the first ``count`` specs of stream ``seed``.

    The corpus-stability test pins this value: any change to the sampling
    logic, ranges or schema shows up as a reviewed fingerprint bump.
    """
    return fingerprint([spec_fingerprint(spec)
                        for spec in iter_specs(seed, count)])
