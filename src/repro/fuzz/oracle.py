"""Differential verification of one fuzz spec across every engine axis.

One sample, one verdict: the oracle simulates the spec's scenario under its
configuration in every distinguishable cell of the engine space and demands
that all of them fingerprint identically to the **reference cell** -- the
original object engines (``dict`` cache, ``object`` DRAM, ``scalar``
interpreter), the same baseline every flat-engine PR was proven against.

Checks (each independently selectable; ``CHECKS`` lists them all):

``cube``
    The cache x DRAM x interpreter engine cube.  The vector interpreter
    transparently downgrades to scalar on the dict cache engine, so the
    distinguishable cells are the two dict cells plus all four flat cells.
``chunk``
    Chunk-size invariance: the same run at a perturbed streaming chunk size
    must not leak batch boundaries into any statistic.
``telemetry``
    Observability is an observer: a fully instrumented run must fingerprint
    identically to the uninstrumented reference.
``snapshot``
    Warm-state checkpointing: capture at the warmup boundary, round-trip the
    snapshot through the on-disk ``.npz`` codec, restore into a fresh
    system and measure the tail -- bit-identical to never having stopped.
    Skipped (reported, not run) when the spec has no warmup interval.

Specs with a ``closed_loop`` block run every cell through the
feedback-driven :class:`~repro.scenario.closed_loop.ClosedLoopSource`: the
cube check then additionally reruns the reference cell verbatim (asserting
run-to-run determinism of the feedback path), and the snapshot check
checkpoints/restores the source's controller state alongside the simulator
arrays.

Every simulation in a check replays the identical deterministic chunk
stream, so a mismatch is always an engine bug (or an injected fault), never
workload noise.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exec.campaign import result_fingerprint
from repro.fuzz.corpus import FuzzCase, materialize
from repro.scenario.compiler import iter_scenario_chunks
from repro.scenario.runner import run_scenario
from repro.sim.snapshot import capture_warmup, load_snapshot, save_snapshot
from repro.sim.system import ServerSystem

__all__ = [
    "CHECKS",
    "CheckResult",
    "OracleReport",
    "REFERENCE_CELL",
    "run_oracle",
]

#: The reference engine cell every other cell is compared against.
REFERENCE_CELL = ("dict", "object", "scalar")

#: Engine cells of the cube check (reference excluded).  ``(dict, *,
#: vector)`` cells are omitted: interpreter resolution downgrades them to
#: scalar, so they are byte-for-byte reruns of the dict/scalar cells.
_CUBE_CELLS: Tuple[Tuple[str, str, str], ...] = (
    ("dict", "flat", "scalar"),
    ("flat", "object", "scalar"),
    ("flat", "flat", "scalar"),
    ("flat", "object", "vector"),
    ("flat", "flat", "vector"),
)

#: All check names, in execution order.
CHECKS = ("cube", "chunk", "telemetry", "snapshot")


@dataclass
class CheckResult:
    """Outcome of one differential cell."""

    check: str
    cell: str
    matches: bool
    #: ``True`` when the cell could not run for this spec (e.g. the snapshot
    #: check on a spec with no warmup interval); never counted as a failure.
    skipped: bool = False

    def describe(self) -> str:
        state = "skip" if self.skipped else ("ok" if self.matches else "FAIL")
        return f"{self.check}:{self.cell}={state}"


@dataclass
class OracleReport:
    """Every cell verdict for one spec, plus the reference fingerprint."""

    label: str
    reference_fingerprint: str
    checks: List[CheckResult] = field(default_factory=list)

    @property
    def failures(self) -> List[CheckResult]:
        return [c for c in self.checks if not c.skipped and not c.matches]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failed_checks(self) -> List[str]:
        """Distinct failing check names, execution order preserved."""
        seen: List[str] = []
        for check in self.failures:
            if check.check not in seen:
                seen.append(check.check)
        return seen

    def describe(self) -> str:
        ran = [c for c in self.checks if not c.skipped]
        if self.ok:
            return f"{self.label}: ok ({len(ran)} cell(s))"
        return (f"{self.label}: FAIL "
                + " ".join(c.describe() for c in self.failures))


def _run_cell(case: FuzzCase, cache: str, dram: str, interp: str,
              chunk_size: Optional[int] = None, telemetry=None) -> str:
    result = run_scenario(
        case.scenario, case.config, seed=case.seed,
        warmup_fraction=case.warmup_fraction,
        chunk_size=chunk_size if chunk_size is not None else case.chunk_size,
        cache_engine=cache, dram_engine=dram, interp=interp,
        telemetry=telemetry, closed_loop=case.closed_loop)
    return result_fingerprint(result)


def _snapshot_fingerprint_for(case: FuzzCase, workdir: Optional[Path]) -> str:
    """Capture at the warmup boundary, file round-trip, restore, measure."""
    system = ServerSystem(case.config, workload_name=case.scenario.name,
                          cache_engine="flat", dram_engine="flat")
    if case.closed_loop is not None:
        # Closed-loop capture: the source's controller state rides inside
        # the snapshot, and the replay rebuilds a fresh source to restore
        # into -- proving the checkpoint carries everything production
        # needs, not just simulator state.
        from repro.scenario.closed_loop import ClosedLoopSource

        chunks = ClosedLoopSource(case.scenario, case.closed_loop,
                                  seed=case.seed, chunk_size=case.chunk_size)
    else:
        chunks = iter_scenario_chunks(case.scenario, seed=case.seed,
                                      chunk_size=case.chunk_size)
    snapshot, _, _ = capture_warmup(system, chunks, case.warmup_accesses)
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
            path = Path(tmp) / "warm.npz"
            save_snapshot(snapshot, path)
            snapshot = load_snapshot(path)
    else:
        path = Path(workdir) / f"{case.label}-warm.npz"
        save_snapshot(snapshot, path)
        snapshot = load_snapshot(path)
    result = run_scenario(case.scenario, case.config, seed=case.seed,
                          warmup_fraction=case.warmup_fraction,
                          chunk_size=case.chunk_size, snapshot=snapshot,
                          closed_loop=case.closed_loop)
    return result_fingerprint(result)


def _perturbed_chunk_size(chunk_size: int) -> int:
    """A second chunk size guaranteed to split the stream differently."""
    return max(32, (chunk_size * 2) // 3 + 17)


def run_oracle(spec: Dict, checks: Optional[Sequence[str]] = None,
               workdir=None) -> OracleReport:
    """Run the differential oracle over one spec dict.

    ``checks`` restricts the run to a subset of :data:`CHECKS` (the shrinker
    re-runs only the originally failing axis).  ``workdir`` keeps the
    snapshot check's ``.npz`` round-trip file for inspection; by default it
    lives in a temporary directory.

    Raises ``ValueError`` for specs that do not materialize; every
    simulation failure below that propagates -- an engine crash on a valid
    spec is a finding, not an infrastructure error.
    """
    selected = tuple(checks) if checks is not None else CHECKS
    unknown = [name for name in selected if name not in CHECKS]
    if unknown:
        raise ValueError(f"unknown oracle checks {unknown}; known: {CHECKS}")
    case = materialize(spec)
    reference = _run_cell(case, *REFERENCE_CELL)
    report = OracleReport(label=case.label, reference_fingerprint=reference)

    if "cube" in selected:
        if case.closed_loop is not None:
            # Closed-loop production feeds simulator observations back into
            # the stream, so assert run-to-run determinism explicitly: an
            # exact rerun of the reference cell must reproduce it.
            matches = _run_cell(case, *REFERENCE_CELL) == reference
            report.checks.append(
                CheckResult("cube", "repeat:" + "/".join(REFERENCE_CELL),
                            matches))
        for cache, dram, interp in _CUBE_CELLS:
            cell = f"{cache}/{dram}/{interp}"
            matches = _run_cell(case, cache, dram, interp) == reference
            report.checks.append(CheckResult("cube", cell, matches))
    if "chunk" in selected:
        alt = _perturbed_chunk_size(case.chunk_size)
        matches = _run_cell(case, "flat", "flat", "vector",
                            chunk_size=alt) == reference
        report.checks.append(
            CheckResult("chunk", f"chunk={alt}", matches))
    if "telemetry" in selected:
        matches = _run_cell(case, "flat", "flat", "vector",
                            telemetry="full") == reference
        report.checks.append(
            CheckResult("telemetry", "telemetry=full", matches))
    if "snapshot" in selected:
        if case.warmup_accesses < 1:
            report.checks.append(
                CheckResult("snapshot", "no-warmup", True, skipped=True))
        else:
            matches = _snapshot_fingerprint_for(case, workdir) == reference
            report.checks.append(CheckResult(
                "snapshot", f"split@{case.warmup_accesses}", matches))
    return report
