"""Scenario fuzzer and differential verification engine.

The parity suites (PR 3/5/7/8) prove engine bit-identity on a *fixed* matrix:
six workloads x eight named configurations plus the six-scenario catalog.
This package turns that checklist into a coverage engine:

* :mod:`repro.fuzz.generator` samples random **valid** scenario/configuration
  specs over the full spec surface (multi-tenant core partitions, phases,
  bursts, intensity scaling, idle cores, page policies, interleavings,
  warmup lengths, chunk sizes) from a seed, deterministically;
* :mod:`repro.fuzz.oracle` runs one sample across the cache x DRAM x
  interpreter engine cube plus chunk-size invariance, telemetry on/off and a
  snapshot split-then-resume, and asserts every cell fingerprints identically
  to the object-engine reference;
* :mod:`repro.fuzz.shrink` reduces a failing sample to a minimal reproducer
  (drop phases and tenants, halve accesses, strip bursts/intensities,
  simplify the configuration) and the :mod:`repro.fuzz.corpus` codec writes
  it as a replayable JSON artifact;
* ``tests/fuzz_corpus/`` holds promoted reproducers and representative
  samples that the normal test suite replays on every run, and the ``repro
  fuzz`` CLI (``--budget``, ``--seed``, ``--corpus``) drives open-ended
  hunting locally and in CI.

Specs travel as plain JSON-able dicts (see :mod:`repro.fuzz.corpus` for the
schema), so a failure found on one machine replays bit-identically on any
other: the dict is the artifact, the fingerprint is the name.
"""

from repro.fuzz.corpus import (
    SPEC_FORMAT_VERSION,
    corpus_paths,
    load_spec,
    materialize,
    save_spec,
    spec_fingerprint,
)
from repro.fuzz.generator import corpus_fingerprint, generate_spec, iter_specs
from repro.fuzz.oracle import (
    CHECKS,
    CheckResult,
    OracleReport,
    run_oracle,
)
from repro.fuzz.shrink import ShrinkResult, shrink

__all__ = [
    "CHECKS",
    "CheckResult",
    "OracleReport",
    "SPEC_FORMAT_VERSION",
    "ShrinkResult",
    "corpus_fingerprint",
    "corpus_paths",
    "generate_spec",
    "iter_specs",
    "load_spec",
    "materialize",
    "run_oracle",
    "save_spec",
    "shrink",
    "spec_fingerprint",
]
